"""Unit tests for the k-mer pore model and squiggle synthesis."""

import numpy as np
import pytest

from repro.pore_model.kmer_model import KmerModel, default_model
from repro.pore_model.synthesis import (
    SquiggleSimulator,
    SquiggleSynthesisConfig,
    ideal_squiggle,
    synthesize_squiggle,
)


class TestKmerModel:
    def test_table_size(self):
        assert KmerModel(k=3, seed=1).table_size == 64
        assert KmerModel(k=6, seed=1).table_size == 4096

    def test_deterministic(self):
        first = KmerModel(k=6, seed=5)
        second = KmerModel(k=6, seed=5)
        assert np.array_equal(first.levels(), second.levels())

    def test_different_seeds_differ(self):
        assert not np.array_equal(KmerModel(seed=1).levels(), KmerModel(seed=2).levels())

    def test_statistics_near_targets(self):
        model = KmerModel(k=6, mean_current=90.0, current_spread=12.0, seed=3)
        stats = model.statistics()
        assert stats["mean"] == pytest.approx(90.0, abs=1.0)
        assert stats["std"] == pytest.approx(12.0, abs=1.5)
        assert stats["min"] >= 40.0 and stats["max"] <= 160.0

    def test_kmer_index_round_trip(self):
        model = KmerModel(k=4, seed=7)
        for kmer in ("AAAA", "ACGT", "TTTT", "GATC"):
            index = model.kmer_index(kmer)
            assert model._index_to_kmer(index) == kmer

    def test_level_matches_expected_signal(self):
        model = KmerModel(k=3, seed=9)
        sequence = "ACGTAC"
        expected = model.expected_signal(sequence)
        assert expected[0] == pytest.approx(model.level("ACG"))
        assert expected[-1] == pytest.approx(model.level("TAC"))

    def test_expected_signal_length(self):
        model = KmerModel(k=6, seed=11)
        assert model.expected_signal("A" * 30).size == 25

    def test_sequence_shorter_than_k_rejected(self):
        with pytest.raises(ValueError):
            KmerModel(k=6).expected_signal("ACG")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerModel(k=0)
        with pytest.raises(ValueError):
            KmerModel(k=11)

    def test_invalid_kmer_rejected(self):
        model = KmerModel(k=3)
        with pytest.raises(ValueError):
            model.level("AC")
        with pytest.raises(ValueError):
            model.level("ACX")

    def test_as_dict_small_k(self):
        model = KmerModel(k=2, seed=13)
        table = model.as_dict()
        assert len(table) == 16
        assert table["AA"] == pytest.approx(model.level("AA"))

    def test_default_model(self):
        assert default_model().k == 6


class TestSynthesisConfig:
    def test_defaults_valid(self):
        config = SquiggleSynthesisConfig()
        assert config.samples_per_base == 10.0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            SquiggleSynthesisConfig(samples_per_base=0)
        with pytest.raises(ValueError):
            SquiggleSynthesisConfig(min_dwell=0)
        with pytest.raises(ValueError):
            SquiggleSynthesisConfig(max_dwell=2, min_dwell=5)
        with pytest.raises(ValueError):
            SquiggleSynthesisConfig(noise_pa=-1)


class TestSquiggleSimulator:
    def test_length_scales_with_sequence(self, kmer_model):
        simulator = SquiggleSimulator(kmer_model, seed=1)
        short = simulator.simulate("ACGTACGTACGT" * 5)
        long = simulator.simulate("ACGTACGTACGT" * 20)
        assert len(long) > len(short)

    def test_samples_per_base_near_config(self, kmer_model):
        config = SquiggleSynthesisConfig(translocation_rate_spread=0.0, dwell_dispersion=0.1)
        simulator = SquiggleSimulator(kmer_model, config, seed=2)
        squiggle = simulator.simulate("ACGT" * 100)
        assert 8.0 < squiggle.samples_per_base < 12.0

    def test_noise_free_constant_dwell_matches_expected(self, kmer_model):
        config = SquiggleSynthesisConfig(
            dwell_dispersion=0.0,
            translocation_rate_spread=0.0,
            noise_pa=0.0,
            scale_spread=0.0,
            offset_spread_pa=0.0,
        )
        simulator = SquiggleSimulator(kmer_model, config, seed=3)
        sequence = "ACGTACGTACGTACGT"
        squiggle = simulator.simulate(sequence)
        expected = np.repeat(kmer_model.expected_signal(sequence), 10)
        assert np.allclose(squiggle.current_pa, expected)

    def test_offset_and_scale_recorded(self, kmer_model):
        config = SquiggleSynthesisConfig(scale_spread=0.2, offset_spread_pa=15.0)
        simulator = SquiggleSimulator(kmer_model, config, seed=4)
        squiggle = simulator.simulate("ACGT" * 50)
        assert squiggle.scale != 1.0
        assert squiggle.offset_pa != 0.0

    def test_adapter_prepended(self, kmer_model):
        config = SquiggleSynthesisConfig(adapter_samples=100)
        simulator = SquiggleSimulator(kmer_model, config, seed=5)
        with_adapter = simulator.simulate("ACGT" * 30)
        config_no = SquiggleSynthesisConfig(adapter_samples=0)
        simulator_no = SquiggleSimulator(kmer_model, config_no, seed=5)
        without = simulator_no.simulate("ACGT" * 30)
        assert len(with_adapter) == len(without) + 100

    def test_dwell_bounds_respected(self, kmer_model):
        config = SquiggleSynthesisConfig(min_dwell=6, max_dwell=12, dwell_dispersion=1.0)
        simulator = SquiggleSimulator(kmer_model, config, seed=6)
        squiggle = simulator.simulate("ACGT" * 60)
        assert squiggle.dwell_times.min() >= 6
        assert squiggle.dwell_times.max() <= 12

    def test_reproducible_with_seed(self, kmer_model):
        first = SquiggleSimulator(kmer_model, seed=7).simulate("ACGT" * 40)
        second = SquiggleSimulator(kmer_model, seed=7).simulate("ACGT" * 40)
        assert np.array_equal(first.current_pa, second.current_pa)


class TestConvenienceFunctions:
    def test_synthesize_squiggle(self, kmer_model):
        signal = synthesize_squiggle("ACGT" * 30, kmer_model=kmer_model, seed=8)
        assert signal.ndim == 1 and signal.size > 0

    def test_ideal_squiggle(self, kmer_model):
        signal, dwell = ideal_squiggle("ACGT" * 10, kmer_model=kmer_model, samples_per_base=5)
        assert signal.size == dwell.sum()
        assert set(dwell.tolist()) == {5}

    def test_ideal_squiggle_invalid_dwell(self, kmer_model):
        with pytest.raises(ValueError):
            ideal_squiggle("ACGTACGT", kmer_model=kmer_model, samples_per_base=0)
