"""Unit tests for specimen mixtures and read generation."""

import numpy as np
import pytest

from repro.genomes.sequences import random_genome, reverse_complement
from repro.sequencer.reads import Read, ReadGenerator, ReadLengthModel, SpecimenMixture


class TestRead:
    def test_fields(self):
        read = Read(
            read_id="r1",
            source="virus",
            is_target=True,
            sequence="ACGTACGT",
            signal_pa=np.zeros(80),
        )
        assert read.n_bases == 8
        assert read.n_samples == 80
        assert read.prefix(10).size == 10

    def test_invalid_strand(self):
        with pytest.raises(ValueError):
            Read("r", "virus", True, "ACGT", np.zeros(4), strand="x")


class TestReadLengthModel:
    def test_sample_within_bounds(self, rng):
        model = ReadLengthModel(mean_bases=300, sigma=0.5, min_bases=100, max_bases=500)
        lengths = [model.sample(rng) for _ in range(200)]
        assert min(lengths) >= 100
        assert max(lengths) <= 500

    def test_zero_sigma_deterministic(self, rng):
        model = ReadLengthModel(mean_bases=250, sigma=0.0)
        assert model.sample(rng) == 250

    def test_mean_roughly_respected(self, rng):
        model = ReadLengthModel(mean_bases=300, sigma=0.3, min_bases=50, max_bases=2000)
        lengths = [model.sample(rng) for _ in range(400)]
        assert 250 < np.mean(lengths) < 360

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReadLengthModel(mean_bases=0)
        with pytest.raises(ValueError):
            ReadLengthModel(min_bases=5)
        with pytest.raises(ValueError):
            ReadLengthModel(min_bases=100, max_bases=50)


class TestSpecimenMixture:
    def test_two_component(self, target_genome, background_genome):
        mixture = SpecimenMixture.two_component(
            "virus", target_genome, "host", background_genome, target_fraction=0.01
        )
        assert mixture.target_fraction == pytest.approx(0.01)
        assert mixture.is_target("virus")
        assert not mixture.is_target("host")

    def test_fractions_must_sum_to_one(self, target_genome, background_genome):
        with pytest.raises(ValueError):
            SpecimenMixture(
                genomes={"a": target_genome, "b": background_genome},
                fractions={"a": 0.3, "b": 0.3},
            )

    def test_unknown_fraction_genome(self, target_genome):
        with pytest.raises(ValueError):
            SpecimenMixture(genomes={"a": target_genome}, fractions={"b": 1.0})

    def test_unknown_target_name(self, target_genome):
        with pytest.raises(ValueError):
            SpecimenMixture(
                genomes={"a": target_genome}, fractions={"a": 1.0}, target_names=("b",)
            )

    def test_invalid_target_fraction(self, target_genome, background_genome):
        with pytest.raises(ValueError):
            SpecimenMixture.two_component("v", target_genome, "h", background_genome, 1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SpecimenMixture(genomes={}, fractions={})


class TestReadGenerator:
    def test_generate_count(self, read_generator):
        reads = read_generator.generate(5)
        assert len(reads) == 5
        assert len({read.read_id for read in reads}) == 5

    def test_balanced_generation(self, read_generator):
        reads = read_generator.generate_balanced(6)
        targets = [read for read in reads if read.is_target]
        assert len(targets) == 6
        assert len(reads) == 12

    def test_read_fragment_comes_from_genome(self, read_generator, mixture):
        read = read_generator.generate_one(source="virus")
        genome = mixture.genomes["virus"]
        fragment = read.sequence if read.strand == "+" else reverse_complement(read.sequence)
        assert fragment in genome

    def test_forced_unknown_source(self, read_generator):
        with pytest.raises(KeyError):
            read_generator.generate_one(source="bacteria")

    def test_signal_length_tracks_bases(self, read_generator):
        read = read_generator.generate_one(source="virus")
        assert read.n_samples > 4 * read.n_bases

    def test_mixture_fractions_drive_sampling(self, target_genome, background_genome, kmer_model):
        mixture = SpecimenMixture.two_component(
            "virus", target_genome, "host", background_genome, target_fraction=0.5
        )
        generator = ReadGenerator(
            mixture,
            kmer_model=kmer_model,
            length_model=ReadLengthModel(mean_bases=60, sigma=0.1, min_bases=40, max_bases=100),
            seed=1,
        )
        reads = generator.generate(80)
        target_count = sum(1 for read in reads if read.is_target)
        assert 20 < target_count < 60

    def test_stream_is_endless(self, read_generator):
        stream = read_generator.stream()
        first = next(stream)
        second = next(stream)
        assert first.read_id != second.read_id

    def test_negative_count_rejected(self, read_generator):
        with pytest.raises(ValueError):
            read_generator.generate(-1)

    def test_channels_within_range(self, read_generator):
        reads = read_generator.generate(20)
        assert all(0 <= read.channel < 512 for read in reads)
