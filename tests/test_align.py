"""Unit tests for minimizer seeding, chaining, banded extension and the aligner."""

import numpy as np
import pytest

from repro.align.aligner import ReferenceAligner
from repro.align.chain import Anchor, chain_anchors
from repro.align.extend import banded_alignment
from repro.align.minimizer import MinimizerIndex, encode_kmers, minimizer_sketch
from repro.genomes.sequences import random_genome, reverse_complement, transcribe_errors


class TestEncodeKmers:
    def test_count(self):
        assert len(encode_kmers("ACGTACGT", 3)) == 6

    def test_identical_kmers_same_code(self):
        codes = encode_kmers("ACGACG", 3)
        assert codes[0] == codes[3]

    def test_n_marks_invalid(self):
        codes = encode_kmers("ACNGT", 3)
        assert codes[0] == -1 and codes[1] == -1 and codes[2] == -1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            encode_kmers("ACGT", 0)

    def test_short_sequence(self):
        assert encode_kmers("AC", 5) == []


class TestMinimizerSketch:
    def test_sketch_smaller_than_kmer_set(self):
        genome = random_genome(2000, seed=1)
        sketch = minimizer_sketch(genome, k=11, w=5)
        assert 0 < len(sketch) < len(genome) - 10

    def test_positions_increasing(self):
        genome = random_genome(1000, seed=2)
        sketch = minimizer_sketch(genome, k=11, w=5)
        positions = [m.position for m in sketch]
        assert positions == sorted(positions)

    def test_deterministic(self):
        genome = random_genome(500, seed=3)
        assert minimizer_sketch(genome) == minimizer_sketch(genome)

    def test_invalid_w(self):
        with pytest.raises(ValueError):
            minimizer_sketch("ACGTACGTACGT", w=0)

    def test_shared_minimizers_between_overlapping_sequences(self):
        genome = random_genome(800, seed=4)
        read = genome[200:400]
        genome_hashes = {m.hash_value for m in minimizer_sketch(genome)}
        read_hashes = {m.hash_value for m in minimizer_sketch(read)}
        assert len(read_hashes & genome_hashes) >= len(read_hashes) * 0.8


class TestMinimizerIndex:
    def test_hits_on_true_location(self):
        genome = random_genome(3000, seed=5)
        index = MinimizerIndex(genome)
        read = genome[1000:1300]
        hits = index.hits(read)
        assert hits, "expected minimizer hits for an exact substring"
        plus_hits = [r for q, r, s in hits if s == "+"]
        near_truth = [r for r in plus_hits if 950 <= r <= 1350]
        assert len(near_truth) >= len(plus_hits) * 0.5

    def test_reverse_strand_hits(self):
        genome = random_genome(3000, seed=6)
        index = MinimizerIndex(genome)
        read = reverse_complement(genome[500:800])
        hits = index.hits(read)
        assert any(strand == "-" for _, _, strand in hits)

    def test_random_read_few_hits(self):
        genome = random_genome(3000, seed=7)
        index = MinimizerIndex(genome)
        foreign = random_genome(300, seed=999)
        assert len(index.hits(foreign)) <= 3

    def test_lookup_missing(self):
        index = MinimizerIndex(random_genome(500, seed=8))
        assert index.lookup(123456789) == []

    def test_reference_length(self):
        genome = random_genome(700, seed=9)
        assert MinimizerIndex(genome).reference_length == 700


class TestChaining:
    def test_perfect_diagonal_chain(self):
        anchors = [Anchor(query_position=i * 10, reference_position=500 + i * 10) for i in range(8)]
        chain = chain_anchors(anchors)
        assert chain is not None
        assert chain.n_anchors == 8
        assert chain.reference_start == 500

    def test_off_diagonal_anchors_excluded(self):
        good = [Anchor(i * 10, 100 + i * 10) for i in range(6)]
        noise = [Anchor(15, 5000), Anchor(25, 9000)]
        chain = chain_anchors(good + noise)
        assert chain.n_anchors == 6

    def test_strands_not_mixed(self):
        plus = [Anchor(i * 10, 100 + i * 10, "+") for i in range(4)]
        minus = [Anchor(i * 10, 100 + i * 10, "-") for i in range(6)]
        chain = chain_anchors(plus + minus)
        assert chain.strand == "-"
        assert chain.n_anchors == 6

    def test_empty(self):
        assert chain_anchors([]) is None

    def test_spans(self):
        anchors = [Anchor(5, 105), Anchor(25, 125), Anchor(45, 145)]
        chain = chain_anchors(anchors)
        assert chain.query_span == (5, 45)
        assert chain.reference_span == (105, 145)


class TestBandedAlignment:
    def test_identical_sequences(self):
        genome = random_genome(300, seed=10)
        result = banded_alignment(genome, genome)
        assert result.identity == pytest.approx(1.0)
        assert len(result.aligned_pairs) == 300

    def test_mismatches_lower_identity(self):
        genome = random_genome(300, seed=11)
        noisy = transcribe_errors(genome, substitution_rate=0.1, seed=12)
        result = banded_alignment(noisy, genome)
        assert 0.80 < result.identity < 0.97

    def test_indels_handled(self):
        genome = random_genome(300, seed=13)
        noisy = transcribe_errors(genome, insertion_rate=0.03, deletion_rate=0.03, seed=14)
        result = banded_alignment(noisy, genome, band=32)
        assert result.identity > 0.85

    def test_query_in_larger_window(self):
        genome = random_genome(500, seed=15)
        query = genome[100:300]
        result = banded_alignment(query, genome[50:350], band=64)
        assert result.identity > 0.95

    def test_aligned_pairs_monotone(self):
        genome = random_genome(200, seed=16)
        noisy = transcribe_errors(genome, substitution_rate=0.05, seed=17)
        result = banded_alignment(noisy, genome)
        pairs = result.aligned_pairs
        assert all(q1 > q0 and r1 > r0 for (q0, r0), (q1, r1) in zip(pairs[:-1], pairs[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            banded_alignment("", "ACGT")
        with pytest.raises(ValueError):
            banded_alignment("ACGT", "ACGT", band=0)


class TestReferenceAligner:
    @pytest.fixture(scope="class")
    def aligner(self):
        return ReferenceAligner(random_genome(4000, seed=20))

    def test_maps_exact_fragment(self, aligner):
        read = aligner.reference[1200:1500]
        alignment = aligner.map(read)
        assert alignment is not None
        assert alignment.strand == "+"
        assert alignment.reference_start <= 1200 <= alignment.reference_end
        assert alignment.identity > 0.95

    def test_maps_noisy_fragment(self, aligner):
        read = transcribe_errors(aligner.reference[2000:2400], substitution_rate=0.08, seed=21)
        alignment = aligner.map(read)
        assert alignment is not None
        assert alignment.mapping_quality >= 20

    def test_maps_reverse_strand(self, aligner):
        read = reverse_complement(aligner.reference[500:900])
        alignment = aligner.map(read)
        assert alignment is not None
        assert alignment.strand == "-"
        assert alignment.reference_start <= 550
        assert alignment.reference_end >= 850

    def test_foreign_read_unmapped(self, aligner):
        foreign = random_genome(400, seed=22)
        alignment = aligner.map(foreign)
        assert alignment is None or alignment.mapping_quality < 20

    def test_classify_decision(self, aligner):
        assert aligner.classify(aligner.reference[100:400])
        assert not aligner.classify(random_genome(400, seed=23))

    def test_short_read_unmapped(self, aligner):
        assert aligner.map("ACGT") is None

    def test_invalid_min_anchors(self):
        with pytest.raises(ValueError):
            ReferenceAligner("ACGT" * 100, min_chain_anchors=0)
