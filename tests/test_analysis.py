"""Unit tests for cost distributions and accuracy/ablation sweeps."""

import numpy as np
import pytest

from repro.analysis.distributions import CostDistribution, cost_distributions_by_prefix
from repro.analysis.sweeps import accuracy_sweep, ablation_sweep, roc_points
from repro.core.config import SDTWConfig
from repro.core.filter import SquiggleFilter


class TestCostDistribution:
    def test_summary_statistics(self):
        distribution = CostDistribution(label="target", prefix_samples=1000, costs=np.arange(100.0))
        summary = distribution.summary()
        assert summary["mean"] == pytest.approx(49.5)
        assert summary["median"] == pytest.approx(49.5)
        assert summary["p05"] < summary["p95"]

    def test_histogram(self):
        distribution = CostDistribution(label="x", prefix_samples=1, costs=np.arange(50.0))
        histogram = distribution.histogram(bins=5)
        assert histogram["counts"].sum() == 50

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CostDistribution(label="x", prefix_samples=1, costs=np.array([]))


class TestCostDistributionsByPrefix:
    def test_overlap_decreases_with_prefix(self, hardware_filter, target_signals, nontarget_signals):
        distributions = cost_distributions_by_prefix(
            hardware_filter.cost,
            target_signals,
            nontarget_signals,
            prefix_lengths=[300, 800],
        )
        assert len(distributions) == 2
        assert distributions[0].prefix_samples == 300
        # Longer prefixes separate the classes at least as well (Figure 11).
        assert distributions[1].separation >= distributions[0].separation

    def test_target_costs_lower(self, hardware_filter, target_signals, nontarget_signals):
        distributions = cost_distributions_by_prefix(
            hardware_filter.cost, target_signals, nontarget_signals, prefix_lengths=[800]
        )
        entry = distributions[0]
        assert entry.target.mean < entry.nontarget.mean
        assert 0.0 <= entry.overlap <= 1.0

    def test_per_sample_normalization(self, hardware_filter, target_signals, nontarget_signals):
        raw = cost_distributions_by_prefix(
            hardware_filter.cost, target_signals[:3], nontarget_signals[:3], prefix_lengths=[400]
        )
        normalized = cost_distributions_by_prefix(
            hardware_filter.cost,
            target_signals[:3],
            nontarget_signals[:3],
            prefix_lengths=[400],
            per_sample=True,
        )
        assert normalized[0].target.mean == pytest.approx(raw[0].target.mean / 400)


class TestAccuracySweep:
    def test_sweep_structure(self, hardware_filter, target_signals, nontarget_signals):
        sweep = accuracy_sweep(
            hardware_filter, target_signals, nontarget_signals, prefix_lengths=[400, 800], n_thresholds=31
        )
        assert len(sweep) == 2
        assert set(sweep.max_f1_by_prefix()) == {400, 800}
        entry = sweep.by_prefix(800)
        assert len(entry.target_costs) == len(target_signals)
        assert 0.0 <= entry.max_f1 <= 1.0

    def test_longer_prefix_at_least_as_accurate(self, hardware_filter, target_signals, nontarget_signals):
        sweep = accuracy_sweep(
            hardware_filter, target_signals, nontarget_signals, prefix_lengths=[300, 800], n_thresholds=51
        )
        f1 = sweep.max_f1_by_prefix()
        assert f1[800] >= f1[300] - 0.05

    def test_missing_prefix_lookup(self, hardware_filter, target_signals, nontarget_signals):
        sweep = accuracy_sweep(hardware_filter, target_signals, nontarget_signals, prefix_lengths=[400])
        with pytest.raises(KeyError):
            sweep.by_prefix(999)

    def test_roc_points(self, hardware_filter, target_signals, nontarget_signals):
        sweep = accuracy_sweep(hardware_filter, target_signals, nontarget_signals, prefix_lengths=[400])
        points = roc_points(sweep.by_prefix(400).sweep)
        assert all(0.0 <= p["false_positive_rate"] <= 1.0 for p in points)
        assert all(0.0 <= p["recall"] <= 1.0 for p in points)


class TestAblationSweep:
    def test_hardware_variant_competitive(self, reference_squiggle, target_signals, nontarget_signals):
        variants = {
            "vanilla": SDTWConfig.vanilla(),
            "squigglefilter": SDTWConfig.hardware(),
        }
        results = ablation_sweep(
            reference_squiggle,
            target_signals[:6],
            nontarget_signals[:6],
            prefix_lengths=[600],
            variants=variants,
            n_thresholds=41,
        )
        assert set(results) == {"vanilla", "squigglefilter"}
        # The full SquiggleFilter configuration should not be far behind the
        # floating-point baseline (Figure 18 shows it matching or beating it).
        assert results["squigglefilter"][600] >= results["vanilla"][600] - 0.15

    def test_default_variants_all_evaluated(self, reference_squiggle, target_signals, nontarget_signals):
        results = ablation_sweep(
            reference_squiggle,
            target_signals[:3],
            nontarget_signals[:3],
            prefix_lengths=[400],
            n_thresholds=21,
        )
        assert len(results) == 6
        for scores in results.values():
            assert 0.0 <= scores[400] <= 1.0
