"""Tests for the pluggable execution-backend layer (`repro.batch.backends`).

The contract under test: the lane manager (:class:`BatchSDTWEngine`) treats
backends as interchangeable — every cost, row, snapshot and Read Until
decision is bit-identical whether the lane-stacked state advances in-process
(``numpy``) or striped across worker processes (``sharded``), across lane
churn, capacity growth and ragged chunk schedules.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.backends import (
    ColumnShardedBackend,
    NumpyBackend,
    ShardedProcessBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.batch.classifier import BatchSquiggleClassifier
from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.filter import MultiStageSquiggleFilter, SquiggleFilter
from repro.core.sdtw import sdtw_resume
from repro.hardware.scheduler import TileScheduler
from repro.pipeline.api import build_pipeline
from repro.pipeline.read_until import ReadUntilPipeline
from repro.sequencer.reads import ReadGenerator, ReadLengthModel

# (backend name, factory options) pairs every backend-agnostic test runs over.
BACKENDS = [("numpy", None), ("sharded", {"workers": 2})]

# Configuration classes with distinct execution paths: the int32 shared-memory
# fast path, a no-bonus integer config, a float config, a fractional bonus.
SHARDED_CONFIGS = [
    SDTWConfig.hardware(),
    SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0),
    SDTWConfig(distance="squared", allow_reference_deletions=False, quantize=False, match_bonus=0.0),
    SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=False, match_bonus=2.5, match_bonus_cap=4),
]


def make_engine(reference, config=None, backend="numpy", options=None, **kwargs):
    return BatchSDTWEngine(
        reference, config, backend=backend, backend_options=options, **kwargs
    )


# ------------------------------------------------------------------ registry
class TestBackendRegistry:
    def test_all_backends_registered(self):
        names = available_backends()
        assert "numpy" in names and "sharded" in names and "colsharded" in names

    def test_create_by_name(self, rng):
        reference = rng.integers(-127, 128, 30)
        backend = create_backend("numpy", reference, SDTWConfig.hardware(), 4)
        assert isinstance(backend, NumpyBackend)
        assert backend.capacity == 4
        assert backend.reference_length == 30

    def test_unknown_backend_rejected_listing_registry(self, rng):
        """An unknown name is a ValueError naming every registered backend."""
        for name in available_backends():
            with pytest.raises(ValueError, match=name):
                create_backend("tpu", rng.integers(-127, 128, 30), SDTWConfig.hardware(), 4)
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_engine(rng.integers(-127, 128, 30), backend="tpu")

    def test_gpu_backend_registered_even_without_gpu_stack(self, rng):
        """The 'gpu' name always validates; without CuPy/Torch construction
        raises a RuntimeError carrying an install hint, not a KeyError."""
        assert "gpu" in available_backends()
        try:
            import cupy  # noqa: F401
            pytest.skip("CuPy installed; the unavailable-library path cannot fire")
        except ImportError:
            pass
        try:
            import torch  # noqa: F401
            pytest.skip("Torch installed; the unavailable-library path cannot fire")
        except ImportError:
            pass
        with pytest.raises(RuntimeError, match="CuPy"):
            create_backend("gpu", rng.integers(-127, 128, 30), SDTWConfig.hardware(), 4)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy")(NumpyBackend)

    def test_engine_borrows_prebuilt_backend(self, rng):
        reference = rng.integers(-127, 128, 30)
        backend = NumpyBackend(reference, SDTWConfig.hardware(), capacity=4)
        engine = make_engine(reference, backend=backend)
        assert engine.backend is backend
        assert engine.backend_name == "numpy"
        assert engine.capacity == 4
        with pytest.raises(ValueError, match="backend_options"):
            make_engine(reference, backend=backend, options={"workers": 2})
        with pytest.raises(ValueError, match="reference"):
            make_engine(rng.integers(-127, 128, 31), backend=backend)

    def test_engine_reports_backend_name(self, rng):
        reference = rng.integers(-127, 128, 30)
        with make_engine(reference, backend="sharded", options={"workers": 2}) as engine:
            assert engine.backend_name == "sharded"
            assert engine.backend.n_workers == 2


# -------------------------------------------------------------- bit identity
signal_values = st.integers(min_value=-127, max_value=127)
lane_query = st.lists(signal_values, min_size=1, max_size=24).map(lambda v: np.array(v))
lane_queries = st.lists(lane_query, min_size=1, max_size=5)

backend_settings = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_PROPERTY_REFERENCE = np.random.default_rng(20260728).integers(-127, 128, 60)


class TestBackendBitIdentity:
    @backend_settings
    @given(queries=lane_queries, data=st.data())
    def test_sharded_matches_numpy_and_scalar_over_ragged_rounds(self, queries, data):
        """The acceptance property: identical rows/costs/ends on every backend
        across ragged chunk schedules, including admissions mid-session."""
        n_rounds = data.draw(st.integers(min_value=1, max_value=3))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        schedules = []
        for query in queries:
            cuts = np.sort(rng.integers(0, query.size + 1, size=n_rounds - 1))
            bounds = [0, *cuts.tolist(), query.size]
            schedules.append([query[bounds[i] : bounds[i + 1]] for i in range(n_rounds)])

        config = SDTWConfig.hardware()
        engines = [
            make_engine(_PROPERTY_REFERENCE, config, backend=name, options=options)
            for name, options in BACKENDS
        ]
        try:
            scalar = [None] * len(queries)
            for round_index in range(n_rounds):
                snaps = [
                    engine.step(
                        [
                            (lane, schedules[lane][round_index])
                            for lane in range(len(queries))
                        ]
                    )
                    for engine in engines
                ]
                for lane in range(len(queries)):
                    chunk = schedules[lane][round_index]
                    if chunk.size:
                        scalar[lane] = sdtw_resume(
                            chunk, _PROPERTY_REFERENCE, config, state=scalar[lane]
                        )
                    if scalar[lane] is None:
                        continue
                    for engine, snap in zip(engines, snaps):
                        assert snap[lane].cost == scalar[lane].cost
                        assert snap[lane].end_position == scalar[lane].end_position
            for lane in range(len(queries)):
                rows = [engine.state_of(lane).row for engine in engines]
                assert np.array_equal(rows[0], scalar[lane].row)
                for other in rows[1:]:
                    assert np.array_equal(other, rows[0])
        finally:
            for engine in engines:
                engine.close()

    @pytest.mark.parametrize("config", SHARDED_CONFIGS)
    def test_sharded_matches_scalar_across_configs(self, config, rng):
        reference = (
            rng.integers(-127, 128, 80) if config.quantize else rng.normal(size=80)
        )
        queries = [
            rng.integers(-127, 128, n).astype(np.float64)
            if not config.quantize
            else rng.integers(-127, 128, n)
            for n in (5, 17, 31)
        ]
        with make_engine(
            reference, config, backend="sharded", options={"workers": 2}
        ) as engine:
            scalar = [None] * len(queries)
            for start in range(0, 31, 11):
                items = []
                for lane, query in enumerate(queries):
                    chunk = query[start : start + 11]
                    items.append((lane, chunk))
                    if chunk.size:
                        scalar[lane] = sdtw_resume(chunk, reference, config, state=scalar[lane])
                engine.step(items)
            for lane in range(len(queries)):
                state = engine.state_of(lane)
                assert np.array_equal(state.row, scalar[lane].row)
                assert state.samples_processed == scalar[lane].samples_processed

    def test_filter_classify_batch_backend_parameter(
        self, reference_squiggle, target_signals, nontarget_signals
    ):
        """SquiggleFilter.classify_batch(backend=...) changes execution only."""
        squiggle_filter = SquiggleFilter(reference_squiggle, prefix_samples=500)
        signals = list(target_signals) + list(nontarget_signals)
        numpy_decisions = squiggle_filter.classify_batch(signals, threshold=1e12)
        sharded_decisions = squiggle_filter.classify_batch(
            signals, threshold=1e12, backend="sharded", backend_options={"workers": 2}
        )
        assert sharded_decisions == numpy_decisions
        assert squiggle_filter.cost_batch(
            signals, backend="sharded", backend_options={"workers": 2}
        ) == squiggle_filter.cost_batch(signals)

    def test_multistage_classify_batch_backend_parameter(
        self, reference_squiggle, target_signals, nontarget_signals
    ):
        multistage = MultiStageSquiggleFilter.calibrated(
            reference_squiggle, target_signals, nontarget_signals, prefix_lengths=(300, 600)
        )
        signals = list(target_signals) + list(nontarget_signals)
        assert multistage.classify_batch(
            signals, backend="sharded", backend_options={"workers": 2}
        ) == multistage.classify_batch(signals)


# ----------------------------------------------------------------- lane churn
class TestLaneChurn:
    @pytest.mark.parametrize("backend,options", BACKENDS)
    def test_recycled_lanes_start_clean_across_grow(self, backend, options, rng):
        """Admit -> retire -> re-admit across a growth boundary: recycled
        lanes must come up zeroed and snapshots must never read stale state."""
        config = SDTWConfig.hardware()
        reference = rng.integers(-127, 128, 40)
        with make_engine(
            reference, config, backend=backend, options=options, initial_capacity=2
        ) as engine:
            first = {key: rng.integers(-127, 128, 12) for key in ("a", "b")}
            engine.step(list(first.items()))
            survivor = sdtw_resume(first["b"], reference, config)

            engine.retire("a")
            # Forces _grow(): "b" occupies one lane, "c" recycles a's lane,
            # "d" and "e" exceed the original capacity of 2.
            fresh = {key: rng.integers(-127, 128, 9) for key in ("c", "d", "e")}
            for key in fresh:
                engine.admit(key)
            assert engine.capacity > 2
            # Freshly admitted lanes show zero progress before any samples —
            # a stale read of a's old lane would show 12 samples.
            for key in fresh:
                assert engine.samples_processed(key) == 0
                assert engine.snapshot(key).cost == 0.0
                assert not engine.state_of(key).row.any()

            snaps = engine.step(list(fresh.items()))
            for key, query in fresh.items():
                expected = sdtw_resume(query, reference, config)
                assert snaps[key].cost == expected.cost
                assert snaps[key].samples_processed == expected.samples_processed
                assert np.array_equal(engine.state_of(key).row, expected.row)
            # The survivor's state crossed the growth boundary untouched.
            assert np.array_equal(engine.state_of("b").row, survivor.row)
            assert engine.samples_processed("b") == survivor.samples_processed

    @pytest.mark.parametrize("backend,options", BACKENDS)
    def test_retire_readmit_same_key_resets_progress(self, backend, options, rng):
        config = SDTWConfig.hardware()
        reference = rng.integers(-127, 128, 30)
        with make_engine(
            reference, config, backend=backend, options=options, initial_capacity=1
        ) as engine:
            engine.step([("read", rng.integers(-127, 128, 10))])
            before = engine.snapshot("read")
            assert before.samples_processed == 10
            engine.retire("read")
            engine.admit("read")
            assert engine.samples_processed("read") == 0
            replay = rng.integers(-127, 128, 6)
            snap = engine.step([("read", replay)])["read"]
            expected = sdtw_resume(replay, reference, config)
            assert snap.cost == expected.cost
            assert snap.samples_processed == 6


# ---------------------------------------------------------------- idle rounds
class TestIdleRounds:
    def test_idle_polls_are_counted_but_not_recorded(self, rng):
        engine = make_engine(rng.integers(-127, 128, 20))
        engine.step([("a", rng.integers(-127, 128, 5)), ("b", rng.integers(-127, 128, 3))])
        engine.step([])
        engine.step([("a", rng.integers(-127, 128, 2))])
        engine.step([])
        assert engine.n_polls == 4
        assert [entry.index for entry in engine.rounds] == [0, 2]
        assert [entry.n_lanes for entry in engine.rounds] == [2, 1]
        # The dense trace keeps the idle polls as zeros for timing...
        assert engine.occupancy_trace == [2, 0, 1, 0]
        assert engine.peak_occupancy == 2
        # ...but occupancy statistics are computed over busy rounds only.
        assert engine.mean_occupancy == pytest.approx(1.5)

    def test_all_idle_engine(self, rng):
        engine = make_engine(rng.integers(-127, 128, 20))
        engine.step([])
        engine.step([])
        assert engine.rounds == []
        assert engine.occupancy_trace == [0, 0]
        assert engine.mean_occupancy == 0.0
        assert engine.peak_occupancy == 0

    def test_simulate_engine_rounds_matches_dense_trace(self, rng):
        engine = make_engine(rng.integers(-127, 128, 20))
        keys = [f"r{i}" for i in range(5)]
        engine.step([(k, rng.integers(-127, 128, 4)) for k in keys])
        engine.step([])
        engine.step([(k, rng.integers(-127, 128, 4)) for k in keys[:3]])
        engine.step([])
        scheduler = TileScheduler(n_tiles=2, classification_latency_s=1e-3)
        dense = scheduler.simulate_batch_trace(engine.occupancy_trace, 0.5)
        sparse = scheduler.simulate_engine_rounds(engine.rounds, 0.5, n_polls=engine.n_polls)
        assert sparse.n_requests == dense.n_requests == 8
        assert sparse.simulated_seconds == dense.simulated_seconds
        assert sparse.waiting_times_s == dense.waiting_times_s
        assert np.array_equal(sparse.tile_busy_seconds, dense.tile_busy_seconds)

    def test_simulate_engine_rounds_validation(self):
        scheduler = TileScheduler(n_tiles=1)
        rounds = [type("R", (), {"index": 0, "n_lanes": 2})()]
        with pytest.raises(ValueError, match="round_duration_s"):
            scheduler.simulate_engine_rounds(rounds, 0.0)
        with pytest.raises(ValueError, match="n_polls"):
            scheduler.simulate_engine_rounds(rounds, 0.5, n_polls=0)
        bad = [
            type("R", (), {"index": 1, "n_lanes": 1})(),
            type("R", (), {"index": 1, "n_lanes": 1})(),
        ]
        with pytest.raises(ValueError, match="strictly increasing"):
            scheduler.simulate_engine_rounds(bad, 0.5)
        empty = scheduler.simulate_engine_rounds([], 0.5)
        assert empty.n_requests == 0


# ------------------------------------------------------------------ lifecycle
class TestBackendLifecycle:
    def test_close_is_idempotent_and_final(self, rng):
        reference = rng.integers(-127, 128, 30)
        engine = make_engine(reference, backend="sharded", options={"workers": 2})
        engine.step([("a", rng.integers(-127, 128, 5))])
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.backend.advance(np.array([0]), [rng.integers(-127, 128, 3)])

    def test_engine_owns_created_backend_but_borrows_instances(self, rng):
        reference = rng.integers(-127, 128, 30)
        backend = ShardedProcessBackend(
            reference, SDTWConfig.hardware(), capacity=4, workers=2
        )
        engine = make_engine(reference, backend=backend)
        engine.close()  # borrowed: must NOT shut the backend down
        costs, _ = backend.advance(np.array([0]), [rng.integers(-127, 128, 3)])
        assert costs.shape == (1, 1)  # (lanes, panel blocks)
        backend.close()

    def test_classifier_close_releases_engine(self, reference_squiggle):
        classifier = BatchSquiggleClassifier(
            reference_squiggle,
            threshold=1e9,
            prefix_samples=400,
            backend="sharded",
            backend_options={"workers": 2},
        )
        assert classifier.backend_name == "sharded"
        classifier.close()
        with pytest.raises(RuntimeError, match="closed"):
            classifier.engine.backend.advance(np.array([0]), [np.arange(3)])

    def test_advance_error_does_not_desync_the_reply_protocol(self, rng):
        """A failing shard must not leave other shards' replies unread: the
        next advance would otherwise consume a stale reply and return the
        previous round's costs for this round's lanes."""
        reference = rng.integers(-127, 128, 40)
        config = SDTWConfig.hardware()
        backend = ShardedProcessBackend(reference, config, capacity=2, workers=2)
        try:
            good = rng.integers(-127, 128, 8)
            bad = rng.integers(-127, 128, (2, 2))  # 2-D: the kernel rejects it
            with pytest.raises(RuntimeError, match="failed"):
                backend.advance(np.array([0, 1]), [bad, good])
            # Shard 1 already applied the round; the pipes are back in sync,
            # so continuing on the healthy lanes yields exact results.
            follow_up = rng.integers(-127, 128, 5)
            costs, ends = backend.advance(np.array([1]), [follow_up])
            expected = sdtw_resume(
                follow_up, reference, config, state=sdtw_resume(good, reference, config)
            )
            assert costs[0, 0] == expected.cost
            assert ends[0, 0] == expected.end_position
        finally:
            backend.close()

    def test_sharded_workers_must_be_positive(self, rng):
        with pytest.raises(ValueError, match="workers"):
            ShardedProcessBackend(
                rng.integers(-127, 128, 20), SDTWConfig.hardware(), capacity=2, workers=0
            )

    @pytest.mark.parametrize("cls", [ShardedProcessBackend, ColumnShardedBackend])
    def test_close_after_abandoned_round_and_dead_worker(self, cls, rng):
        """Regression (teardown robustness): a session abandoned mid-round —
        one shard holding an unconsumed (error) reply, another shard's
        process dead — must close without hanging and unlink every
        shared-memory segment."""
        import time
        from multiprocessing import shared_memory

        reference = rng.integers(-127, 128, 40)
        backend = cls(reference, SDTWConfig.hardware(), capacity=4, workers=2)
        backend.stop_timeout_s = 3.0
        block_names = [block.name for block in backend._blocks]
        # Abandon a round mid-flight: a malformed request the worker answers
        # with an error reply nobody consumes...
        backend._conns[0].send(("advance", "garbage"))
        time.sleep(0.2)
        # ...while the other worker dies outright.
        backend._processes[1].kill()
        backend._processes[1].join(timeout=5.0)
        start = time.monotonic()
        backend.close()
        assert time.monotonic() - start < 10.0
        for name in block_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        backend.close()  # still idempotent after the messy teardown

    def test_close_after_worker_exception_mid_round(self, rng):
        """A shard that raised during advance leaves the protocol desynced
        for that round; close() must still drain it and release cleanly."""
        from multiprocessing import shared_memory

        reference = rng.integers(-127, 128, 40)
        backend = ShardedProcessBackend(
            reference, SDTWConfig.hardware(), capacity=2, workers=2
        )
        block_names = [block.name for block in backend._blocks]
        bad = rng.integers(-127, 128, (2, 2))  # 2-D: the kernel rejects it
        with pytest.raises(RuntimeError, match="failed"):
            backend.advance(np.array([0, 1]), [bad, bad])
        backend.close()
        for name in block_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ------------------------------------------------------- pipeline + spec + CLI
@pytest.fixture(scope="module")
def backend_flowcell_reads(mixture, kmer_model):
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=300, sigma=0.15, min_bases=220, max_bases=500),
        seed=20260729,
    )
    reads = [generator.generate_one(source="virus") for _ in range(6)]
    reads += [generator.generate_one(source="host") for _ in range(18)]
    return reads


@pytest.fixture(scope="module")
def backend_threshold(reference_squiggle, target_signals, nontarget_signals):
    classifier = BatchSquiggleClassifier(reference_squiggle, prefix_samples=800)
    return classifier.calibrate(target_signals, nontarget_signals, chunk_samples=400)


class TestShardedPipeline:
    def test_seeded_flowcell_decisions_identical_across_backends(
        self, reference_squiggle, target_genome, backend_threshold, backend_flowcell_reads
    ):
        """Acceptance: bit-identical accept/eject decisions on the seeded
        8-channel flowcell, numpy vs sharded."""
        decisions = {}
        for backend, options in BACKENDS:
            with BatchSquiggleClassifier(
                reference_squiggle,
                threshold=backend_threshold,
                prefix_samples=800,
                backend=backend,
                backend_options=options,
            ) as classifier:
                result = ReadUntilPipeline(
                    classifier,
                    target_genome,
                    assemble=False,
                    chunk_samples=400,
                    n_channels=8,
                    batch=True,
                ).run(backend_flowcell_reads)
            assert result.streaming["backend"] == backend
            decisions[backend] = {
                outcome.read.read_id: (
                    outcome.ejected,
                    outcome.decision.cost if outcome.decision else None,
                    outcome.decision.samples_used if outcome.decision else None,
                )
                for outcome in result.session.outcomes
            }
        assert decisions["sharded"] == decisions["numpy"]
        assert len(decisions["numpy"]) == len(backend_flowcell_reads)

    def test_seeded_flowcell_decisions_identical_with_pruning(
        self, reference_squiggle, target_genome, backend_threshold, backend_flowcell_reads
    ):
        """Acceptance: with the pruning layer on, every backend still makes
        the seeded flowcell's accept/eject decisions bit-identically to the
        brute-force numpy run (accepted reads keep their exact cost; ejected
        reads may report a stale above-threshold cost, so only the decision
        and sample count are compared there)."""
        from repro.batch.native import numba_available
        from repro.runtime import RunConfig

        def run_flowcell(classifier):
            result = ReadUntilPipeline(
                classifier,
                target_genome,
                assemble=False,
                chunk_samples=400,
                n_channels=8,
                batch=True,
            ).run(backend_flowcell_reads)
            summary = {}
            for outcome in result.session.outcomes:
                decision = outcome.decision
                accepted = decision is not None and not outcome.ejected
                summary[outcome.read.read_id] = (
                    outcome.ejected,
                    decision.samples_used if decision else None,
                    decision.cost if accepted else None,
                )
            return summary

        with BatchSquiggleClassifier(
            reference_squiggle, threshold=backend_threshold, prefix_samples=800
        ) as classifier:
            brute = run_flowcell(classifier)

        pruned_backends = [
            ("numpy", {}),
            ("sharded", {"workers": 2}),
            ("colsharded", {"workers": 2}),
            ("gpu", {"backend_options": {"array_module": "numpy"}}),
        ]
        if numba_available():
            # The compiled scalar kernel is CI-only; without Numba the
            # native backend is covered by the jit=False property harness
            # in test_sdtw_pruning.py (the pure-Python kernel is too slow
            # for a full flowcell replay).
            pruned_backends.append(("native", {}))
        for backend, fields in pruned_backends:
            config = RunConfig(
                reference=reference_squiggle,
                threshold=backend_threshold,
                prefix_samples=800,
                backend=backend,
                prune=True,
                **fields,
            )
            with BatchSquiggleClassifier(
                reference_squiggle, run_config=config
            ) as classifier:
                pruned = run_flowcell(classifier)
            assert pruned == brute, backend
            assert classifier.engine.cells_pruned >= 0

    def test_build_pipeline_backend_key(
        self, reference_squiggle, target_genome, backend_threshold, backend_flowcell_reads
    ):
        pipeline = build_pipeline(
            {
                "classifier": {
                    "name": "batch_squigglefilter",
                    "reference": reference_squiggle,
                    "threshold": backend_threshold,
                    "prefix_samples": 800,
                },
                "target_genome": target_genome,
                "backend": "sharded",
                "backend_options": {"workers": 2},
                "batch": True,
                "assemble": False,
            }
        )
        try:
            assert pipeline.classifier.backend_name == "sharded"
            result = pipeline.run(backend_flowcell_reads[:8])
            assert result.streaming["backend"] == "sharded"
            assert result.streaming["batched"] is True
        finally:
            pipeline.classifier.close()


class TestCliBackend:
    CLI_ARGS = [
        "read-until",
        "--n-channels", "4",
        "--target-length", "800",
        "--background-length", "3000",
        "--n-reads", "10",
        "--calibration-reads-per-class", "5",
        "--prefix-samples", "500",
    ]

    def test_backend_flag_runs_sharded_session(self, capsys):
        from repro.cli import main

        exit_code = main(self.CLI_ARGS + ["--backend", "sharded", "--workers", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        assert "sharded" in output

    def test_backend_flag_implies_batch_classifier(self, capsys):
        from repro.cli import main

        assert main(self.CLI_ARGS + ["--backend", "numpy"]) == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        assert "numpy" in output

    def test_workers_require_sharded_backend(self, capsys):
        from repro.cli import main

        # RunConfig validation owns the cross-field check now, so the error
        # names the offending field instead of a flag.
        assert main(self.CLI_ARGS + ["--workers", "2"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_workers_flag_combines_with_config_file_backend(self, tmp_path, capsys):
        """Regression: --workers without --backend is valid when the config
        file names a multi-process backend."""
        import json

        from repro.cli import main

        path = tmp_path / "run.json"
        path.write_text(json.dumps({"backend": "sharded"}))
        exit_code = main(
            self.CLI_ARGS + ["--config", str(path), "--workers", "2"]
        )
        assert exit_code == 0
        assert "sharded" in capsys.readouterr().out

    def test_backend_requires_squigglefilter_family(self, capsys):
        from repro.cli import main

        exit_code = main(["read-until", "--backend", "sharded", "--classifier", "multistage"])
        assert exit_code == 2
        assert "--backend requires" in capsys.readouterr().err
