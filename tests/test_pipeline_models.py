"""Unit tests for the profiling, runtime and scalability models."""

import pytest

from repro.core.filter import FilterDecision
from repro.core.thresholds import sweep_thresholds
from repro.pipeline.profiling import profile_both_specimens, profile_pipeline
from repro.pipeline.runtime_model import (
    ReadUntilModelConfig,
    best_runtime,
    read_until_speedup,
    runtime_from_decisions,
    runtime_vs_threshold,
    sequencing_runtime_s,
)
from repro.pipeline.scalability import (
    ClassifierOperatingPoint,
    default_operating_points,
    scalability_analysis,
    speedup_table,
)


class TestReadUntilModelConfig:
    def test_target_reads_needed(self):
        config = ReadUntilModelConfig(genome_length_bases=30_000, coverage=30, mean_target_read_bases=3_000)
        assert config.target_reads_needed == pytest.approx(300)

    def test_decision_bases_includes_latency(self):
        fast = ReadUntilModelConfig(decision_latency_s=0.0)
        slow = ReadUntilModelConfig(decision_latency_s=0.149)
        assert slow.decision_bases - fast.decision_bases == pytest.approx(0.149 * 450.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadUntilModelConfig(viral_fraction=0.0)
        with pytest.raises(ValueError):
            ReadUntilModelConfig(coverage=0)
        with pytest.raises(ValueError):
            ReadUntilModelConfig(capture_time_s=-1)

    def test_with_copies(self):
        config = ReadUntilModelConfig()
        changed = config.with_(viral_fraction=0.001)
        assert changed.viral_fraction == 0.001
        assert config.viral_fraction == 0.01


class TestSequencingRuntime:
    def test_read_until_faster_than_control(self):
        config = ReadUntilModelConfig()
        with_ru = sequencing_runtime_s(config, recall=0.95, false_positive_rate=0.02)
        without = sequencing_runtime_s(config, use_read_until=False)
        assert with_ru < without

    def test_perfect_classifier_fastest(self):
        config = ReadUntilModelConfig()
        perfect = sequencing_runtime_s(config, recall=1.0, false_positive_rate=0.0)
        imperfect = sequencing_runtime_s(config, recall=0.8, false_positive_rate=0.2)
        assert perfect < imperfect

    def test_zero_recall_infinite(self):
        config = ReadUntilModelConfig()
        assert sequencing_runtime_s(config, recall=0.0) == float("inf")

    def test_lower_viral_fraction_takes_longer(self):
        high = sequencing_runtime_s(ReadUntilModelConfig(viral_fraction=0.01), 0.95, 0.02)
        low = sequencing_runtime_s(ReadUntilModelConfig(viral_fraction=0.001), 0.95, 0.02)
        assert low > high

    def test_latency_increases_runtime(self):
        fast = sequencing_runtime_s(ReadUntilModelConfig(decision_latency_s=0.0), 0.95, 0.02)
        slow = sequencing_runtime_s(ReadUntilModelConfig(decision_latency_s=1.0), 0.95, 0.02)
        assert slow > fast

    def test_speedup_ratio(self):
        config = ReadUntilModelConfig()
        speedup = read_until_speedup(config, recall=0.95, false_positive_rate=0.02)
        assert speedup > 2.0

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            sequencing_runtime_s(ReadUntilModelConfig(), recall=1.5)
        with pytest.raises(ValueError):
            sequencing_runtime_s(ReadUntilModelConfig(), recall=0.5, false_positive_rate=-0.1)


class TestRuntimeVsThreshold:
    def test_curve_from_sweep(self):
        sweep = sweep_thresholds([1.0, 2.0, 3.0], [8.0, 9.0, 10.0], n_thresholds=20)
        rows = runtime_vs_threshold(sweep, ReadUntilModelConfig())
        assert len(rows) == 20
        best = best_runtime(rows)
        assert best["runtime_s"] == min(row["runtime_s"] for row in rows)
        # The best threshold keeps all targets while rejecting all background.
        assert best["recall"] == 1.0
        assert best["false_positive_rate"] == 0.0

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            best_runtime([])


class TestRuntimeFromDecisions:
    def _decision(self, accept, samples_used=2000):
        return FilterDecision(
            accept=accept,
            cost=0.0,
            per_sample_cost=0.0,
            samples_used=samples_used,
            threshold=0.0,
            end_position=0,
        )

    def test_matches_analytical_model_at_same_operating_point(self):
        config = ReadUntilModelConfig()
        # 10 targets kept out of 10, 90 background all ejected after 2000 samples.
        decisions = [self._decision(True)] * 10 + [self._decision(False)] * 90
        truths = [True] * 10 + [False] * 90
        empirical = runtime_from_decisions(decisions, truths, config)
        analytical = sequencing_runtime_s(config, recall=1.0, false_positive_rate=0.0)
        assert empirical == pytest.approx(analytical, rel=0.05)

    def test_earlier_ejection_is_faster(self):
        config = ReadUntilModelConfig()
        late = [self._decision(True)] * 5 + [self._decision(False, samples_used=4000)] * 50
        early = [self._decision(True)] * 5 + [self._decision(False, samples_used=1000)] * 50
        truths = [True] * 5 + [False] * 50
        assert runtime_from_decisions(early, truths, config) < runtime_from_decisions(
            late, truths, config
        )

    def test_no_targets_infinite(self):
        config = ReadUntilModelConfig()
        decisions = [self._decision(False)] * 5
        assert runtime_from_decisions(decisions, [True] * 5, config) == float("inf")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            runtime_from_decisions([self._decision(True)], [True, False], ReadUntilModelConfig())


class TestProfiling:
    def test_basecalling_dominates(self):
        profiles = profile_both_specimens()
        for profile in profiles.values():
            assert profile.basecall_fraction > 0.9

    def test_lower_viral_fraction_increases_basecall_share(self):
        profiles = profile_both_specimens()
        assert profiles[0.001].basecall_fraction > profiles[0.01].basecall_fraction

    def test_fractions_sum_to_one(self):
        profile = profile_pipeline()
        assert sum(profile.fractions().values()) == pytest.approx(1.0)

    def test_rows_structure(self):
        rows = profile_pipeline().as_rows()
        assert {row["stage"] for row in rows} == {"basecall", "align", "variant_call"}

    def test_faster_basecaller_reduces_share(self):
        slow = profile_pipeline(device="jetson_xavier")
        fast = profile_pipeline(device="titan_xp")
        assert fast.basecall_s < slow.basecall_s

    def test_invalid_stage_rate(self):
        with pytest.raises(ValueError):
            profile_pipeline(align_reads_per_s=0)


class TestScalability:
    def test_squigglefilter_keeps_benefit(self):
        points = scalability_analysis(scale_factors=(1, 10, 100))
        by_classifier = {}
        for point in points:
            by_classifier.setdefault(point.classifier, {})[point.scale_factor] = point
        squigglefilter = by_classifier["squigglefilter"]
        assert squigglefilter[100.0].read_until_pore_fraction == 1.0
        assert squigglefilter[100.0].speedup == pytest.approx(squigglefilter[1.0].speedup, rel=0.05)

    def test_gpu_loses_benefit_at_scale(self):
        points = scalability_analysis(scale_factors=(1, 100))
        jetson = {p.scale_factor: p for p in points if p.classifier == "guppy_lite@jetson_xavier"}
        assert jetson[100.0].read_until_pore_fraction < 0.01
        assert jetson[100.0].speedup < jetson[1.0].speedup
        assert jetson[100.0].speedup < 1.2

    def test_squigglefilter_beats_jetson_at_every_scale(self):
        points = scalability_analysis(scale_factors=(1, 10, 100))
        for scale in (1.0, 10.0, 100.0):
            sf = next(p for p in points if p.classifier == "squigglefilter" and p.scale_factor == scale)
            gpu = next(
                p
                for p in points
                if p.classifier == "guppy_lite@jetson_xavier" and p.scale_factor == scale
            )
            assert sf.speedup >= gpu.speedup

    def test_default_operating_points(self):
        points = default_operating_points()
        names = {point.name for point in points}
        assert "squigglefilter" in names
        assert len(points) == 3

    def test_speedup_table_rows(self):
        rows = speedup_table(scalability_analysis(scale_factors=(1,)))
        assert len(rows) == 3
        assert {"classifier", "scale_factor", "speedup"} <= set(rows[0])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scalability_analysis(scale_factors=(0,))

    def test_invalid_operating_point(self):
        with pytest.raises(ValueError):
            ClassifierOperatingPoint("bad", 0.0, 0.9, 0.1, 0.0)
        with pytest.raises(ValueError):
            ClassifierOperatingPoint("bad", 100.0, 0.0, 0.1, 0.0)
