"""Unit tests for SDTWConfig and the Figure 18 ablation variants."""

import pytest

from repro.core.config import SDTWConfig
from repro.core.variants import (
    ABLATION_VARIANTS,
    describe_variant,
    variant_config,
    variant_names,
)


class TestSDTWConfig:
    def test_vanilla_settings(self):
        config = SDTWConfig.vanilla()
        assert config.distance == "squared"
        assert config.allow_reference_deletions
        assert not config.quantize
        assert not config.uses_bonus

    def test_hardware_settings(self):
        config = SDTWConfig.hardware()
        assert config.distance == "absolute"
        assert not config.allow_reference_deletions
        assert config.quantize
        assert config.uses_bonus

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            SDTWConfig(distance="euclidean")

    def test_negative_bonus_rejected(self):
        with pytest.raises(ValueError):
            SDTWConfig(match_bonus=-1)

    def test_bonus_requires_no_deletions(self):
        with pytest.raises(ValueError):
            SDTWConfig(allow_reference_deletions=True, match_bonus=5.0)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            SDTWConfig(match_bonus_cap=0)

    def test_with_creates_modified_copy(self):
        base = SDTWConfig.vanilla()
        changed = base.with_(distance="absolute")
        assert changed.distance == "absolute"
        assert base.distance == "squared"

    def test_frozen(self):
        config = SDTWConfig()
        with pytest.raises(Exception):
            config.distance = "squared"


class TestAblationVariants:
    def test_six_variants(self):
        assert len(ABLATION_VARIANTS) == 6

    def test_expected_names(self):
        assert variant_names() == [
            "vanilla",
            "absolute_difference",
            "integer_normalization",
            "no_reference_deletions",
            "all_approximations",
            "squigglefilter",
        ]

    def test_each_single_modification_changes_one_field(self):
        base = ABLATION_VARIANTS["vanilla"]
        assert ABLATION_VARIANTS["absolute_difference"].distance != base.distance
        assert ABLATION_VARIANTS["integer_normalization"].quantize != base.quantize
        assert (
            ABLATION_VARIANTS["no_reference_deletions"].allow_reference_deletions
            != base.allow_reference_deletions
        )

    def test_squigglefilter_is_hardware(self):
        assert ABLATION_VARIANTS["squigglefilter"] == SDTWConfig.hardware()

    def test_all_approximations_has_no_bonus(self):
        assert not ABLATION_VARIANTS["all_approximations"].uses_bonus

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            variant_config("magic")

    def test_describe(self):
        description = describe_variant("squigglefilter")
        assert "no-ref-deletions" in description
        assert "int8" in description
        assert "bonus" in description
