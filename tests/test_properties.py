"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import ClassificationCounts, confusion_from_labels, f_score
from repro.core.config import SDTWConfig
from repro.core.dtw import dtw_cost
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.core.sdtw import sdtw_cost, sdtw_cost_matrix, sdtw_last_row
from repro.core.thresholds import sweep_thresholds
from repro.genomes.sequences import random_genome, reverse_complement
from repro.pipeline.runtime_model import ReadUntilModelConfig, sequencing_runtime_s

# Shared strategies ---------------------------------------------------------

signal_values = st.integers(min_value=-127, max_value=127)
small_signal = st.lists(signal_values, min_size=2, max_size=25).map(np.array)
larger_signal = st.lists(signal_values, min_size=5, max_size=60).map(np.array)

sdtw_configs = st.sampled_from(
    [
        SDTWConfig.vanilla(),
        SDTWConfig.hardware(),
        SDTWConfig.vanilla().with_(distance="absolute"),
        SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0),
    ]
)

default_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestSDTWProperties:
    @default_settings
    @given(query=small_signal, reference=larger_signal, config=sdtw_configs)
    def test_vectorized_kernel_matches_matrix(self, query, reference, config):
        matrix, _ = sdtw_cost_matrix(query, reference, config)
        last_row = sdtw_last_row(query, reference, config)
        assert np.allclose(matrix[-1], last_row)

    @default_settings
    @given(query=small_signal, reference=larger_signal)
    def test_cost_non_negative_without_bonus(self, query, reference):
        config = SDTWConfig(
            distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0
        )
        assert sdtw_cost(query, reference, config).cost >= 0

    @default_settings
    @given(reference=larger_signal)
    def test_exact_subsequence_has_zero_cost(self, reference):
        config = SDTWConfig(
            distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0
        )
        start = len(reference) // 3
        end = max(start + 2, 2 * len(reference) // 3)
        query = reference[start:end]
        assert sdtw_cost(query, reference, config).cost == 0

    @default_settings
    @given(query=small_signal, reference=larger_signal)
    def test_subsequence_cost_at_most_full_dtw(self, query, reference):
        config = SDTWConfig.vanilla()
        sub = sdtw_cost(query, reference, config).cost
        full = dtw_cost(query, reference, distance="squared")
        assert sub <= full + 1e-6

    @default_settings
    @given(query=small_signal, reference=larger_signal, shift=st.integers(-50, 50))
    def test_shift_invariance_after_normalization(self, query, reference, shift):
        normalizer = SignalNormalizer()
        config = SDTWConfig(
            distance="absolute", allow_reference_deletions=False, quantize=False, match_bonus=0.0
        )
        if np.all(query == query[0]) or np.all(reference == reference[0]):
            return
        baseline = sdtw_cost(
            normalizer.normalize(query.astype(float)),
            normalizer.normalize(reference.astype(float)),
            config,
        ).cost
        shifted = sdtw_cost(
            normalizer.normalize(query.astype(float) + shift),
            normalizer.normalize(reference.astype(float)),
            config,
        ).cost
        assert np.isclose(baseline, shifted, atol=1e-6)

    @default_settings
    @given(query=small_signal, reference=larger_signal)
    def test_end_position_within_reference(self, query, reference):
        result = sdtw_cost(query, reference, SDTWConfig.hardware())
        assert 0 <= result.end_position < reference.size


class TestNormalizationProperties:
    @default_settings
    @given(
        values=st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=10, max_size=300),
        bits=st.integers(min_value=4, max_value=10),
    )
    def test_quantization_stays_in_range(self, values, bits):
        config = NormalizationConfig(quantize_bits=bits)
        normalizer = SignalNormalizer(config)
        quantized = normalizer.normalize_quantized(np.array(values))
        assert quantized.max() <= config.quantize_max
        assert quantized.min() >= -config.quantize_max

    @default_settings
    @given(
        values=st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=10, max_size=200),
        scale=st.floats(min_value=0.5, max_value=2.0),
        offset=st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_normalization_invariant_to_affine_transform(self, values, scale, offset):
        signal = np.array(values)
        if np.abs(signal - signal.mean()).mean() < 1e-6:
            return
        normalizer = SignalNormalizer()
        original = normalizer.normalize(signal)
        transformed = normalizer.normalize(signal * scale + offset)
        assert np.allclose(original, transformed, atol=1e-6)


class TestGenomeProperties:
    @default_settings
    @given(seed=st.integers(0, 10_000), length=st.integers(20, 400))
    def test_reverse_complement_involution(self, seed, length):
        genome = random_genome(length, seed=seed)
        assert reverse_complement(reverse_complement(genome)) == genome

    @default_settings
    @given(seed=st.integers(0, 10_000), length=st.integers(20, 400))
    def test_reverse_complement_preserves_gc(self, seed, length):
        genome = random_genome(length, seed=seed)
        revcomp = reverse_complement(genome)
        assert sorted(genome.count(b) for b in "GC") == sorted(revcomp.count(b) for b in "GC")


class TestMetricsProperties:
    @default_settings
    @given(
        tp=st.integers(0, 50), fp=st.integers(0, 50), tn=st.integers(0, 50), fn=st.integers(0, 50)
    )
    def test_metric_ranges(self, tp, fp, tn, fn):
        counts = ClassificationCounts(tp, fp, tn, fn)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.accuracy <= 1.0
        assert 0.0 <= f_score(counts) <= 1.0

    @default_settings
    @given(labels=st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60))
    def test_confusion_total_matches_input(self, labels):
        truths = [t for t, _ in labels]
        predictions = [p for _, p in labels]
        counts = confusion_from_labels(truths, predictions)
        assert counts.total == len(labels)

    @default_settings
    @given(
        target=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=40),
        nontarget=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=40),
    )
    def test_sweep_recall_monotone_in_threshold(self, target, nontarget):
        sweep = sweep_thresholds(target, nontarget, n_thresholds=21)
        recalls = [point.recall for point in sweep]
        assert all(b >= a - 1e-12 for a, b in zip(recalls[:-1], recalls[1:]))


class TestRuntimeModelProperties:
    @default_settings
    @given(
        recall=st.floats(0.05, 1.0),
        fpr=st.floats(0.0, 1.0),
        viral_fraction=st.sampled_from([0.001, 0.01, 0.1]),
    )
    def test_read_until_never_slower_than_sequencing_everything_when_perfect_recall(
        self, recall, fpr, viral_fraction
    ):
        config = ReadUntilModelConfig(viral_fraction=viral_fraction)
        runtime = sequencing_runtime_s(config, recall=recall, false_positive_rate=fpr)
        control = sequencing_runtime_s(config, use_read_until=False)
        assert runtime > 0
        if recall == 1.0 and config.decision_bases < config.mean_background_read_bases:
            assert runtime <= control + 1e-6

    @default_settings
    @given(recall_low=st.floats(0.1, 0.5), recall_high=st.floats(0.6, 1.0), fpr=st.floats(0.0, 0.5))
    def test_higher_recall_never_slower(self, recall_low, recall_high, fpr):
        config = ReadUntilModelConfig()
        slow = sequencing_runtime_s(config, recall=recall_low, false_positive_rate=fpr)
        fast = sequencing_runtime_s(config, recall=recall_high, false_positive_rate=fpr)
        assert fast <= slow + 1e-6
