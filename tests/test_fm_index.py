"""Unit tests for the FM-index."""

import pytest

from repro.align.fm_index import FMIndex, build_suffix_array
from repro.genomes.sequences import random_genome


class TestSuffixArray:
    def test_small_example(self):
        # suffixes of "banana$"-style example using DNA alphabet
        text = "ACGTACG$"
        # build_suffix_array works on arbitrary strings
        suffix_array = build_suffix_array(text)
        suffixes = sorted(range(len(text)), key=lambda i: text[i:])
        assert suffix_array == suffixes

    def test_random_genome_matches_naive(self):
        text = random_genome(300, seed=1) + "$"
        suffix_array = build_suffix_array(text)
        naive = sorted(range(len(text)), key=lambda i: text[i:])
        assert suffix_array == naive

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_suffix_array("")


class TestFMIndex:
    @pytest.fixture(scope="class")
    def genome(self):
        return random_genome(1500, seed=2)

    @pytest.fixture(scope="class")
    def index(self, genome):
        return FMIndex(genome)

    def test_length(self, index, genome):
        assert len(index) == len(genome)

    def test_count_matches_string_count(self, index, genome):
        for pattern in (genome[100:110], genome[700:708], "ACGT"):
            start = 0
            expected = 0
            while True:
                found = genome.find(pattern, start)
                if found == -1:
                    break
                expected += 1
                start = found + 1
            assert index.count(pattern) == expected

    def test_locate_positions_correct(self, index, genome):
        pattern = genome[400:412]
        positions = index.locate(pattern)
        assert 400 in positions
        for position in positions:
            assert genome[position : position + len(pattern)] == pattern

    def test_absent_pattern(self, index, genome):
        absent = "A" * 40
        if absent in genome:
            pytest.skip("unexpectedly present homopolymer")
        assert index.count(absent) == 0
        assert index.locate(absent) == []
        assert not index.contains(absent)

    def test_contains_present(self, index, genome):
        assert index.contains(genome[50:60])

    def test_single_base_counts_sum_to_length(self, index, genome):
        total = sum(index.count(base) for base in "ACGT")
        assert total == len(genome)

    def test_backward_search_interval_width(self, index, genome):
        pattern = genome[10:20]
        start, end = index.backward_search(pattern)
        assert end - start == index.count(pattern)

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            FMIndex("ACG$T")
