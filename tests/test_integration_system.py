"""System-level integration tests spanning several subsystems."""

import numpy as np
import pytest

from repro.analysis.metrics import confusion_from_labels
from repro.assembly.consensus import ReferenceGuidedAssembler
from repro.core.config import SDTWConfig
from repro.core.filter import SquiggleFilter
from repro.core.normalization import SignalNormalizer
from repro.core.sdtw import sdtw_cost
from repro.genomes.strains import simulate_strain_panel
from repro.hardware.accelerator import AcceleratorConfig, SquiggleFilterAccelerator
from repro.io.fasta import FastaRecord, write_fasta, read_fasta
from repro.io.paf import paf_from_alignment, write_paf, read_paf
from repro.pipeline.cost_model import read_until_savings
from repro.pipeline.runtime_model import ReadUntilModelConfig
from repro.sequencer.read_until_api import ReadUntilSimulator, classifier_client
from repro.sequencer.run import MinIONParameters


class TestAcceleratorMatchesSoftwareFilter:
    """The hardware data path must agree with the software filter's decisions."""

    def test_costs_close_between_paths(self, reference_squiggle, target_signals, nontarget_signals):
        accelerator = SquiggleFilterAccelerator(
            reference_squiggle,
            threshold=float("inf"),
            config=AcceleratorConfig(n_tiles=1, n_pes_per_tile=800),
        )
        software = SquiggleFilter(reference_squiggle, prefix_samples=800)
        for signal in (target_signals + nontarget_signals)[:8]:
            hardware_cost = accelerator.classify(signal, 800).cost
            software_cost = software.cost(signal, 800)
            # The hardware path quantizes through a 10-bit ADC before the
            # normalizer, so costs differ slightly but must stay within a few
            # percent of the signal's dynamic range.
            scale = max(abs(software_cost), 1.0)
            assert abs(hardware_cost - software_cost) / scale < 0.25

    def test_decisions_agree(self, reference_squiggle, target_signals, nontarget_signals):
        software = SquiggleFilter(reference_squiggle, prefix_samples=800)
        threshold = software.calibrate(target_signals, nontarget_signals, prefix_samples=800)
        accelerator = SquiggleFilterAccelerator(
            reference_squiggle,
            threshold=threshold,
            config=AcceleratorConfig(n_tiles=2, n_pes_per_tile=800),
        )
        signals = target_signals + nontarget_signals
        truths = [True] * len(target_signals) + [False] * len(nontarget_signals)
        software_predictions = [software.classify(s).accept for s in signals]
        hardware_predictions = [accelerator.classify(s, 800).accept for s in signals]
        software_confusion = confusion_from_labels(truths, software_predictions)
        hardware_confusion = confusion_from_labels(truths, hardware_predictions)
        assert abs(software_confusion.f1 - hardware_confusion.f1) < 0.15

    def test_exact_equivalence_without_adc(self, reference_squiggle, target_signals):
        """Bypassing the ADC, the tile kernel equals the software kernel exactly."""
        software = SquiggleFilter(reference_squiggle, prefix_samples=600)
        accelerator = SquiggleFilterAccelerator(
            reference_squiggle,
            threshold=float("inf"),
            config=AcceleratorConfig(n_tiles=1, n_pes_per_tile=600),
        )
        for signal in target_signals[:3]:
            query = software.prepare_query(signal, 600)
            tile_result = accelerator.tiles[0].align(query, reference_squiggle.quantized)
            software_result = sdtw_cost(query, reference_squiggle.quantized, software.config)
            assert tile_result.cost == pytest.approx(software_result.cost)


class TestStrainDetectionWorkflow:
    """Reference from FASTA -> filter -> assembly -> variants, end to end."""

    def test_full_workflow(self, tmp_path, target_genome, kmer_model, balanced_reads):
        from repro.core.reference import ReferenceSquiggle

        # 1. Persist and reload the reference genome as FASTA.
        reference_path = tmp_path / "reference.fasta"
        write_fasta(reference_path, [FastaRecord(name="target", sequence=target_genome)])
        reference_genome = read_fasta(reference_path)[0].sequence
        assert reference_genome == target_genome

        # 2. Build and calibrate the filter on half of the labelled reads.
        calibration = balanced_reads[: len(balanced_reads) // 2]
        evaluation = balanced_reads[len(balanced_reads) // 2 :]
        squiggle_filter = SquiggleFilter(
            ReferenceSquiggle.from_genome(reference_genome, kmer_model=kmer_model),
            prefix_samples=800,
        )
        squiggle_filter.calibrate(
            [read.signal_pa for read in calibration if read.is_target],
            [read.signal_pa for read in calibration if not read.is_target],
            prefix_samples=800,
        )

        # 3. Classify the evaluation half and keep accepted reads.
        predictions = [
            squiggle_filter.classify(read.signal_pa).accept for read in evaluation
        ]
        kept = [read for read, accept in zip(evaluation, predictions) if accept]
        confusion = confusion_from_labels([read.is_target for read in evaluation], predictions)
        assert confusion.recall >= 0.7
        assert confusion.false_positive_rate <= 0.3

        # 4. Assemble kept reads and write their alignments as PAF.
        assembler = ReferenceGuidedAssembler(reference_genome, seed=5)
        result = assembler.assemble(kept)
        assert result.n_reads_used >= 1
        records = []
        for read in kept[:3]:
            basecall = assembler.basecaller.basecall(read)
            alignment = assembler.aligner.map(basecall.sequence)
            if alignment is not None:
                records.append(
                    paf_from_alignment(read.read_id, alignment, "target", len(reference_genome))
                )
        paf_path = tmp_path / "alignments.paf"
        write_paf(paf_path, records)
        assert len(read_paf(paf_path)) == len(records)


class TestReadUntilApiWithAccelerator:
    def test_accelerator_drives_streaming_api(self, reference_squiggle, mixture, kmer_model,
                                               target_signals, nontarget_signals):
        from repro.sequencer.reads import ReadGenerator, ReadLengthModel

        accelerator = SquiggleFilterAccelerator(
            reference_squiggle, config=AcceleratorConfig(n_tiles=1, n_pes_per_tile=800)
        )
        accelerator.calibrate_threshold(target_signals, nontarget_signals, prefix_samples=800)

        generator = ReadGenerator(
            mixture,
            kmer_model=kmer_model,
            length_model=ReadLengthModel(mean_bases=600, sigma=0.1, min_bases=450, max_bases=800),
            seed=61,
        )
        reads = [generator.generate_one(source="virus") for _ in range(3)]
        reads += [generator.generate_one(source="host") for _ in range(6)]
        simulator = ReadUntilSimulator(
            reads,
            parameters=MinIONParameters(capture_time_s=0.0),
            chunk_samples=400,
            n_channels=3,
        )
        client = classifier_client(
            lambda signal: accelerator.classify(signal, 800).accept, min_samples=800
        )
        summary = simulator.run_client(client, decision_latency_s=4.3e-5)
        assert summary["reads_finished"] == len(reads)
        assert summary["target_recall"] >= 2 / 3
        assert summary["background_ejection_rate"] >= 2 / 3


class TestEconomicsOfReadUntil:
    def test_savings_consistent_with_runtime_model(self):
        model = ReadUntilModelConfig(viral_fraction=0.001)
        savings = read_until_savings(model, recall=0.9, false_positive_rate=0.05)
        assert savings["read_until_runtime_hours"] < savings["control_runtime_hours"]
        assert savings["cost_saved_usd"] > 0


class TestStrainPanelThroughFilter:
    def test_strains_remain_detectable(self, kmer_model):
        """Table 2 + Figure 19 glue: real strain divergence does not break the filter."""
        from repro.core.reference import ReferenceSquiggle
        from repro.genomes.sequences import random_genome
        from repro.pore_model.synthesis import SquiggleSimulator

        reference_genome = random_genome(1500, seed=404)
        reference = ReferenceSquiggle.from_genome(reference_genome, kmer_model=kmer_model)
        squiggle_filter = SquiggleFilter(reference, prefix_samples=800)
        simulator = SquiggleSimulator(kmer_model, seed=11)
        background = random_genome(1500, seed=405)

        panel = simulate_strain_panel(reference_genome, seed=9)
        rng = np.random.default_rng(3)
        for strain in panel:
            start = int(rng.integers(0, len(strain.genome) - 400))
            strain_cost = squiggle_filter.cost(
                simulator.simulate(strain.genome[start : start + 300]).current_pa, 800
            )
            background_cost = squiggle_filter.cost(
                simulator.simulate(background[start : start + 300]).current_pa, 800
            )
            assert strain_cost < background_cost
