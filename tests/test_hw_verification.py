"""Tests for the hardware/software equivalence checker."""

import numpy as np
import pytest

from repro.hardware.verification import HardwareEquivalenceChecker


class TestHardwareEquivalenceChecker:
    def test_random_campaign_passes(self):
        checker = HardwareEquivalenceChecker(n_pes=32)
        report = checker.run_random_campaign(
            n_cases=8, query_samples=24, reference_samples=80, seed=3
        )
        assert report.n_cases == 8
        assert report.all_passed, report.failures()

    def test_functional_only_campaign(self):
        checker = HardwareEquivalenceChecker(n_pes=64)
        report = checker.run_random_campaign(
            n_cases=5, query_samples=64, reference_samples=200, seed=5, cycle_accurate=False
        )
        assert report.all_passed
        assert all(case.cycle_accurate_cost is None for case in report.cases)

    def test_signal_campaign_with_real_reads(self, hardware_filter, target_signals):
        checker = HardwareEquivalenceChecker(n_pes=400)
        queries = [hardware_filter.prepare_query(signal, 400) for signal in target_signals[:4]]
        reference = hardware_filter.reference.quantized
        report = checker.run_signal_campaign(queries, reference)
        assert report.n_cases == 4
        assert report.all_passed

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HardwareEquivalenceChecker(tolerance=-1)
        checker = HardwareEquivalenceChecker(n_pes=16)
        with pytest.raises(ValueError):
            checker.run_random_campaign(n_cases=0)
        with pytest.raises(ValueError):
            checker.run_random_campaign(query_samples=32)

    def test_detects_mismatch(self):
        checker = HardwareEquivalenceChecker(n_pes=16, tolerance=0.0)
        # Tamper with the tile's bonus so the hardware model diverges from the
        # software configuration: the checker must flag it.
        checker.tile.config = checker.tile.config.with_(match_bonus=3.0)
        rng = np.random.default_rng(7)
        case = checker.check_case(
            rng.integers(-50, 50, size=12), rng.integers(-50, 50, size=40), cycle_accurate=False
        )
        assert not case.passed
