"""Integration tests for the end-to-end Read Until pipeline orchestration."""

import pytest

from repro.assembly.consensus import ReferenceGuidedAssembler
from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.core.filter import MultiStageSquiggleFilter
from repro.pipeline.read_until import ReadUntilPipeline, compare_classifiers
from repro.sequencer.run import MinIONParameters


@pytest.fixture(scope="module")
def pipeline_reads(mixture, kmer_model):
    """A small stream with realistic imbalance: few targets, many background.

    Reads are longer than the classification prefix so that ejecting a
    non-target read actually saves sequencing time (as on a real flow cell,
    where reads are far longer than the decision prefix).
    """
    from repro.sequencer.reads import ReadGenerator, ReadLengthModel

    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=700, sigma=0.1, min_bases=500, max_bases=900),
        seed=20211018,
    )
    reads = [generator.generate_one(source="virus") for _ in range(6)]
    reads += [generator.generate_one(source="host") for _ in range(24)]
    return reads


class TestSquiggleFilterPipeline:
    def test_run_filters_and_assembles(self, calibrated_filter, target_genome, pipeline_reads):
        pipeline = ReadUntilPipeline(
            calibrated_filter,
            target_genome,
            prefix_samples=800,
            assembler=ReferenceGuidedAssembler(target_genome, seed=3),
        )
        result = pipeline.run(pipeline_reads)
        assert result.recall >= 0.8
        assert result.false_positive_rate <= 0.15
        assert result.assembly is not None
        assert result.assembly.n_reads_used >= 1
        assert result.runtime_s > 0
        assert result.decision_latency_s < 0.001

    def test_ejection_saves_time(self, calibrated_filter, target_genome, pipeline_reads):
        read_until = ReadUntilPipeline(
            calibrated_filter, target_genome, prefix_samples=800, assemble=False
        )
        result = read_until.run(pipeline_reads)
        control_time = sum(
            MinIONParameters().capture_time_s
            + read.n_samples / MinIONParameters().sample_rate_hz
            for read in pipeline_reads
        )
        assert result.runtime_s < control_time

    def test_target_bases_goal_stops_early(self, calibrated_filter, target_genome, read_generator):
        reads = [read_generator.generate_one(source="virus") for _ in range(10)]
        pipeline = ReadUntilPipeline(calibrated_filter, target_genome, prefix_samples=800, assemble=False)
        result = pipeline.run(reads, target_bases_goal=300)
        assert result.session.target_bases_kept >= 300
        assert result.session.n_reads < 10


class TestMultiStagePipeline:
    def test_multistage_classifier_supported(
        self, reference_squiggle, target_genome, target_signals, nontarget_signals, pipeline_reads
    ):
        multistage = MultiStageSquiggleFilter.calibrated(
            reference_squiggle,
            target_signals,
            nontarget_signals,
            prefix_lengths=(400, 800),
        )
        pipeline = ReadUntilPipeline(multistage, target_genome, assemble=False)
        result = pipeline.run(pipeline_reads)
        assert result.recall >= 0.8
        # Some ejected reads should have used only the first-stage prefix.
        ejected_samples = [
            outcome.decision.samples_used
            for outcome in result.session.outcomes
            if outcome.ejected
        ]
        assert ejected_samples and min(ejected_samples) <= 400


class TestBaselinePipeline:
    def test_basecall_align_pipeline(self, target_genome, pipeline_reads):
        classifier = BasecallAlignClassifier(target_genome, prefix_samples=1500, seed=5)
        pipeline = ReadUntilPipeline(classifier, target_genome, prefix_samples=1500, assemble=False)
        result = pipeline.run(pipeline_reads)
        assert result.recall >= 0.8
        assert result.false_positive_rate <= 0.15
        # Its decision latency comes from the device performance model.
        assert result.decision_latency_s > 0.1

    def test_compare_classifiers(self, calibrated_filter, target_genome, pipeline_reads):
        baseline = BasecallAlignClassifier(target_genome, prefix_samples=1500, seed=6)
        results = compare_classifiers(
            pipeline_reads,
            {
                "squigglefilter": ReadUntilPipeline(
                    calibrated_filter, target_genome, prefix_samples=800, assemble=False
                ),
                "basecall_align": ReadUntilPipeline(
                    baseline, target_genome, prefix_samples=1500, assemble=False
                ),
            },
        )
        assert set(results) == {"squigglefilter", "basecall_align"}
        # SquiggleFilter's negligible latency means ejected non-target reads
        # consume no more sequencing time than the baseline's.
        assert (
            results["squigglefilter"].session.mean_nontarget_sequenced_samples
            <= results["basecall_align"].session.mean_nontarget_sequenced_samples + 1
        )
