"""Unit tests for dataset bundle construction."""

import pytest

from repro.sequencer.datasets import build_dataset
from repro.sequencer.reads import ReadLengthModel


class TestBuildDataset:
    def test_bundle_contents(self, small_dataset):
        assert small_dataset.mixture.target_fraction == pytest.approx(0.05)
        assert len(small_dataset.target_reads) == 6
        assert len(small_dataset.nontarget_reads) == 6
        assert len(small_dataset.target_genome) == 1000

    def test_signals_split_by_class(self, small_dataset):
        assert len(small_dataset.target_signals()) == len(small_dataset.target_reads)
        assert len(small_dataset.nontarget_signals()) == len(small_dataset.nontarget_reads)

    def test_split_halves(self, small_dataset):
        splits = small_dataset.split(0.5)
        calibration = splits["calibration"]
        evaluation = splits["evaluation"]
        assert len(calibration.reads) + len(evaluation.reads) == len(small_dataset.reads)
        assert len(calibration.target_reads) == 3
        assert len(evaluation.target_reads) == 3

    def test_split_invalid_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split(1.0)

    def test_invalid_viral_fraction(self):
        with pytest.raises(ValueError):
            build_dataset(viral_fraction=0.0, n_balanced_reads=0)

    def test_no_balanced_reads(self):
        bundle = build_dataset(
            n_balanced_reads=0,
            genome_lengths={"sars_cov_2": 800, "lambda": 900, "human": 2000},
            seed=3,
        )
        assert bundle.reads == []

    def test_deterministic_given_seed(self):
        kwargs = dict(
            n_balanced_reads=2,
            genome_lengths={"sars_cov_2": 800, "lambda": 900, "human": 2000},
            read_length=ReadLengthModel(mean_bases=80, sigma=0.1, min_bases=50, max_bases=150),
            seed=11,
        )
        first = build_dataset(**kwargs)
        second = build_dataset(**kwargs)
        assert first.reads[0].sequence == second.reads[0].sequence
        assert first.panel["human"] == second.panel["human"]

    def test_lambda_target(self):
        bundle = build_dataset(
            target="lambda",
            n_balanced_reads=1,
            genome_lengths={"sars_cov_2": 800, "lambda": 900, "human": 2000},
            read_length=ReadLengthModel(mean_bases=80, sigma=0.1, min_bases=50, max_bases=150),
            seed=5,
        )
        assert bundle.mixture.target_names == ("lambda",)
        assert bundle.target_genome == bundle.panel["lambda"]
