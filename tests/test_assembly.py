"""Unit tests for pileup, variant calling and reference-guided assembly."""

import pytest

from repro.align.aligner import ReferenceAligner
from repro.assembly.consensus import ReferenceGuidedAssembler
from repro.assembly.pileup import Pileup
from repro.assembly.variant_caller import VariantCaller
from repro.genomes.mutate import apply_mutations, random_mutations
from repro.genomes.sequences import random_genome
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture


class TestPileup:
    def test_add_observation_and_column(self, target_genome):
        pileup = Pileup(target_genome)
        pileup.add_observation(10, "A", count=3)
        pileup.add_observation(10, "C", count=1)
        column = pileup.column(10)
        assert column.depth == 4
        assert column.consensus_base() == "A"
        assert column.allele_fraction("A") == pytest.approx(0.75)

    def test_invalid_observation(self, target_genome):
        pileup = Pileup(target_genome)
        with pytest.raises(IndexError):
            pileup.add_observation(10**6, "A")
        with pytest.raises(ValueError):
            pileup.add_observation(0, "X")
        with pytest.raises(ValueError):
            pileup.add_observation(0, "A", count=-1)

    def test_depth_and_breadth(self, target_genome):
        pileup = Pileup(target_genome)
        for position in range(100):
            pileup.add_observation(position, target_genome[position])
        assert pileup.breadth_of_coverage(min_depth=1) == pytest.approx(100 / len(target_genome))
        assert pileup.mean_depth() == pytest.approx(100 / len(target_genome))

    def test_covered_intervals(self, target_genome):
        pileup = Pileup(target_genome)
        for position in list(range(10, 20)) + list(range(50, 55)):
            pileup.add_observation(position, "A")
        assert pileup.covered_intervals() == [(10, 20), (50, 55)]

    def test_add_alignment(self, target_genome):
        aligner = ReferenceAligner(target_genome)
        read = target_genome[200:500]
        alignment = aligner.map(read)
        pileup = Pileup(target_genome)
        updated = pileup.add_alignment(read, alignment)
        assert updated > 250
        assert pileup.column(300).consensus_base() == target_genome[300]

    def test_empty_column(self, target_genome):
        pileup = Pileup(target_genome)
        assert pileup.column(5).consensus_base() is None
        assert pileup.column(5).allele_fraction("A") == 0.0


class TestVariantCaller:
    def test_detects_substitution(self, target_genome):
        pileup = Pileup(target_genome)
        alternate = "A" if target_genome[42] != "A" else "C"
        for position in range(30, 60):
            base = alternate if position == 42 else target_genome[position]
            pileup.add_observation(position, base, count=10)
        caller = VariantCaller(min_depth=5)
        variants = caller.call_variants(pileup)
        assert len(variants) == 1
        assert variants[0].position == 42
        assert variants[0].alternate_base == alternate

    def test_low_depth_not_called(self, target_genome):
        pileup = Pileup(target_genome)
        alternate = "A" if target_genome[10] != "A" else "C"
        pileup.add_observation(10, alternate, count=2)
        assert VariantCaller(min_depth=5).call_variants(pileup) == []

    def test_mixed_column_below_fraction_not_called(self, target_genome):
        pileup = Pileup(target_genome)
        alternate = "A" if target_genome[10] != "A" else "C"
        pileup.add_observation(10, alternate, count=5)
        pileup.add_observation(10, target_genome[10], count=5)
        assert VariantCaller(min_depth=5, min_allele_fraction=0.6).call_variants(pileup) == []

    def test_consensus_uses_reference_when_uncovered(self, target_genome):
        pileup = Pileup(target_genome)
        consensus = VariantCaller().consensus_sequence(pileup)
        assert consensus == target_genome

    def test_consensus_marks_gaps_when_requested(self, target_genome):
        pileup = Pileup(target_genome)
        consensus = VariantCaller().consensus_sequence(pileup, uncovered_char="N")
        assert set(consensus) == {"N"}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VariantCaller(min_depth=0)
        with pytest.raises(ValueError):
            VariantCaller(min_allele_fraction=0.0)


class TestReferenceGuidedAssembly:
    @pytest.fixture(scope="class")
    def assembly_setup(self):
        reference = random_genome(1500, seed=31)
        mutations = random_mutations(reference, substitutions=4, seed=32)
        strain = apply_mutations(reference, mutations)
        mixture = SpecimenMixture(
            genomes={"strain": strain}, fractions={"strain": 1.0}, target_names=("strain",)
        )
        generator = ReadGenerator(
            mixture,
            length_model=ReadLengthModel(mean_bases=400, sigma=0.1, min_bases=300, max_bases=600),
            seed=33,
        )
        reads = generator.generate(60)
        return reference, strain, mutations, reads

    def test_assembles_strain_genome(self, assembly_setup):
        reference, strain, mutations, reads = assembly_setup
        assembler = ReferenceGuidedAssembler(reference, seed=34)
        result = assembler.assemble(reads)
        assert result.n_reads_used > len(reads) * 0.7
        assert result.mean_depth > 5
        comparison = assembler.compare_to_truth(result, strain)
        assert comparison["identity"] > 0.995

    def test_variants_recovered(self, assembly_setup):
        reference, strain, mutations, reads = assembly_setup
        assembler = ReferenceGuidedAssembler(reference, seed=35)
        result = assembler.assemble(reads)
        called_positions = {variant.position for variant in result.variants}
        true_positions = set(mutations.positions())
        # At least half of the true strain mutations should be recovered and
        # not drowned in false positives.
        assert len(called_positions & true_positions) >= len(true_positions) // 2
        assert len(called_positions - true_positions) <= 10

    def test_coverage_goal_check(self, assembly_setup):
        reference, _, _, reads = assembly_setup
        assembler = ReferenceGuidedAssembler(reference, seed=36)
        result = assembler.assemble(reads[:5])
        assert not result.reached_coverage(target_depth=30)

    def test_empty_read_set(self, target_genome):
        assembler = ReferenceGuidedAssembler(target_genome, seed=37)
        result = assembler.assemble([])
        assert result.n_reads_used == 0
        assert result.consensus == target_genome
