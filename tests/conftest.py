"""Shared fixtures: small genomes, pore models, squiggles and datasets.

Everything is deliberately scaled down (short genomes, short prefixes, few
reads) so the full suite runs in seconds while still exercising the same code
paths as the full-scale benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.filter import SquiggleFilter
from repro.core.normalization import NormalizationConfig
from repro.core.reference import ReferenceSquiggle
from repro.genomes.sequences import random_genome
from repro.pore_model.kmer_model import KmerModel
from repro.pore_model.synthesis import SquiggleSimulator, SquiggleSynthesisConfig
from repro.sequencer.datasets import DatasetBundle, build_dataset
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture


@pytest.fixture(scope="session")
def kmer_model() -> KmerModel:
    return KmerModel(k=6, seed=941)


@pytest.fixture(scope="session")
def target_genome() -> str:
    return random_genome(1200, seed=11)


@pytest.fixture(scope="session")
def background_genome() -> str:
    return random_genome(6000, seed=23)


@pytest.fixture(scope="session")
def reference_squiggle(target_genome, kmer_model) -> ReferenceSquiggle:
    return ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)


@pytest.fixture(scope="session")
def synthesis_config() -> SquiggleSynthesisConfig:
    return SquiggleSynthesisConfig()


@pytest.fixture(scope="session")
def simulator(kmer_model, synthesis_config) -> SquiggleSimulator:
    return SquiggleSimulator(kmer_model, synthesis_config, seed=99)


@pytest.fixture(scope="session")
def mixture(target_genome, background_genome) -> SpecimenMixture:
    return SpecimenMixture.two_component(
        target_name="virus",
        target_genome=target_genome,
        background_name="host",
        background_genome=background_genome,
        target_fraction=0.01,
    )


@pytest.fixture(scope="session")
def read_generator(mixture, kmer_model) -> ReadGenerator:
    return ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=260, sigma=0.15, min_bases=220, max_bases=420),
        seed=4242,
    )


@pytest.fixture(scope="session")
def balanced_reads(read_generator):
    """12 target + 12 background reads with ground-truth labels."""
    return read_generator.generate_balanced(12)


@pytest.fixture(scope="session")
def target_signals(balanced_reads):
    return [read.signal_pa for read in balanced_reads if read.is_target]


@pytest.fixture(scope="session")
def nontarget_signals(balanced_reads):
    return [read.signal_pa for read in balanced_reads if not read.is_target]


@pytest.fixture(scope="session")
def hardware_filter(reference_squiggle) -> SquiggleFilter:
    return SquiggleFilter(
        reference_squiggle,
        config=SDTWConfig.hardware(),
        normalization=NormalizationConfig(),
        prefix_samples=800,
    )


@pytest.fixture(scope="session")
def calibrated_filter(reference_squiggle, target_signals, nontarget_signals) -> SquiggleFilter:
    squiggle_filter = SquiggleFilter(
        reference_squiggle,
        config=SDTWConfig.hardware(),
        prefix_samples=800,
    )
    squiggle_filter.calibrate(target_signals, nontarget_signals, prefix_samples=800)
    return squiggle_filter


@pytest.fixture(scope="session")
def small_dataset() -> DatasetBundle:
    return build_dataset(
        target="sars_cov_2",
        background="human",
        viral_fraction=0.05,
        n_balanced_reads=6,
        genome_lengths={"sars_cov_2": 1000, "lambda": 1200, "human": 5000},
        read_length=ReadLengthModel(mean_bases=120, sigma=0.2, min_bases=60, max_bases=300),
        seed=77,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
