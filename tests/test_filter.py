"""Unit tests for the single-stage and multi-stage SquiggleFilter."""

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.filter import (
    FilterStage,
    MultiStageSquiggleFilter,
    SquiggleFilter,
    build_default_filter,
)


class TestSquiggleFilterCosts:
    def test_target_costs_below_nontarget(self, hardware_filter, target_signals, nontarget_signals):
        target_costs = [hardware_filter.cost(s, 800) for s in target_signals]
        nontarget_costs = [hardware_filter.cost(s, 800) for s in nontarget_signals]
        assert max(target_costs) < min(nontarget_costs)

    def test_cost_deterministic(self, hardware_filter, target_signals):
        signal = target_signals[0]
        assert hardware_filter.cost(signal, 500) == hardware_filter.cost(signal, 500)

    def test_prefix_trimming(self, hardware_filter, target_signals):
        signal = target_signals[0]
        short = hardware_filter.alignment(signal, 400)
        long = hardware_filter.alignment(signal, 800)
        assert short.query_length == 400
        assert long.query_length == min(800, signal.size)

    def test_prepare_query_quantized(self, hardware_filter, target_signals):
        query = hardware_filter.prepare_query(target_signals[0], 400)
        assert query.dtype == np.int32
        assert np.abs(query).max() <= 127

    def test_prepare_query_float_config(self, reference_squiggle, target_signals):
        squiggle_filter = SquiggleFilter(
            reference_squiggle, config=SDTWConfig.vanilla(), prefix_samples=300
        )
        query = squiggle_filter.prepare_query(target_signals[0])
        assert query.dtype == np.float64

    def test_empty_signal_rejected(self, hardware_filter):
        with pytest.raises(ValueError):
            hardware_filter.cost(np.array([]))

    def test_invalid_prefix_samples(self, reference_squiggle):
        with pytest.raises(ValueError):
            SquiggleFilter(reference_squiggle, prefix_samples=0)

    def test_per_sample_cost(self, hardware_filter, target_signals):
        result = hardware_filter.alignment(target_signals[0], 400)
        assert result.per_sample_cost == pytest.approx(result.cost / 400)


class TestSquiggleFilterDecisions:
    def test_requires_threshold(self, hardware_filter, target_signals):
        with pytest.raises(ValueError):
            hardware_filter.classify(target_signals[0])

    def test_calibrated_filter_classifies_correctly(
        self, calibrated_filter, target_signals, nontarget_signals
    ):
        target_decisions = [calibrated_filter.classify(s).accept for s in target_signals]
        nontarget_decisions = [calibrated_filter.classify(s).accept for s in nontarget_signals]
        assert sum(target_decisions) >= len(target_signals) - 1
        assert sum(nontarget_decisions) <= 1

    def test_decision_fields(self, calibrated_filter, target_signals):
        decision = calibrated_filter.classify(target_signals[0])
        assert decision.samples_used <= 800
        assert decision.threshold == calibrated_filter.threshold
        assert decision.stage == 0
        assert 0 <= decision.end_position < len(calibrated_filter.reference)

    def test_explicit_threshold_overrides(self, calibrated_filter, nontarget_signals):
        generous = calibrated_filter.classify(nontarget_signals[0], threshold=float("inf"))
        assert generous.accept

    def test_classify_batch(self, calibrated_filter, target_signals):
        decisions = calibrated_filter.classify_batch(target_signals)
        assert len(decisions) == len(target_signals)

    def test_calibrate_returns_threshold(self, reference_squiggle, target_signals, nontarget_signals):
        squiggle_filter = SquiggleFilter(reference_squiggle, prefix_samples=600)
        threshold = squiggle_filter.calibrate(target_signals, nontarget_signals, prefix_samples=600)
        assert threshold == squiggle_filter.threshold
        assert np.isfinite(threshold)


class TestBuildDefaultFilter:
    def test_builds_working_filter(self, target_genome, kmer_model, simulator):
        squiggle_filter = build_default_filter(target_genome, kmer_model=kmer_model, prefix_samples=400)
        read = simulator.simulate(target_genome[100:220])
        cost = squiggle_filter.cost(read.current_pa, 400)
        assert np.isfinite(cost)

    def test_single_strand_reference(self, target_genome, kmer_model):
        both = build_default_filter(target_genome, kmer_model=kmer_model)
        single = build_default_filter(
            target_genome, kmer_model=kmer_model, include_reverse_complement=False
        )
        assert len(both.reference) == 2 * len(single.reference)


class TestMultiStageFilter:
    def test_stage_validation(self, reference_squiggle):
        with pytest.raises(ValueError):
            MultiStageSquiggleFilter(reference_squiggle, stages=[])
        with pytest.raises(ValueError):
            MultiStageSquiggleFilter(
                reference_squiggle,
                stages=[FilterStage(600, 10.0), FilterStage(300, 5.0)],
            )
        with pytest.raises(ValueError):
            MultiStageSquiggleFilter(
                reference_squiggle,
                stages=[FilterStage(300, 10.0), FilterStage(300, 5.0)],
            )

    def test_invalid_stage_prefix(self):
        with pytest.raises(ValueError):
            FilterStage(prefix_samples=0, threshold=1.0)

    def test_early_rejection_uses_short_prefix(self, reference_squiggle, nontarget_signals):
        stages = [FilterStage(300, -1e12), FilterStage(800, -1e12)]
        multistage = MultiStageSquiggleFilter(reference_squiggle, stages)
        decision = multistage.classify(nontarget_signals[0])
        assert not decision.accept
        assert decision.stage == 0
        assert decision.samples_used <= 300

    def test_acceptance_goes_through_all_stages(self, reference_squiggle, target_signals):
        stages = [FilterStage(300, float("inf")), FilterStage(800, float("inf"))]
        multistage = MultiStageSquiggleFilter(reference_squiggle, stages)
        decision = multistage.classify(target_signals[0])
        assert decision.accept
        assert decision.stage == 1

    def test_calibrated_multistage_accuracy(
        self, reference_squiggle, target_signals, nontarget_signals
    ):
        multistage = MultiStageSquiggleFilter.calibrated(
            reference_squiggle,
            target_signals,
            nontarget_signals,
            prefix_lengths=(400, 800),
        )
        target_decisions = multistage.classify_batch(target_signals)
        nontarget_decisions = multistage.classify_batch(nontarget_signals)
        kept_targets = sum(1 for d in target_decisions if d.accept)
        kept_nontargets = sum(1 for d in nontarget_decisions if d.accept)
        assert kept_targets >= len(target_signals) - 2
        assert kept_nontargets <= 1
        # Most rejected non-targets should be rejected at the first stage.
        early = [d for d in nontarget_decisions if not d.accept and d.stage == 0]
        rejected = [d for d in nontarget_decisions if not d.accept]
        assert len(early) >= len(rejected) // 2

    def test_classify_batch_length(self, reference_squiggle, target_signals):
        stages = [FilterStage(300, float("inf"))]
        multistage = MultiStageSquiggleFilter(reference_squiggle, stages)
        assert len(multistage.classify_batch(target_signals)) == len(target_signals)
