"""Tests for end-to-end tracing and unified telemetry (``repro.obs``).

Four layers, mirroring the subsystem:

* **Tracer** — span nesting and the self-time decomposition invariant
  (per track, phase self times partition root-span wall clock exactly),
  the bounded flight recorder vs the accumulating phase totals, worker
  record merging, and the disabled path (one shared no-op span, nothing
  recorded).
* **Export** — Chrome trace-event/Perfetto documents: structural
  validation (required keys, non-negative timings, no same-lane overlap),
  both accepted file forms, and the per-phase table the ``repro trace``
  subcommand prints.
* **Metrics** — the Prometheus escaping fix (backslash/quote/newline in
  label values) and the ``repro.serve.metrics`` compatibility shim.
* **Sessions** — the acceptance property: on every registered execution
  backend, a traced seeded flowcell decides bit-identically to an
  untraced one; traced runs surface ``session.trace()``, per-phase
  summary totals, distinct worker-process tracks under the sharded
  backends, and a valid exported trace file via ``trace_path``.
"""

import json

import pytest

from repro.batch.classifier import BatchSquiggleClassifier
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    load_trace,
    phase_table,
    records_to_events,
    validate_trace,
    worker_span,
    write_chrome_trace,
)
from repro.pipeline.read_until import ReadUntilPipeline
from repro.runtime import RunConfig, open_session
from repro.sequencer.reads import ReadGenerator, ReadLengthModel

# Same matrix as tests/test_runtime_session.py: "gpu" runs the device code
# path on the host array module, so it is covered without a GPU stack.
OBS_BACKENDS = [
    ("numpy", {}),
    ("sharded", {"workers": 2}),
    ("colsharded", {"workers": 2}),
    ("gpu", {"backend_options": {"array_module": "numpy"}}),
]

WORKER_BACKENDS = {"sharded", "colsharded"}


# ---------------------------------------------------------------- tracer
class TestTracer:
    def test_span_nesting_and_self_time_decomposition(self):
        tracer = Tracer(track="t")
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child"):
                pass
        records = tracer.records()
        assert [r.name for r in records] == ["grandchild", "child", "child", "root"]
        assert [r.depth for r in records] == [2, 1, 1, 0]
        root = records[-1]
        phases = tracer.phase_totals()
        assert phases["child"].count == 2
        # Self times across the track partition the root span's wall clock.
        total_self = sum(stat.self_s for stat in phases.values())
        assert total_self == pytest.approx(root.duration_s, abs=1e-9)
        # A parent's self time excludes its children entirely.
        assert phases["root"].self_s <= root.duration_s
        assert phases["child"].total_s >= phases["grandchild"].total_s

    def test_instant_events_record_kind_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("tick", lane=3)
        instant = tracer.records()[0]
        assert instant.kind == "instant"
        assert instant.duration_s == 0.0
        assert instant.depth == 1
        assert instant.args == {"lane": 3}

    def test_span_args_survive_into_the_record(self):
        tracer = Tracer()
        with tracer.span("step", poll=7, n_lanes=4):
            pass
        assert tracer.records()[0].args == {"poll": 7, "n_lanes": 4}

    def test_flight_recorder_is_bounded_but_totals_accumulate(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            with tracer.span("round"):
                pass
        assert len(tracer) == 4
        assert tracer.phase_totals()["round"].count == 10
        assert tracer.count("round") == 10
        assert tracer.total_s("round") > 0.0

    def test_merge_worker_records_lands_on_their_own_track(self):
        tracer = Tracer(track="parent")
        with tracer.span("backend.advance"):
            pass
        tracer.merge_worker_records(
            [
                worker_span("worker.wavefront", 10.0, 10.5, depth=1),
                worker_span("worker.advance", 10.0, 10.75, child_s=0.5),
            ],
            track="worker-0",
        )
        assert tracer.tracks() == ("parent", "worker-0")
        worker_phases = tracer.phase_totals("worker-0")
        assert worker_phases["worker.advance"].total_s == pytest.approx(0.75)
        assert worker_phases["worker.advance"].self_s == pytest.approx(0.25)
        assert worker_phases["worker.wavefront"].self_s == pytest.approx(0.5)
        # The accumulating view covers both tracks.
        assert tracer.count("worker.wavefront") == 1
        assert tracer.count("backend.advance") == 1

    def test_disabled_tracer_is_a_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("a", key="value"):
            tracer.instant("event")
        tracer.merge_worker_records([worker_span("w", 0.0, 1.0)], track="x")
        assert len(tracer) == 0
        assert tracer.phase_totals() == {}
        assert len(NULL_TRACER) == 0

    def test_clear_resets_recorder_and_totals(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.phase_totals() == {}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


# ---------------------------------------------------------------- export
def _sample_tracer():
    tracer = Tracer(track="main")
    with tracer.span("round"):
        with tracer.span("advance"):
            pass
        tracer.instant("retire", lane=1)
    tracer.merge_worker_records(
        [worker_span("worker.advance", tracer.records()[0].start_s, tracer.records()[0].end_s)],
        track="worker-0",
    )
    return tracer


class TestExport:
    def test_records_to_events_shape(self):
        events = records_to_events(_sample_tracer().records())
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == {"main", "worker-0"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"round", "advance", "worker.advance"}
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "retire"
        assert instants[0]["s"] == "t"
        assert all(e["ts"] >= 0 for e in spans + instants)
        assert min(e["ts"] for e in spans) == 0.0  # rebased to the epoch

    def test_write_validate_and_phase_table_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tracer(), str(path), metadata={"backend": "numpy"})
        document = load_trace(str(path))
        assert document["metadata"] == {"backend": "numpy"}
        complete = validate_trace(document)
        assert {e["name"] for e in complete} == {"round", "advance", "worker.advance"}
        rows = phase_table(document)
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)
        assert {row["phase"] for row in rows} == {"round", "advance", "worker.advance"}

    def test_load_trace_accepts_bare_event_arrays(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(records_to_events(_sample_tracer().records())))
        assert validate_trace(load_trace(str(path)))

    def test_load_trace_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace(str(path))

    @pytest.mark.parametrize(
        "event,message",
        [
            ({"ph": "X", "ts": 0, "pid": 1, "tid": 1, "dur": 1}, "missing required key"),
            ({"name": "a", "ph": "X", "ts": -1, "pid": 1, "tid": 1, "dur": 1}, "negative ts"),
            ({"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1, "dur": -2}, "negative dur"),
            ({"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}, "missing dur"),
        ],
    )
    def test_validate_trace_names_the_violation(self, event, message):
        with pytest.raises(ValueError, match=message):
            validate_trace({"traceEvents": [event]})

    def test_validate_trace_rejects_same_lane_overlap(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="overlapping spans"):
            validate_trace({"traceEvents": events})
        # The same interval pair on *different* depths is legal nesting.
        events[1]["args"] = {"depth": 1}
        assert len(validate_trace({"traceEvents": events})) == 2


# --------------------------------------------------------------- metrics
class TestMetricsEscaping:
    def test_hostile_label_values_render_on_one_escaped_line(self):
        registry = MetricsRegistry()
        hostile = 'we"ird\\lab\nel'
        registry.inc("obs_test_total", session=hostile)
        lines = [
            line
            for line in registry.render().splitlines()
            if line.startswith("obs_test_total{")
        ]
        # The newline must not split the sample across physical lines.
        assert len(lines) == 1
        assert lines[0] == 'obs_test_total{session="we\\"ird\\\\lab\\nel"} 1'

    def test_backslash_escaped_before_quote_and_newline(self):
        registry = MetricsRegistry()
        registry.inc("obs_order_total", path="a\\nb")  # literal backslash + n
        (line,) = [
            line
            for line in registry.render().splitlines()
            if line.startswith("obs_order_total{")
        ]
        # A pre-escaped input must not collapse into a real newline escape.
        assert line == 'obs_order_total{path="a\\\\nb"} 1'

    def test_hostile_run_config_label_survives_the_metrics_path(self):
        # A tenant may name its run anything RunConfig.label accepts —
        # including exposition-format metacharacters.
        config = RunConfig(genome="ACGT" * 100, label='flow"cell\\A')
        registry = MetricsRegistry()
        registry.inc("obs_label_total", label=config.label)
        (line,) = [
            line
            for line in registry.render().splitlines()
            if line.startswith("obs_label_total{")
        ]
        assert line == 'obs_label_total{label="flow\\"cell\\\\A"} 1'

    def test_serve_metrics_shim_reexports_the_same_class(self):
        from repro.serve.metrics import MetricsRegistry as ShimRegistry

        assert ShimRegistry is MetricsRegistry


# -------------------------------------------------------------- sessions
@pytest.fixture(scope="module")
def obs_flowcell_reads(mixture, kmer_model):
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(
            mean_bases=280, sigma=0.15, min_bases=220, max_bases=460
        ),
        seed=20210825,
    )
    reads = [generator.generate_one(source="virus") for _ in range(3)]
    reads += [generator.generate_one(source="host") for _ in range(9)]
    return reads


@pytest.fixture(scope="module")
def obs_threshold(reference_squiggle, target_signals, nontarget_signals):
    classifier = BatchSquiggleClassifier(reference_squiggle, prefix_samples=800)
    return classifier.calibrate(target_signals, nontarget_signals, chunk_samples=400)


def _session_config(reference, threshold, **overrides):
    base = dict(
        reference=reference,
        threshold=threshold,
        prefix_samples=800,
        chunk_samples=400,
        n_channels=8,
    )
    base.update(overrides)
    return RunConfig(**base)


def _decision_fields(result):
    return {
        outcome.read.read_id: (
            outcome.ejected,
            outcome.decision.cost if outcome.decision else None,
            outcome.decision.samples_used if outcome.decision else None,
            outcome.decision.end_position if outcome.decision else None,
        )
        for outcome in result.session.outcomes
    }


@pytest.fixture(scope="module")
def untraced_baseline(
    reference_squiggle, target_genome, obs_threshold, obs_flowcell_reads
):
    config = _session_config(reference_squiggle, obs_threshold)
    with open_session(config) as session:
        result = session.run(obs_flowcell_reads, target_genome=target_genome)
    return _decision_fields(result)


class TestTracedSessions:
    @pytest.mark.parametrize(
        "backend,extra", OBS_BACKENDS, ids=[b for b, _ in OBS_BACKENDS]
    )
    def test_tracing_never_changes_decisions(
        self,
        backend,
        extra,
        reference_squiggle,
        target_genome,
        obs_threshold,
        obs_flowcell_reads,
        untraced_baseline,
    ):
        """Acceptance: traced == untraced, bit for bit, on every backend."""
        config = _session_config(
            reference_squiggle, obs_threshold, backend=backend, trace=True, **extra
        )
        with open_session(config) as session:
            result = session.run(obs_flowcell_reads, target_genome=target_genome)
            records = session.trace()
            summary = session.summary()
            tracks = session.tracer.tracks()
        assert _decision_fields(result) == untraced_baseline, backend

        names = {record.name for record in records}
        assert {"session.round", "engine.step", "backend.advance"} <= names
        # Spans nest session -> round -> engine -> backend on one track.
        rounds = [r for r in records if r.name == "session.round"]
        steps = [r for r in records if r.name == "engine.step"]
        assert rounds and steps
        assert all(r.depth == 0 for r in rounds)
        assert all(s.depth > 0 for s in steps)

        assert "phase_totals" in summary
        assert summary["phase_totals"]["engine.step"]["count"] == len(steps)
        assert summary["round_wall_s"] > 0.0
        assert summary["n_polls"] >= summary["busy_rounds"] > 0

        if backend in WORKER_BACKENDS:
            worker_tracks = [t for t in tracks if t.startswith(f"{backend}-worker-")]
            assert len(worker_tracks) >= 1, tracks
            assert any(r.name == "worker.wavefront" for r in records)

    def test_untraced_session_records_nothing(
        self, reference_squiggle, target_genome, obs_threshold, obs_flowcell_reads
    ):
        config = _session_config(reference_squiggle, obs_threshold)
        with open_session(config) as session:
            session.run(obs_flowcell_reads, target_genome=target_genome)
            assert session.trace() == []
            assert not session.tracer.enabled
            summary = session.summary()
        assert "phase_totals" not in summary
        assert summary["round_wall_s"] > 0.0
        assert summary["busy_rounds"] > 0

    def test_trace_path_exports_worker_tracks_on_close(
        self,
        tmp_path,
        reference_squiggle,
        target_genome,
        obs_threshold,
        obs_flowcell_reads,
    ):
        path = tmp_path / "sharded.json"
        config = _session_config(
            reference_squiggle,
            obs_threshold,
            backend="sharded",
            workers=2,
            trace_path=str(path),
            label="obs-test",
        )
        with open_session(config) as session:
            session.run(obs_flowcell_reads, target_genome=target_genome)
        document = load_trace(str(path))
        assert document["metadata"]["backend"] == "sharded"
        assert document["metadata"]["label"] == "obs-test"
        complete = validate_trace(document)
        # Parent track plus at least one worker-process track.
        assert len({event["tid"] for event in complete}) >= 2

    def test_pipeline_batch_path_and_session_share_the_tracer(
        self, reference_squiggle, target_genome, obs_threshold, obs_flowcell_reads
    ):
        """Driving the session through ReadUntilPipeline traces identically."""
        config = _session_config(reference_squiggle, obs_threshold, trace=True)
        with open_session(config) as session:
            ReadUntilPipeline(
                session,
                target_genome,
                assemble=False,
                chunk_samples=400,
                n_channels=8,
                batch=True,
            ).run(obs_flowcell_reads)
            assert session.tracer.count("session.round") > 0
            assert session.tracer.count("round.decide") > 0


# -------------------------------------------------------------------- CLI
class TestTraceCli:
    def test_trace_subcommand_prints_phase_table(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.json"
        write_chrome_trace(_sample_tracer(), str(path))
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans on 2 track(s)" in out
        assert "phase" in out and "self %" in out
        assert "worker.advance" in out

    def test_trace_subcommand_rejects_invalid_files(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        assert main(["trace", str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert main(["trace", str(bad)]) == 2
        assert "missing required key" in capsys.readouterr().err

    def test_read_until_trace_flag_writes_a_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        exit_code = main(
            [
                "read-until",
                "--trace",
                str(path),
                "--n-reads",
                "8",
                "--target-length",
                "600",
                "--background-length",
                "2400",
                "--calibration-reads-per-class",
                "4",
            ]
        )
        assert exit_code == 0
        assert "wrote trace to" in capsys.readouterr().out
        assert validate_trace(load_trace(str(path)))
