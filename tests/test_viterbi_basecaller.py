"""Tests for the event-space Viterbi basecaller."""

import numpy as np
import pytest

from repro.align.extend import banded_alignment
from repro.basecall.viterbi import EventViterbiBasecaller
from repro.genomes.sequences import random_genome
from repro.pore_model.kmer_model import KmerModel
from repro.pore_model.synthesis import SquiggleSimulator, ideal_squiggle


@pytest.fixture(scope="module")
def small_kmer_model():
    return KmerModel(k=4, seed=941)


class TestEventViterbiBasecaller:
    def test_clean_signal_high_identity(self, small_kmer_model):
        genome = random_genome(150, seed=3)
        signal, _ = ideal_squiggle(genome, kmer_model=small_kmer_model, samples_per_base=10)
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        result = basecaller.basecall_signal(signal)
        assert result.n_bases > 100
        identity = banded_alignment(result.sequence, genome, band=48).identity
        assert identity > 0.9

    def test_noisy_signal_usable_identity(self, small_kmer_model):
        genome = random_genome(150, seed=5)
        simulator = SquiggleSimulator(small_kmer_model, seed=9)
        signal = simulator.simulate(genome).current_pa
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        result = basecaller.basecall_signal(signal)
        assert result.n_bases > 60
        identity = banded_alignment(result.sequence, genome, band=64).identity
        assert identity > 0.6

    def test_six_mer_model_supported(self, kmer_model):
        genome = random_genome(80, seed=7)
        signal, _ = ideal_squiggle(genome, kmer_model=kmer_model, samples_per_base=10)
        basecaller = EventViterbiBasecaller(kmer_model=kmer_model)
        result = basecaller.basecall_signal(signal)
        assert result.n_bases > 40
        assert set(result.sequence) <= set("ACGT")

    def test_empty_signal(self, small_kmer_model):
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        result = basecaller.basecall_signal(np.array([]))
        assert result.sequence == ""
        assert result.n_events == 0

    def test_path_and_sequence_consistent(self, small_kmer_model):
        genome = random_genome(100, seed=11)
        signal, _ = ideal_squiggle(genome, kmer_model=small_kmer_model, samples_per_base=10)
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        result = basecaller.basecall_signal(signal)
        distinct_steps = sum(
            1 for previous, current in zip(result.kmer_path[:-1], result.kmer_path[1:]) if previous != current
        )
        assert result.n_bases == small_kmer_model.k + distinct_steps

    def test_batch(self, small_kmer_model):
        genome = random_genome(60, seed=13)
        signal, _ = ideal_squiggle(genome, kmer_model=small_kmer_model)
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        results = basecaller.basecall_batch([signal, signal])
        assert len(results) == 2
        assert results[0].sequence == results[1].sequence

    def test_invalid_parameters(self, small_kmer_model):
        with pytest.raises(ValueError):
            EventViterbiBasecaller(kmer_model=small_kmer_model, stay_probability=0.0)
        with pytest.raises(ValueError):
            EventViterbiBasecaller(kmer_model=small_kmer_model, emission_sigma=0.0)

    def test_log_likelihood_finite(self, small_kmer_model):
        genome = random_genome(60, seed=17)
        signal, _ = ideal_squiggle(genome, kmer_model=small_kmer_model)
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        result = basecaller.basecall_signal(signal)
        assert np.isfinite(result.log_likelihood)

    def test_decoded_reads_map_to_reference(self, small_kmer_model):
        """End to end: Viterbi basecalls from raw signal align to the genome."""
        from repro.align.aligner import ReferenceAligner

        genome = random_genome(2000, seed=19)
        simulator = SquiggleSimulator(small_kmer_model, seed=21)
        basecaller = EventViterbiBasecaller(kmer_model=small_kmer_model)
        aligner = ReferenceAligner(genome, k=9, w=4)
        mapped = 0
        for start in (100, 700, 1300):
            fragment = genome[start : start + 300]
            signal = simulator.simulate(fragment).current_pa
            called = basecaller.basecall_signal(signal)
            alignment = aligner.map(called.sequence)
            if alignment is not None and alignment.reference_start <= start + 150:
                mapped += 1
        assert mapped >= 2
