"""Unit tests for reference squiggle construction."""

import numpy as np
import pytest

from repro.core.normalization import NormalizationConfig
from repro.core.reference import ReferenceSquiggle
from repro.genomes.sequences import random_genome, reverse_complement


class TestReferenceSquiggle:
    def test_length_both_strands(self, kmer_model, target_genome):
        reference = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
        per_strand = len(target_genome) - kmer_model.k + 1
        assert len(reference) == 2 * per_strand
        assert reference.forward_length == per_strand

    def test_length_single_strand(self, kmer_model, target_genome):
        reference = ReferenceSquiggle.from_genome(
            target_genome, kmer_model=kmer_model, include_reverse_complement=False
        )
        assert len(reference) == len(target_genome) - kmer_model.k + 1

    def test_forward_half_matches_expected_signal(self, kmer_model, target_genome):
        reference = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
        expected = kmer_model.expected_signal(target_genome)
        assert np.allclose(reference.expected_pa[: reference.forward_length], expected)

    def test_reverse_half_matches_revcomp(self, kmer_model, target_genome):
        reference = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
        expected = kmer_model.expected_signal(reverse_complement(target_genome))
        assert np.allclose(reference.expected_pa[reference.forward_length :], expected)

    def test_quantized_within_int8(self, reference_squiggle):
        assert reference_squiggle.quantized.max() <= 127
        assert reference_squiggle.quantized.min() >= -127

    def test_values_selects_representation(self, reference_squiggle):
        assert reference_squiggle.values(quantized=True) is reference_squiggle.quantized
        assert reference_squiggle.values(quantized=False) is reference_squiggle.normalized

    def test_normalized_is_standardized(self, reference_squiggle):
        normalized = reference_squiggle.normalized
        assert abs(normalized.mean()) < 0.05
        assert np.abs(normalized).max() <= 4.0

    def test_buffer_sizing(self, kmer_model):
        small = ReferenceSquiggle.from_genome(random_genome(1000, seed=1), kmer_model=kmer_model)
        assert small.fits_buffer(buffer_kb=100.0)
        assert small.buffer_bytes(2) == 2 * small.n_positions
        with pytest.raises(ValueError):
            small.buffer_bytes(0)

    def test_large_genome_overflows_buffer(self, kmer_model):
        large = ReferenceSquiggle.from_genome(random_genome(60_000, seed=2), kmer_model=kmer_model)
        assert not large.fits_buffer(buffer_kb=100.0)

    def test_custom_normalization(self, kmer_model, target_genome):
        config = NormalizationConfig(quantize_bits=6)
        reference = ReferenceSquiggle.from_genome(
            target_genome, kmer_model=kmer_model, normalization=config
        )
        assert reference.quantized.max() <= 31
