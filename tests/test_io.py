"""Unit tests for FASTA and FAST5-like I/O."""

import numpy as np
import pytest

from repro.genomes.sequences import random_genome
from repro.io.fast5 import Fast5Read, Fast5Store
from repro.io.fasta import FastaRecord, read_fasta, write_fasta


class TestFastaRecord:
    def test_validates_sequence(self):
        with pytest.raises(ValueError):
            FastaRecord(name="x", sequence="ACGZ")

    def test_requires_name(self):
        with pytest.raises(ValueError):
            FastaRecord(name="", sequence="ACGT")

    def test_len(self):
        assert len(FastaRecord(name="x", sequence="ACGT")) == 4


class TestFastaRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            FastaRecord(name="virus", sequence=random_genome(333, seed=1), description="target"),
            FastaRecord(name="host", sequence=random_genome(101, seed=2)),
        ]
        path = tmp_path / "genomes.fasta"
        assert write_fasta(path, records) == 2
        loaded = read_fasta(path)
        assert [r.name for r in loaded] == ["virus", "host"]
        assert loaded[0].sequence == records[0].sequence
        assert loaded[0].description == "target"
        assert loaded[1].sequence == records[1].sequence

    def test_line_wrapping(self, tmp_path):
        path = tmp_path / "wrap.fasta"
        write_fasta(path, [FastaRecord(name="x", sequence="A" * 150)], line_width=60)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert max(len(line) for line in lines[1:]) == 60

    def test_invalid_line_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fasta", [], line_width=0)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)

    def test_empty_record_rejected(self, tmp_path):
        path = tmp_path / "bad2.fasta"
        path.write_text(">only_header\n>second\nACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)


class TestFast5Read:
    def test_signal_must_be_1d(self):
        with pytest.raises(ValueError):
            Fast5Read(read_id="r", signal=np.zeros((2, 2)))

    def test_duration(self):
        read = Fast5Read(read_id="r", signal=np.zeros(8000), sample_rate=4000.0)
        assert read.duration_seconds == pytest.approx(2.0)

    def test_picoamp_round_trip(self):
        current = np.linspace(60.0, 140.0, 500)
        read = Fast5Read.from_picoamps("r", current)
        recovered = read.to_picoamps()
        assert np.allclose(recovered, current, atol=0.2)

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            Fast5Read(read_id="r", signal=np.zeros(10), sample_rate=0.0)


class TestFast5Store:
    def _make_store(self, n=3):
        store = Fast5Store()
        for index in range(n):
            store.add(
                Fast5Read(
                    read_id=f"read_{index}",
                    signal=np.arange(index * 10 + 5, dtype=np.int16),
                    channel=index,
                    metadata={"source": "test"},
                )
            )
        return store

    def test_add_and_get(self):
        store = self._make_store()
        assert len(store) == 3
        assert "read_1" in store
        assert store.get("read_2").channel == 2

    def test_duplicate_rejected(self):
        store = self._make_store(1)
        with pytest.raises(ValueError):
            store.add(Fast5Read(read_id="read_0", signal=np.zeros(3)))

    def test_save_load_round_trip(self, tmp_path):
        store = self._make_store()
        path = tmp_path / "reads.npz"
        store.save(path)
        loaded = Fast5Store.load(path)
        assert loaded.read_ids() == store.read_ids()
        for read_id in store.read_ids():
            assert np.array_equal(loaded.get(read_id).signal, store.get(read_id).signal)
            assert loaded.get(read_id).metadata == {"source": "test"}
