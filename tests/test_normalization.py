"""Unit tests for signal normalization and quantization."""

import numpy as np
import pytest

from repro.core.normalization import NormalizationConfig, SignalNormalizer


class TestNormalizationConfig:
    def test_defaults(self):
        config = NormalizationConfig()
        assert config.method == "mean_mad"
        assert config.quantize_max == 127
        assert config.quantize_scale == pytest.approx(127 / 4.0)

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            NormalizationConfig(method="minmax")

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            NormalizationConfig(clip=0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            NormalizationConfig(quantize_bits=1)
        with pytest.raises(ValueError):
            NormalizationConfig(quantize_bits=20)

    def test_bits_scale(self):
        assert NormalizationConfig(quantize_bits=6).quantize_max == 31


class TestSignalNormalizer:
    def test_mean_mad_statistics(self):
        normalizer = SignalNormalizer()
        signal = np.array([1.0, 2.0, 3.0, 4.0])
        center, spread = normalizer.statistics(signal)
        assert center == pytest.approx(2.5)
        assert spread == pytest.approx(1.0)

    def test_zscore_statistics(self):
        normalizer = SignalNormalizer(NormalizationConfig(method="zscore"))
        signal = np.array([1.0, 3.0])
        center, spread = normalizer.statistics(signal)
        assert center == pytest.approx(2.0)
        assert spread == pytest.approx(1.0)

    def test_normalize_centers_signal(self, rng):
        normalizer = SignalNormalizer()
        signal = rng.normal(90.0, 12.0, size=5000)
        normalized = normalizer.normalize(signal)
        assert abs(normalized.mean()) < 0.05
        assert np.abs(normalized).max() <= 4.0

    def test_normalize_invariant_to_shift_and_scale(self, rng):
        normalizer = SignalNormalizer()
        signal = rng.normal(90.0, 12.0, size=2000)
        shifted = signal * 1.4 + 17.0
        assert np.allclose(normalizer.normalize(signal), normalizer.normalize(shifted), atol=1e-9)

    def test_empty_signal_rejected(self):
        with pytest.raises(ValueError):
            SignalNormalizer().normalize(np.array([]))

    def test_constant_signal_handled(self):
        normalized = SignalNormalizer().normalize(np.full(100, 42.0))
        assert np.allclose(normalized, 0.0)

    def test_quantize_range(self, rng):
        normalizer = SignalNormalizer()
        signal = rng.normal(90.0, 12.0, size=3000)
        quantized = normalizer.normalize_quantized(signal)
        assert quantized.dtype == np.int32
        assert quantized.max() <= 127 and quantized.min() >= -127

    def test_quantize_dequantize_error_bounded(self, rng):
        normalizer = SignalNormalizer()
        normalized = normalizer.normalize(rng.normal(90.0, 12.0, size=1000))
        recovered = normalizer.dequantize(normalizer.quantize(normalized))
        assert np.abs(recovered - normalized).max() <= 0.5 / normalizer.config.quantize_scale + 1e-9

    def test_outliers_clipped(self):
        normalizer = SignalNormalizer()
        signal = np.concatenate([np.full(1000, 90.0), [1e6]])
        normalized = normalizer.normalize(signal)
        assert normalized.max() <= 4.0
