"""Tests for the batched sDTW execution engine (repro.batch) and its kernel.

The contract under test: ``sdtw_resume_batch`` / ``BatchSDTWEngine`` /
``BatchSquiggleClassifier`` are pure execution-engine changes — every cost,
row and decision is bit-identical to the per-read scalar path, whatever the
kernel config or chunk geometry.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.classifier import BatchSquiggleClassifier
from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.filter import MultiStageSquiggleFilter, SquiggleFilter
from repro.core.sdtw import (
    BatchSDTWState,
    sdtw_last_row,
    sdtw_resume,
    sdtw_resume_batch,
)
from repro.hardware.scheduler import TileScheduler
from repro.pipeline.api import build_pipeline, create_classifier, supports_chunk_batching
from repro.pipeline.read_until import ReadUntilPipeline
from repro.sequencer.read_until_api import ReadUntilSimulator
from repro.sequencer.reads import ReadGenerator, ReadLengthModel
from repro.sequencer.run import MinIONParameters

NO_CAPTURE = MinIONParameters(capture_time_s=0.0)

# Every resumable kernel configuration class: bonus/no-bonus, abs/squared,
# quantized/float, plus a fractional bonus (generic float path).
RESUMABLE_CONFIGS = [
    SDTWConfig.hardware(),
    SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0),
    SDTWConfig(distance="squared", allow_reference_deletions=False, quantize=True, match_bonus=0.0),
    SDTWConfig(distance="squared", allow_reference_deletions=False, quantize=False, match_bonus=0.0),
    SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=False, match_bonus=0.0),
    SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=3.0, match_bonus_cap=4),
    SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=False, match_bonus=2.5, match_bonus_cap=4),
]

signal_values = st.integers(min_value=-127, max_value=127)
lane_query = st.lists(signal_values, min_size=1, max_size=30).map(lambda v: np.array(v))
lane_queries = st.lists(lane_query, min_size=1, max_size=6)
reference_signal = st.lists(signal_values, min_size=4, max_size=50).map(lambda v: np.array(v))

default_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _chunk_schedule(rng, query, n_rounds):
    """Split ``query`` into ``n_rounds`` contiguous (possibly empty) chunks."""
    cuts = np.sort(rng.integers(0, query.size + 1, size=n_rounds - 1))
    bounds = [0, *cuts.tolist(), query.size]
    return [query[bounds[i] : bounds[i + 1]] for i in range(n_rounds)]


# ------------------------------------------------------------------- kernel
class TestBatchKernel:
    @default_settings
    @given(queries=lane_queries, reference=reference_signal, data=st.data())
    def test_bit_identical_to_scalar_resume_over_ragged_rounds(self, queries, reference, data):
        """The core property: per-lane rows, runs, and progress match per-read
        sdtw_resume exactly, across all configs and ragged chunk schedules."""
        config = data.draw(st.sampled_from(RESUMABLE_CONFIGS))
        n_rounds = data.draw(st.integers(min_value=1, max_value=4))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        schedules = [_chunk_schedule(rng, query, n_rounds) for query in queries]

        state = None
        scalar = [None] * len(queries)
        for round_index in range(n_rounds):
            chunks = [schedule[round_index] for schedule in schedules]
            state = sdtw_resume_batch(chunks, reference, config, state=state)
            for lane, chunk in enumerate(chunks):
                if chunk.size:
                    scalar[lane] = sdtw_resume(chunk, reference, config, state=scalar[lane])
        for lane, expected in enumerate(scalar):
            assert expected is not None  # min_size=1 guarantees samples
            assert np.array_equal(state.rows[lane], expected.row)
            assert np.array_equal(state.runs[lane], expected.run)
            assert state.samples_processed[lane] == expected.samples_processed
            assert state.lane(lane).cost == expected.cost
            assert state.lane(lane).end_position == expected.end_position

    @pytest.mark.parametrize("config", RESUMABLE_CONFIGS)
    def test_fresh_batch_matches_last_row(self, config, rng):
        reference = rng.integers(-127, 128, 40)
        queries = [rng.integers(-127, 128, n) for n in (1, 7, 23, 23)]
        state = sdtw_resume_batch(queries, reference, config)
        for lane, query in enumerate(queries):
            expected = sdtw_last_row(query, reference, config)
            assert np.array_equal(
                np.asarray(state.rows[lane], dtype=np.float64),
                np.asarray(expected, dtype=np.float64),
            )

    def test_quantized_state_stays_integer(self, rng):
        """Satellite fix: integer kernels keep int64 state end-to-end."""
        reference = rng.integers(-127, 128, 30)
        query = rng.integers(-127, 128, 12)
        for config in RESUMABLE_CONFIGS:
            scalar = sdtw_resume(query, reference, config)
            batch = sdtw_resume_batch([query], reference, config)
            expected = np.int64 if config.quantize else np.float64
            assert scalar.row.dtype == expected
            assert batch.rows.dtype == expected

    def test_track_runs_false_keeps_rows_identical(self, rng):
        config = SDTWConfig.hardware()
        reference = rng.integers(-127, 128, 50)
        queries = [rng.integers(-127, 128, 40) for _ in range(4)]
        exact = relaxed = None
        for start in range(0, 40, 10):
            chunks = [query[start : start + 10] for query in queries]
            exact = sdtw_resume_batch(chunks, reference, config, state=exact)
            relaxed = sdtw_resume_batch(
                chunks, reference, config, state=relaxed, track_runs=False
            )
            assert np.array_equal(exact.rows, relaxed.rows)
            # Relaxed mode carries the capped counters — the only value the
            # recurrence consumes.
            assert np.array_equal(
                np.minimum(exact.runs, config.match_bonus_cap), relaxed.runs
            )

    def test_zero_length_lane_passes_through(self, rng):
        config = SDTWConfig.hardware()
        reference = rng.integers(-127, 128, 30)
        first = sdtw_resume_batch([rng.integers(-127, 128, 8), rng.integers(-127, 128, 5)], reference, config)
        second = sdtw_resume_batch([np.array([], dtype=np.int64), rng.integers(-127, 128, 4)], reference, config, state=first)
        assert np.array_equal(second.rows[0], first.rows[0])
        assert second.samples_processed[0] == first.samples_processed[0]
        assert second.samples_processed[1] == first.samples_processed[1] + 4

    def test_rejects_vanilla_and_mismatches(self, rng):
        reference = rng.integers(-127, 128, 20)
        with pytest.raises(ValueError):
            sdtw_resume_batch([np.arange(5)], reference, SDTWConfig.vanilla())
        state = BatchSDTWState.initial(2, reference.size, SDTWConfig.hardware())
        with pytest.raises(ValueError):
            sdtw_resume_batch([np.arange(5)], reference, SDTWConfig.hardware(), state=state)
        with pytest.raises(ValueError):
            sdtw_resume_batch(
                [np.arange(5), np.arange(3)], reference[:-1], SDTWConfig.hardware(), state=state
            )


# ------------------------------------------------------------------- engine
class TestBatchEngine:
    def test_admit_retire_recycles_lanes(self, rng):
        engine = BatchSDTWEngine(rng.integers(-127, 128, 25), initial_capacity=2)
        engine.admit("a")
        engine.admit("b")
        assert engine.capacity == 2 and engine.n_active == 2
        engine.admit("c")  # forces growth
        assert engine.capacity == 4
        engine.retire("b")
        assert "b" not in engine and engine.n_active == 2
        engine.admit("d")  # reuses b's lane
        assert engine.capacity == 4
        with pytest.raises(ValueError):
            engine.admit("a")
        engine.retire("unknown")  # no-op

    def test_step_matches_scalar_and_lane_reuse_is_clean(self, rng):
        config = SDTWConfig.hardware()
        reference = rng.integers(-127, 128, 40)
        engine = BatchSDTWEngine(reference, config, initial_capacity=1)
        first = rng.integers(-127, 128, 12)
        engine.step([("one", first)])
        engine.retire("one")
        # A new read on the recycled lane must not see stale state.
        fresh = rng.integers(-127, 128, 9)
        snapshot = engine.step([("two", fresh)])["two"]
        expected = sdtw_resume(fresh, reference, config)
        assert snapshot.cost == expected.cost
        assert snapshot.end_position == expected.end_position
        assert snapshot.samples_processed == expected.samples_processed
        assert np.array_equal(engine.state_of("two").row, expected.row)

    def test_duplicate_keys_rejected(self, rng):
        engine = BatchSDTWEngine(rng.integers(-127, 128, 20))
        with pytest.raises(ValueError):
            engine.step([("x", np.arange(3)), ("x", np.arange(2))])

    def test_occupancy_trace_records_rounds(self, rng):
        engine = BatchSDTWEngine(rng.integers(-127, 128, 20))
        engine.step([("a", rng.integers(-127, 128, 5)), ("b", rng.integers(-127, 128, 3))])
        engine.step([("a", rng.integers(-127, 128, 2))])
        engine.step([])
        assert engine.occupancy_trace == [2, 1, 0]
        assert engine.peak_occupancy == 2
        assert engine.rounds[0].n_samples == 8


# --------------------------------------------------------------- scheduler
class TestBatchTraceScheduling:
    def test_trace_replay_counts_every_lane(self):
        scheduler = TileScheduler(n_tiles=2, classification_latency_s=1e-3)
        stats = scheduler.simulate_batch_trace([4, 0, 3], round_duration_s=0.5)
        assert stats.n_requests == 7
        assert stats.simulated_seconds == pytest.approx(1.5)
        # 4 simultaneous arrivals on 2 tiles: someone waits a full service.
        assert stats.max_waiting_ms >= 1.0
        assert stats.mean_utilization > 0.0

    def test_trace_validation(self):
        scheduler = TileScheduler(n_tiles=1)
        with pytest.raises(ValueError):
            scheduler.simulate_batch_trace([1, -1], 0.5)
        with pytest.raises(ValueError):
            scheduler.simulate_batch_trace([1], 0.0)

    def test_synthetic_simulate_still_works(self):
        stats = TileScheduler(n_tiles=3, seed=5).simulate(request_rate_per_s=100.0, duration_s=1.0)
        assert stats.n_requests > 0
        assert stats.utilization.shape == (3,)


# ----------------------------------------------------- filter batch routing
class TestFilterBatchRouting:
    @pytest.mark.parametrize(
        "config",
        [
            SDTWConfig.hardware(),
            SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0),
            SDTWConfig(distance="squared", allow_reference_deletions=False, quantize=False, match_bonus=0.0),
            SDTWConfig.vanilla(),  # exercises the per-read fallback
        ],
    )
    def test_classify_batch_equals_per_read(
        self, config, reference_squiggle, target_signals, nontarget_signals
    ):
        squiggle_filter = SquiggleFilter(reference_squiggle, config=config, prefix_samples=500)
        signals = list(target_signals) + list(nontarget_signals)
        batch = squiggle_filter.classify_batch(signals, threshold=1e12)
        scalar = [squiggle_filter.classify(signal, threshold=1e12) for signal in signals]
        assert batch == scalar
        assert squiggle_filter.cost_batch(signals) == [
            squiggle_filter.cost(signal) for signal in signals
        ]

    def test_multistage_classify_batch_equals_per_read(
        self, reference_squiggle, target_signals, nontarget_signals
    ):
        multistage = MultiStageSquiggleFilter.calibrated(
            reference_squiggle,
            target_signals,
            nontarget_signals,
            prefix_lengths=(300, 600),
        )
        signals = list(target_signals) + list(nontarget_signals)
        assert multistage.classify_batch(signals) == [
            multistage.classify(signal) for signal in signals
        ]

    def test_empty_batch(self, calibrated_filter):
        assert calibrated_filter.classify_batch([]) == []
        assert calibrated_filter.cost_batch([]) == []


# --------------------------------------------------- streaming classifier
@pytest.fixture(scope="module")
def flowcell_reads(mixture, kmer_model):
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=300, sigma=0.15, min_bases=220, max_bases=500),
        seed=20260728,
    )
    reads = [generator.generate_one(source="virus") for _ in range(8)]
    reads += [generator.generate_one(source="host") for _ in range(24)]
    return reads


@pytest.fixture(scope="module")
def batch_threshold(reference_squiggle, target_signals, nontarget_signals):
    classifier = BatchSquiggleClassifier(reference_squiggle, prefix_samples=800)
    return classifier.calibrate(target_signals, nontarget_signals, chunk_samples=400)


class TestBatchSquiggleClassifier:
    def test_registered_and_advertises_batching(self, reference_squiggle):
        classifier = create_classifier(
            "batch_squigglefilter", reference=reference_squiggle, prefix_samples=800
        )
        assert isinstance(classifier, BatchSquiggleClassifier)
        assert supports_chunk_batching(classifier)
        assert classifier.min_decision_samples == 800

    def test_requires_threshold(self, reference_squiggle, flowcell_reads):
        classifier = BatchSquiggleClassifier(reference_squiggle, prefix_samples=800)
        simulator = ReadUntilSimulator(
            flowcell_reads[:1], parameters=NO_CAPTURE, chunk_samples=400, n_channels=1
        )
        with pytest.raises(ValueError):
            classifier.on_chunk_batch(simulator.get_read_chunks())

    def test_scalar_on_chunk_is_a_batch_of_one(
        self, reference_squiggle, batch_threshold, flowcell_reads
    ):
        batched = BatchSquiggleClassifier(
            reference_squiggle, threshold=batch_threshold, prefix_samples=800
        )
        scalar = BatchSquiggleClassifier(
            reference_squiggle, threshold=batch_threshold, prefix_samples=800
        )
        simulator_a = ReadUntilSimulator(
            flowcell_reads, parameters=NO_CAPTURE, chunk_samples=400, n_channels=4
        )
        simulator_b = ReadUntilSimulator(
            flowcell_reads, parameters=NO_CAPTURE, chunk_samples=400, n_channels=4
        )
        decided_a = {}
        decided_b = {}
        while not simulator_a.finished:
            chunks = simulator_a.get_read_chunks()
            for chunk, action in zip(chunks, batched.on_chunk_batch(chunks)):
                if action.is_terminal:
                    decided_a[chunk.read_id] = action
                simulator_a._apply_action(chunk, action.to_simulator_action(), 0.0)
            if not chunks and not simulator_a.finished:
                break
        while not simulator_b.finished:
            chunks = simulator_b.get_read_chunks()
            for chunk in chunks:
                action = scalar.on_chunk(chunk)
                if action.is_terminal:
                    decided_b[chunk.read_id] = action
                simulator_b._apply_action(chunk, action.to_simulator_action(), 0.0)
            if not chunks and not simulator_b.finished:
                break
        assert decided_a and decided_a == decided_b

    def test_pipeline_batched_equals_scalar_run(
        self, reference_squiggle, target_genome, batch_threshold, flowcell_reads
    ):
        """Acceptance: identical per-read decisions on a seeded flowcell, with
        multi-chunk geometry and 8 concurrent channels."""
        results = {}
        for batch in (True, False):
            classifier = BatchSquiggleClassifier(
                reference_squiggle, threshold=batch_threshold, prefix_samples=800
            )
            pipeline = ReadUntilPipeline(
                classifier,
                target_genome,
                assemble=False,
                chunk_samples=400,
                n_channels=8,
                batch=batch,
            )
            result = pipeline.run(flowcell_reads)
            results[batch] = {
                outcome.read.read_id: (
                    outcome.ejected,
                    outcome.decision.cost if outcome.decision else None,
                    outcome.decision.samples_used if outcome.decision else None,
                )
                for outcome in result.session.outcomes
            }
            assert result.streaming["batched"] is batch
        assert results[True] == results[False]
        assert len(results[True]) == len(flowcell_reads)

    def test_pipeline_matches_squigglefilter_at_default_geometry(
        self, reference_squiggle, target_genome, calibrated_filter, flowcell_reads
    ):
        """With chunk == prefix (the default), per-chunk normalization equals
        whole-prefix normalization, so the batched classifier reproduces the
        classic SquiggleFilter pipeline decisions exactly."""
        scalar = ReadUntilPipeline(
            calibrated_filter, target_genome, prefix_samples=800, assemble=False, n_channels=8
        ).run(flowcell_reads)
        batched_classifier = BatchSquiggleClassifier(
            reference_squiggle, threshold=calibrated_filter.threshold, prefix_samples=800
        )
        batched = ReadUntilPipeline(
            batched_classifier,
            target_genome,
            prefix_samples=800,
            assemble=False,
            n_channels=8,
            batch=True,
        ).run(flowcell_reads)
        scalar_decisions = {
            o.read.read_id: (o.ejected, o.decision.cost) for o in scalar.session.outcomes
        }
        batched_decisions = {
            o.read.read_id: (o.ejected, o.decision.cost) for o in batched.session.outcomes
        }
        assert scalar_decisions == batched_decisions

    def test_occupancy_trace_feeds_tile_scheduler(
        self, reference_squiggle, target_genome, batch_threshold, flowcell_reads
    ):
        classifier = BatchSquiggleClassifier(
            reference_squiggle, threshold=batch_threshold, prefix_samples=800
        )
        result = ReadUntilPipeline(
            classifier,
            target_genome,
            assemble=False,
            chunk_samples=400,
            n_channels=8,
            batch=True,
        ).run(flowcell_reads)
        occupancy = result.streaming["batch_occupancy"]
        assert result.streaming["peak_batch_lanes"] <= 8
        assert sum(occupancy) >= len(flowcell_reads)  # every read aligned at least once
        stats = TileScheduler(n_tiles=2).simulate_batch_trace(
            occupancy, result.streaming["chunk_duration_s"]
        )
        assert stats.n_requests == sum(occupancy)

    def test_coverage_goal_applies_whole_round(
        self, reference_squiggle, target_genome, batch_threshold, flowcell_reads
    ):
        """A goal hit mid-round must not drop the round's other decisions:
        every read that got a terminal action before the stop is accounted."""
        classifier = BatchSquiggleClassifier(
            reference_squiggle, threshold=batch_threshold, prefix_samples=800
        )
        pipeline = ReadUntilPipeline(
            classifier,
            target_genome,
            assemble=False,
            chunk_samples=400,
            n_channels=8,
            batch=True,
        )
        result = pipeline.run(flowcell_reads, target_bases_goal=1)
        outcome_ids = {outcome.read.read_id for outcome in result.session.outcomes}
        # The goal triggers on the first accepted target; every decided read
        # of that round (and before) still shows up in the outcomes.
        accepted = [o for o in result.session.outcomes if not o.ejected and o.decision]
        assert accepted, "goal run produced no accepted reads"
        assert all(
            outcome.decision is not None or outcome.ejected is False
            for outcome in result.session.outcomes
        )
        assert outcome_ids  # session aborted early but accounting is intact

    def test_batch_true_requires_capable_classifier(self, calibrated_filter, target_genome, flowcell_reads):
        pipeline = ReadUntilPipeline(
            calibrated_filter, target_genome, prefix_samples=800, assemble=False, batch=True
        )
        with pytest.raises(ValueError, match="on_chunk_batch"):
            pipeline.run(flowcell_reads)

    def test_build_pipeline_with_batch_key(self, reference_squiggle, target_genome, batch_threshold, flowcell_reads):
        pipeline = build_pipeline(
            {
                "classifier": {
                    "name": "batch_squigglefilter",
                    "reference": reference_squiggle,
                    "threshold": batch_threshold,
                    "prefix_samples": 800,
                },
                "target_genome": target_genome,
                "prefix_samples": 800,
                "batch": True,
                "assemble": False,
            }
        )
        result = pipeline.run(flowcell_reads)
        assert result.streaming["batched"] is True
        assert result.session.n_reads == len(flowcell_reads)
        assert result.recall >= 0.7


# ------------------------------------------------------------------- CLI
class TestBatchCli:
    def test_read_until_batch_flag(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "read-until",
                "--batch",
                "--n-channels", "4",
                "--target-length", "800",
                "--background-length", "3000",
                "--n-reads", "10",
                "--calibration-reads-per-class", "5",
                "--prefix-samples", "500",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        assert "peak_batch_lanes" in output

    def test_batch_flag_requires_squigglefilter(self, capsys):
        from repro.cli import main

        exit_code = main(["read-until", "--batch", "--classifier", "multistage"])
        assert exit_code == 2
        assert "--batch requires" in capsys.readouterr().err

    def test_batch_classifier_selectable_by_name(self, capsys):
        from repro.cli import main

        args = [
            "read-until",
            "--classifier", "batch_squigglefilter",
            "--n-channels", "2",
            "--target-length", "800",
            "--background-length", "3000",
            "--n-reads", "8",
            "--calibration-reads-per-class", "4",
            "--prefix-samples", "500",
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        assert "peak_batch_lanes" in output
        # --no-batch forces the per-read scalar path of the same classifier.
        assert main(args + ["--no-batch"]) == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        assert "peak_batch_lanes" not in output
