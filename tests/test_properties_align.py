"""Property-based tests for the alignment substrate (minimizers, FM-index, aligner)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.align.aligner import ReferenceAligner
from repro.align.extend import banded_alignment
from repro.align.fm_index import FMIndex
from repro.align.minimizer import MinimizerIndex, minimizer_sketch
from repro.genomes.sequences import random_genome, reverse_complement, transcribe_errors

default_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Build a handful of shared genomes/indexes up-front so hypothesis only varies
# the cheap parameters (positions, lengths, seeds) and not the expensive index
# construction.
_GENOME = random_genome(3000, seed=20211018)
_FM_INDEX = FMIndex(_GENOME[:1200])
_ALIGNER = ReferenceAligner(_GENOME)
_MINIMIZER_INDEX = MinimizerIndex(_GENOME)


class TestMinimizerProperties:
    @default_settings
    @given(seed=st.integers(0, 5000), length=st.integers(80, 400))
    def test_sketch_positions_valid_and_sorted(self, seed, length):
        sequence = random_genome(length, seed=seed)
        sketch = minimizer_sketch(sequence, k=11, w=5)
        positions = [m.position for m in sketch]
        assert positions == sorted(positions)
        assert all(0 <= p <= length - 11 for p in positions)

    @default_settings
    @given(start=st.integers(0, 2500), length=st.integers(120, 400))
    def test_substring_shares_minimizer_hits(self, start, length):
        end = min(start + length, len(_GENOME))
        if end - start < 120:
            return
        read = _GENOME[start:end]
        hits = _MINIMIZER_INDEX.hits(read)
        assert hits, "an exact substring must produce minimizer hits"
        forward_hits = [r for _, r, strand in hits if strand == "+"]
        assert any(start - 50 <= r <= end + 50 for r in forward_hits)


class TestFMIndexProperties:
    @default_settings
    @given(start=st.integers(0, 1150), length=st.integers(6, 40))
    def test_locate_agrees_with_string_find(self, start, length):
        reference = _GENOME[:1200]
        end = min(start + length, len(reference))
        pattern = reference[start:end]
        if len(pattern) < 6:
            return
        positions = _FM_INDEX.locate(pattern, limit=200)
        expected = []
        cursor = reference.find(pattern)
        while cursor != -1:
            expected.append(cursor)
            cursor = reference.find(pattern, cursor + 1)
        assert sorted(positions) == sorted(expected[: len(positions)]) or sorted(
            positions
        ) == sorted(expected)
        assert _FM_INDEX.count(pattern) == len(expected)

    @default_settings
    @given(seed=st.integers(0, 5000))
    def test_random_pattern_count_consistency(self, seed):
        pattern = random_genome(12, seed=seed)
        count = _FM_INDEX.count(pattern)
        assert count == _GENOME[:1200].count(pattern)


class TestAlignerProperties:
    @default_settings
    @given(
        start=st.integers(0, 2500),
        length=st.integers(200, 450),
        minus_strand=st.booleans(),
        error_seed=st.integers(0, 1000),
    )
    def test_fragments_map_near_their_origin(self, start, length, minus_strand, error_seed):
        end = min(start + length, len(_GENOME))
        if end - start < 200:
            return
        fragment = _GENOME[start:end]
        fragment = transcribe_errors(fragment, substitution_rate=0.05, seed=error_seed)
        if minus_strand:
            fragment = reverse_complement(fragment)
        alignment = _ALIGNER.map(fragment, refine=False)
        assert alignment is not None
        assert alignment.strand == ("-" if minus_strand else "+")
        # The mapping window must overlap the fragment's true origin.
        assert alignment.reference_start <= end + 60
        assert alignment.reference_end >= start - 60

    @default_settings
    @given(seed=st.integers(0, 5000), length=st.integers(200, 400))
    def test_foreign_sequence_rarely_confident(self, seed, length):
        foreign = random_genome(length, seed=seed + 90_000)
        alignment = _ALIGNER.map(foreign, refine=False)
        if alignment is not None:
            assert alignment.n_anchors <= 6

    @default_settings
    @given(seed=st.integers(0, 2000), length=st.integers(50, 200), rate=st.floats(0.0, 0.15))
    def test_banded_alignment_identity_tracks_error_rate(self, seed, length, rate):
        sequence = random_genome(length, seed=seed)
        noisy = transcribe_errors(sequence, substitution_rate=rate, seed=seed + 1)
        result = banded_alignment(noisy, sequence, band=24)
        assert 0.0 <= result.identity <= 1.0
        assert result.identity >= 1.0 - rate - 0.25
