"""Tests for the tile scheduler model and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.hardware.scheduler import (
    TileScheduler,
    request_rate_for_sequencer,
    required_tiles,
)


class TestTileScheduler:
    def test_light_load_no_waiting(self):
        scheduler = TileScheduler(n_tiles=5, classification_latency_s=2.7e-5, seed=1)
        stats = scheduler.simulate(request_rate_per_s=1000.0, duration_s=2.0)
        assert stats.n_requests > 0
        assert stats.mean_waiting_ms < 0.05
        assert stats.mean_utilization < 0.1

    def test_heavy_load_builds_queue(self):
        scheduler = TileScheduler(n_tiles=1, classification_latency_s=1e-3, seed=2)
        overload = scheduler.simulate(request_rate_per_s=2000.0, duration_s=1.0)
        light = scheduler.simulate(request_rate_per_s=100.0, duration_s=1.0)
        assert overload.mean_waiting_ms > light.mean_waiting_ms
        assert overload.mean_utilization > 0.9

    def test_deterministic_arrivals(self):
        scheduler = TileScheduler(n_tiles=2, classification_latency_s=1e-4, seed=3)
        stats = scheduler.simulate(request_rate_per_s=500.0, duration_s=1.0, poisson=False)
        assert stats.n_requests == 500
        assert stats.utilization.shape == (2,)

    def test_max_sustainable_rate(self):
        scheduler = TileScheduler(n_tiles=5, classification_latency_s=2.7e-5)
        assert scheduler.max_sustainable_request_rate() == pytest.approx(5 / 2.7e-5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TileScheduler(n_tiles=0)
        with pytest.raises(ValueError):
            TileScheduler().simulate(request_rate_per_s=0)

    def test_request_rate_scales_linearly(self):
        base = request_rate_for_sequencer(1.0)
        assert request_rate_for_sequencer(10.0) == pytest.approx(10 * base)
        with pytest.raises(ValueError):
            request_rate_for_sequencer(0)

    def test_required_tiles_monotone_in_scale(self):
        small = required_tiles(1.0)
        large = required_tiles(100.0)
        assert large >= small
        # The paper's 5-tile provisioning covers the 100x future sequencer:
        # each tile classifies a 2000-sample prefix in ~26.4 us, so even the
        # pessimistic one-request-per-prefix model needs few tiles.
        assert large <= 5

    def test_required_tiles_invalid_target(self):
        with pytest.raises(ValueError):
            required_tiles(1.0, utilization_target=0.0)


class TestCli:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in (
            "simulate-specimen",
            "build-reference",
            "classify",
            "read-until",
            "runtime-model",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_simulate_specimen_writes_outputs(self, tmp_path, capsys):
        fasta = tmp_path / "genomes.fasta"
        reads = tmp_path / "reads.npz"
        exit_code = main(
            [
                "simulate-specimen",
                "--target-length", "600",
                "--background-length", "2000",
                "--n-reads", "6",
                "--mean-read-bases", "150",
                "--fasta-out", str(fasta),
                "--reads-out", str(reads),
            ]
        )
        assert exit_code == 0
        assert fasta.exists() and reads.exists()
        output = capsys.readouterr().out
        assert "simulated 6 reads" in output

    def test_build_reference_from_fasta(self, tmp_path, capsys, target_genome):
        from repro.io.fasta import FastaRecord, write_fasta

        fasta = tmp_path / "target.fasta"
        write_fasta(fasta, [FastaRecord(name="virus", sequence=target_genome)])
        exit_code = main(["build-reference", "--fasta", str(fasta)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "fits_100kb_buffer" in output
        assert "yes" in output

    def test_build_reference_synthetic(self, capsys):
        exit_code = main(["build-reference", "--length", "1200", "--single-strand"])
        assert exit_code == 0
        assert "reference_positions" in capsys.readouterr().out

    def test_classify_reports_metrics(self, capsys):
        exit_code = main(
            [
                "classify",
                "--target-length", "1000",
                "--background-length", "4000",
                "--reads-per-class", "5",
                "--prefix-samples", "600",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "recall" in output and "f1" in output

    @pytest.mark.parametrize("classifier", ["squigglefilter", "multistage"])
    def test_read_until_streams_registry_classifier(self, capsys, classifier):
        exit_code = main(
            [
                "read-until",
                "--classifier", classifier,
                "--target-length", "1000",
                "--background-length", "4000",
                "--n-reads", "12",
                "--calibration-reads-per-class", "6",
                "--prefix-samples", "600",
                "--stage-prefixes", "300", "600",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert classifier in output
        assert "reads_processed" in output and "pore_minutes" in output

    def test_runtime_model_output(self, capsys):
        exit_code = main(
            [
                "runtime-model",
                "--recall", "0.9",
                "--false-positive-rate", "0.05",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "control_runtime_minutes" in output
