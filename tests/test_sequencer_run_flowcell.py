"""Unit tests for the flow cell model and the event-driven Read Until session."""

import numpy as np
import pytest

from repro.core.filter import FilterDecision
from repro.sequencer.flowcell import FlowCell, FlowCellConfig, WashEvent
from repro.sequencer.run import (
    MinIONParameters,
    ReadUntilSession,
    run_control_session,
)


def make_decision(accept: bool, samples_used: int = 500) -> FilterDecision:
    return FilterDecision(
        accept=accept,
        cost=0.0,
        per_sample_cost=0.0,
        samples_used=samples_used,
        threshold=1.0,
        end_position=0,
    )


class TestMinIONParameters:
    def test_defaults(self):
        params = MinIONParameters()
        assert params.samples_per_base == pytest.approx(4000.0 / 450.0)
        assert params.max_throughput_samples_per_s == pytest.approx(2_048_000)

    def test_conversions(self):
        params = MinIONParameters()
        assert params.samples_to_seconds(4000) == pytest.approx(1.0)
        assert params.bases_to_seconds(450) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            MinIONParameters(sample_rate_hz=0)
        with pytest.raises(ValueError):
            MinIONParameters(capture_time_s=-1)


class TestReadUntilSession:
    def test_accepted_read_sequenced_fully(self, balanced_reads):
        session = ReadUntilSession(lambda prefix: make_decision(True), prefix_samples=500)
        read = balanced_reads[0]
        outcome = session.process_read(read)
        assert not outcome.ejected
        assert outcome.sequenced_samples == read.n_samples

    def test_rejected_read_truncated(self, balanced_reads):
        session = ReadUntilSession(lambda prefix: make_decision(False, 500), prefix_samples=500)
        read = balanced_reads[0]
        outcome = session.process_read(read)
        assert outcome.ejected
        assert outcome.sequenced_samples <= 500

    def test_latency_costs_extra_samples(self, balanced_reads):
        read = balanced_reads[0]
        fast = ReadUntilSession(lambda prefix: make_decision(False, 500), decision_latency_s=0.0)
        slow = ReadUntilSession(lambda prefix: make_decision(False, 500), decision_latency_s=0.1)
        assert slow.process_read(read).sequenced_samples >= fast.process_read(read).sequenced_samples

    def test_run_stops_at_goal(self, balanced_reads):
        session = ReadUntilSession(lambda prefix: make_decision(True))
        goal = balanced_reads[0].n_bases + 1
        summary = session.run(balanced_reads, target_bases_goal=goal)
        assert summary.target_bases_kept >= goal
        assert summary.n_reads <= len(balanced_reads)

    def test_run_max_reads(self, balanced_reads):
        session = ReadUntilSession(lambda prefix: make_decision(True))
        summary = session.run(balanced_reads, max_reads=3)
        assert summary.n_reads == 3

    def test_summary_statistics(self, balanced_reads):
        session = ReadUntilSession(
            lambda prefix: make_decision(bool(prefix.mean() < np.inf)), prefix_samples=400
        )
        summary = session.run(balanced_reads)
        assert summary.n_reads == len(balanced_reads)
        assert summary.target_read_recall == 1.0
        assert summary.total_time_s > 0

    def test_eject_everything_recall_zero(self, balanced_reads):
        session = ReadUntilSession(lambda prefix: make_decision(False))
        summary = session.run(balanced_reads)
        assert summary.target_read_recall == 0.0
        assert summary.n_ejected == len(balanced_reads)
        assert summary.mean_nontarget_sequenced_samples > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReadUntilSession(lambda prefix: make_decision(True), decision_latency_s=-1)
        with pytest.raises(ValueError):
            ReadUntilSession(lambda prefix: make_decision(True), prefix_samples=0)

    def test_control_session_keeps_everything(self, balanced_reads):
        summary = run_control_session(balanced_reads)
        assert summary.n_ejected == 0
        assert summary.target_read_recall == 1.0

    def test_read_until_saves_time_on_nontargets(self, balanced_reads):
        def oracle(prefix):
            return make_decision(True)

        control = run_control_session(balanced_reads)
        session = ReadUntilSession(
            lambda prefix: make_decision(False, 400), prefix_samples=400
        )
        # Eject everything: total time must be lower than sequencing everything.
        filtered = session.run(balanced_reads)
        assert filtered.total_time_s < control.total_time_s


class TestFlowCell:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlowCellConfig(n_channels=0)
        with pytest.raises(ValueError):
            FlowCellConfig(blockage_rate_per_hour=-0.1)
        with pytest.raises(ValueError):
            WashEvent(time_hours=-1)
        with pytest.raises(ValueError):
            WashEvent(time_hours=1, recovery_fraction=1.5)

    def test_simulation_produces_both_groups(self):
        flowcell = FlowCell(seed=1)
        traces = flowcell.simulate(duration_hours=6.0)
        assert set(traces) == {"control", "read_until"}
        assert traces["control"].active_channels[0] + traces["read_until"].active_channels[0] == 512

    def test_activity_declines_without_wash(self):
        flowcell = FlowCell(FlowCellConfig(blockage_rate_per_hour=0.3), seed=2)
        traces = flowcell.simulate(duration_hours=10.0)
        for trace in traces.values():
            assert trace.final_active < trace.active_channels[0]

    def test_wash_recovers_channels(self):
        config = FlowCellConfig(blockage_rate_per_hour=0.3, permanent_death_rate_per_hour=0.0)
        flowcell = FlowCell(config, seed=3)
        wash = WashEvent(time_hours=5.0, recovery_fraction=1.0)
        traces = flowcell.simulate(duration_hours=10.0, washes=[wash])
        control = traces["control"]
        before = control.at(4.75)
        after = control.at(5.0)
        assert after > before

    def test_read_until_not_more_damaging(self):
        flowcell = FlowCell(seed=4)
        summary = flowcell.wash_recovery_gap(duration_hours=12.0, wash_time_hours=6.0)
        # After the wash the normalized active-channel gap is small (paper Fig. 20).
        assert abs(summary["gap_after_wash"]) < 0.12

    def test_invalid_simulation_arguments(self):
        flowcell = FlowCell(seed=5)
        with pytest.raises(ValueError):
            flowcell.simulate(duration_hours=0)
        with pytest.raises(ValueError):
            flowcell.simulate(duration_hours=1, read_until_fraction=0.0)
