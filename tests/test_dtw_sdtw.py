"""Unit tests for the DTW and sDTW kernels, including cross-kernel equivalence."""

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.dtw import dtw_cost, dtw_cost_matrix, dtw_path
from repro.core.sdtw import sdtw_cost, sdtw_cost_matrix, sdtw_last_row, sdtw_resume


def random_signals(rng, n=40, m=120, integer=True):
    if integer:
        return (
            rng.integers(-100, 100, size=n).astype(np.int64),
            rng.integers(-100, 100, size=m).astype(np.int64),
        )
    return rng.normal(size=n), rng.normal(size=m)


class TestClassicDTW:
    def test_identical_signals_zero_cost(self):
        signal = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        assert dtw_cost(signal, signal) == pytest.approx(0.0)

    def test_warping_invariance(self):
        # Stretching one signal in time should cost (almost) nothing.
        base = np.array([1.0, 5.0, 2.0, 8.0])
        stretched = np.repeat(base, 3)
        assert dtw_cost(base, stretched) == pytest.approx(0.0)

    def test_cost_positive_for_different_signals(self):
        assert dtw_cost(np.array([0.0, 0.0]), np.array([5.0, 5.0])) > 0

    def test_absolute_vs_squared(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 3.0, 2.0])
        assert dtw_cost(a, b, "absolute") <= dtw_cost(a, b, "squared")

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            dtw_cost(np.array([1.0]), np.array([1.0]), "cosine")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_cost(np.array([]), np.array([1.0]))

    def test_path_endpoints(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 2.5, 3.0])
        cost, path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (len(a) - 1, len(b) - 1)
        assert cost == pytest.approx(dtw_cost(a, b))

    def test_path_monotone(self):
        rng = np.random.default_rng(1)
        a, b = random_signals(rng, 10, 15, integer=False)
        _, path = dtw_path(a, b)
        for (i0, j0), (i1, j1) in zip(path[:-1], path[1:]):
            assert 0 <= i1 - i0 <= 1 and 0 <= j1 - j0 <= 1
            assert (i1 - i0) + (j1 - j0) >= 1

    def test_matrix_shape(self):
        matrix = dtw_cost_matrix(np.arange(4.0), np.arange(6.0))
        assert matrix.shape == (4, 6)


class TestSDTWBasics:
    def test_exact_subsequence_zero_cost(self):
        reference = np.array([5.0, 1.0, 2.0, 3.0, 9.0, 4.0])
        query = np.array([1.0, 2.0, 3.0])
        config = SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=False, match_bonus=0.0)
        result = sdtw_cost(query, reference, config)
        assert result.cost == pytest.approx(0.0)
        assert result.end_position == 3

    def test_subsequence_cheaper_than_global(self):
        rng = np.random.default_rng(2)
        reference = rng.normal(size=200)
        query = reference[50:80] + rng.normal(0, 0.01, size=30)
        config = SDTWConfig.vanilla()
        sub_cost = sdtw_cost(query, reference, config).cost
        global_cost = dtw_cost(query, reference)
        assert sub_cost < global_cost

    def test_end_position_localizes_query(self):
        rng = np.random.default_rng(3)
        reference = rng.integers(-100, 100, size=300).astype(np.int64)
        query = reference[120:160]
        config = SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0)
        result = sdtw_cost(query, reference, config)
        assert result.cost == 0
        assert result.end_position == 159

    def test_per_sample_cost(self):
        reference = np.arange(50.0)
        query = np.full(10, 100.0)
        result = sdtw_cost(query, reference, SDTWConfig.vanilla())
        assert result.per_sample_cost == pytest.approx(result.cost / 10)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            sdtw_cost(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            sdtw_cost(np.array([1.0]), np.array([]))

    def test_2d_inputs_rejected(self):
        with pytest.raises(ValueError):
            sdtw_cost(np.zeros((2, 2)), np.arange(5.0))


class TestKernelEquivalence:
    """The vectorized kernels must agree with the direct DP matrix."""

    @pytest.mark.parametrize("name", ["vanilla", "hardware", "abs_only", "nodel_only", "int_only"])
    def test_last_row_matches_matrix(self, name):
        configs = {
            "vanilla": SDTWConfig.vanilla(),
            "hardware": SDTWConfig.hardware(),
            "abs_only": SDTWConfig.vanilla().with_(distance="absolute"),
            "nodel_only": SDTWConfig.vanilla().with_(allow_reference_deletions=False),
            "int_only": SDTWConfig.vanilla().with_(quantize=True),
        }
        config = configs[name]
        rng = np.random.default_rng(hash(name) % (2**32))
        query, reference = random_signals(rng, 25, 70, integer=config.quantize)
        matrix, _ = sdtw_cost_matrix(query, reference, config)
        last_row = sdtw_last_row(query, reference, config)
        assert np.allclose(matrix[-1], last_row)

    def test_cost_equals_min_of_last_row(self):
        rng = np.random.default_rng(11)
        query, reference = random_signals(rng, 30, 90)
        config = SDTWConfig.hardware()
        result = sdtw_cost(query, reference, config)
        last_row = sdtw_last_row(query, reference, config)
        assert result.cost == pytest.approx(last_row.min())

    def test_no_deletion_cost_at_least_vanilla(self):
        # Removing a DP move can only increase (or keep) the optimal cost.
        rng = np.random.default_rng(12)
        query, reference = random_signals(rng, 30, 90, integer=False)
        vanilla = sdtw_cost(query, reference, SDTWConfig.vanilla().with_(distance="absolute")).cost
        restricted = sdtw_cost(
            query,
            reference,
            SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=False, match_bonus=0.0),
        ).cost
        assert restricted >= vanilla - 1e-9

    def test_bonus_lowers_cost(self):
        rng = np.random.default_rng(13)
        query, reference = random_signals(rng, 40, 100)
        no_bonus = sdtw_cost(
            query,
            reference,
            SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0),
        ).cost
        with_bonus = sdtw_cost(query, reference, SDTWConfig.hardware()).cost
        assert with_bonus <= no_bonus


class TestTraceback:
    def test_path_is_contiguous_and_monotone(self):
        rng = np.random.default_rng(14)
        reference = rng.integers(-80, 80, size=120).astype(np.int64)
        query = reference[40:70]
        config = SDTWConfig.hardware()
        _, path = sdtw_cost_matrix(query, reference, config, return_path=True)
        assert path is not None
        assert path[0][0] == 0
        assert path[-1][0] == len(query) - 1
        for (i0, j0), (i1, j1) in zip(path[:-1], path[1:]):
            assert i1 == i0 + 1
            assert j1 - j0 in (0, 1)

    def test_exact_match_path_is_diagonal(self):
        reference = np.arange(0, 500, 10, dtype=np.int64)
        query = reference[10:20]
        config = SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0)
        _, path = sdtw_cost_matrix(query, reference, config, return_path=True)
        reference_positions = [j for _, j in path]
        assert reference_positions == list(range(10, 20))


class TestResume:
    def test_resume_matches_full(self):
        rng = np.random.default_rng(15)
        query, reference = random_signals(rng, 50, 150)
        config = SDTWConfig.hardware()
        full = sdtw_resume(query, reference, config)
        first = sdtw_resume(query[:20], reference, config)
        second = sdtw_resume(query[20:], reference, config, state=first)
        assert np.allclose(second.row, full.row)
        assert second.samples_processed == 50

    def test_resume_without_bonus(self):
        rng = np.random.default_rng(16)
        query, reference = random_signals(rng, 30, 80)
        config = SDTWConfig(distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0)
        full = sdtw_last_row(query, reference, config)
        first = sdtw_resume(query[:10], reference, config)
        second = sdtw_resume(query[10:], reference, config, state=first)
        assert np.allclose(second.row, full)

    def test_resume_rejects_vanilla(self):
        with pytest.raises(ValueError):
            sdtw_resume(np.arange(5), np.arange(10), SDTWConfig.vanilla())

    def test_resume_rejects_mismatched_reference(self):
        rng = np.random.default_rng(17)
        query, reference = random_signals(rng, 10, 40)
        config = SDTWConfig.hardware()
        state = sdtw_resume(query, reference, config)
        with pytest.raises(ValueError):
            sdtw_resume(query, reference[:-5], config, state=state)

    def test_state_cost_and_end(self):
        rng = np.random.default_rng(18)
        query, reference = random_signals(rng, 20, 60)
        config = SDTWConfig.hardware()
        state = sdtw_resume(query, reference, config)
        result = sdtw_cost(query, reference, config)
        assert state.cost == pytest.approx(result.cost)
        assert state.end_position == result.end_position
