"""Unit tests for the simulated basecaller, event segmentation and performance models."""

import numpy as np
import pytest

from repro.basecall.basecaller import GUPPY, GUPPY_LITE, BasecallerProfile, SimulatedBasecaller
from repro.basecall.events import (
    Event,
    event_means,
    expected_event_count,
    segment_events,
    tstat_boundaries,
)
from repro.basecall.performance import (
    BASECALLER_PERFORMANCE,
    MINION_MAX_BASES_PER_S,
    basecaller_performance,
    extra_bases_sequenced,
    performance_table,
    read_until_latency_ms,
    read_until_throughput_samples_per_s,
)
from repro.align.extend import banded_alignment
from repro.pore_model.synthesis import ideal_squiggle


class TestBasecallerProfiles:
    def test_guppy_more_accurate_than_lite(self):
        assert GUPPY.error_rate < GUPPY_LITE.error_rate

    def test_guppy_more_expensive(self):
        assert GUPPY.operations_per_chunk > GUPPY_LITE.operations_per_chunk

    def test_operations_per_sample(self):
        assert GUPPY_LITE.operations_per_sample == pytest.approx(141_000_000 / 2000)

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            BasecallerProfile("bad", 0.5, 0.6, 0.0, 1000)
        with pytest.raises(ValueError):
            BasecallerProfile("bad", 0.1, 0.1, 0.1, 0)


class TestSimulatedBasecaller:
    def test_full_read_identity_near_profile(self, balanced_reads):
        basecaller = SimulatedBasecaller(GUPPY_LITE, seed=1)
        read = balanced_reads[0]
        result = basecaller.basecall(read)
        # Alignment-based identity (positional identity collapses after indels).
        identity = banded_alignment(result.sequence, read.sequence).identity
        assert identity > 0.85

    def test_guppy_more_accurate_in_practice(self, balanced_reads):
        read = balanced_reads[2]
        lite = SimulatedBasecaller(GUPPY_LITE, seed=2).basecall(read)
        hac = SimulatedBasecaller(GUPPY, seed=2).basecall(read)
        lite_identity = banded_alignment(lite.sequence, read.sequence).identity
        hac_identity = banded_alignment(hac.sequence, read.sequence).identity
        assert hac_identity >= lite_identity - 0.02

    def test_prefix_basecalls_fewer_bases(self, balanced_reads):
        basecaller = SimulatedBasecaller(GUPPY_LITE, seed=3)
        read = balanced_reads[1]
        prefix = basecaller.basecall(read, n_samples=read.n_samples // 4)
        full = basecaller.basecall(read)
        assert prefix.n_bases < full.n_bases
        assert prefix.n_samples == read.n_samples // 4

    def test_operation_count_scales_with_chunks(self, balanced_reads):
        basecaller = SimulatedBasecaller(GUPPY_LITE, seed=4)
        read = balanced_reads[0]
        result = basecaller.basecall(read, n_samples=2000)
        assert result.n_operations == GUPPY_LITE.operations_per_chunk
        longer = basecaller.basecall(read, n_samples=4000)
        assert longer.n_operations >= result.n_operations

    def test_zero_samples_rejected(self, balanced_reads):
        basecaller = SimulatedBasecaller(GUPPY_LITE)
        with pytest.raises(ValueError):
            basecaller.basecall(balanced_reads[0], n_samples=0)

    def test_batch(self, balanced_reads):
        basecaller = SimulatedBasecaller(GUPPY_LITE, seed=5)
        results = basecaller.basecall_batch(balanced_reads[:4])
        assert len(results) == 4

    def test_identity_estimate(self):
        assert SimulatedBasecaller(GUPPY).identity_estimate() == pytest.approx(0.95)


class TestEventSegmentation:
    def test_detects_level_changes(self, kmer_model):
        signal, _ = ideal_squiggle("ACGTACGTACGTACGTACGTACGT", kmer_model=kmer_model, samples_per_base=10)
        events = segment_events(signal)
        expected = expected_event_count(signal.size, 10)
        assert expected * 0.5 <= len(events) <= expected * 1.6

    def test_event_fields_consistent(self, kmer_model):
        signal, _ = ideal_squiggle("ACGTTGCAACGT", kmer_model=kmer_model)
        events = segment_events(signal)
        total = sum(event.length for event in events)
        assert total == signal.size
        for event in events:
            assert event.end <= signal.size

    def test_flat_signal_single_event(self):
        events = segment_events(np.full(200, 85.0))
        assert len(events) == 1
        assert events[0].length == 200

    def test_empty_signal(self):
        assert segment_events(np.array([])) == []

    def test_short_signal_single_event(self):
        events = segment_events(np.array([1.0, 2.0, 1.5]))
        assert len(events) == 1

    def test_boundaries_sorted(self, kmer_model):
        signal, _ = ideal_squiggle("ACGTACGTACGTACG", kmer_model=kmer_model)
        boundaries = tstat_boundaries(signal)
        assert boundaries == sorted(boundaries)

    def test_event_means_array(self):
        events = [Event(start=0, length=5, mean=80.0, stdv=1.0), Event(start=5, length=5, mean=95.0, stdv=1.0)]
        assert np.allclose(event_means(events), [80.0, 95.0])

    def test_invalid_event(self):
        with pytest.raises(ValueError):
            Event(start=-1, length=5, mean=0.0, stdv=0.0)
        with pytest.raises(ValueError):
            Event(start=0, length=0, mean=0.0, stdv=0.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            tstat_boundaries(np.zeros(100), window=1)

    def test_expected_event_count_invalid(self):
        with pytest.raises(ValueError):
            expected_event_count(100, 0)


class TestBasecallerPerformanceModel:
    def test_all_records_present(self):
        pairs = {(record.basecaller, record.device) for record in BASECALLER_PERFORMANCE}
        assert ("guppy_lite", "titan_xp") in pairs
        assert ("guppy", "jetson_xavier") in pairs
        assert len(pairs) == 4

    def test_jetson_guppy_lite_matches_paper(self):
        record = basecaller_performance("guppy_lite", "jetson_xavier")
        # Paper: ~95,700 bases/s, 41.5 % of the MinION's 230,400 bases/s.
        assert record.read_until_bases_per_s == pytest.approx(95_700, rel=0.02)
        assert record.minion_fraction == pytest.approx(0.415, abs=0.01)
        assert not record.supports_full_read_until()

    def test_titan_guppy_lite_keeps_up(self):
        record = basecaller_performance("guppy_lite", "titan_xp")
        assert record.supports_full_read_until()

    def test_guppy_lite_latency(self):
        assert read_until_latency_ms("guppy_lite", "titan_xp") == pytest.approx(149.0)

    def test_guppy_latency_above_one_second(self):
        assert read_until_latency_ms("guppy", "titan_xp") > 1000.0

    def test_throughput_samples(self):
        record = basecaller_performance("guppy_lite", "jetson_xavier")
        assert read_until_throughput_samples_per_s("guppy_lite", "jetson_xavier") == pytest.approx(
            record.read_until_bases_per_s * 10
        )

    def test_unknown_configuration(self):
        with pytest.raises(KeyError):
            basecaller_performance("bonito", "titan_xp")

    def test_extra_bases(self):
        # Paper: Guppy-lite's 149 ms costs ~60 extra bases, Guppy's >1 s costs >400.
        assert extra_bases_sequenced(149.0) == pytest.approx(67, abs=10)
        assert extra_bases_sequenced(1060.0) > 400
        with pytest.raises(ValueError):
            extra_bases_sequenced(-1)

    def test_performance_table_rows(self):
        rows = performance_table()
        assert len(rows) == len(BASECALLER_PERFORMANCE)
        assert {"basecaller", "device", "read_until_latency_ms"} <= set(rows[0])

    def test_minion_constant(self):
        assert MINION_MAX_BASES_PER_S == pytest.approx(230_400)
