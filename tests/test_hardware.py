"""Unit tests for the hardware model: PEs, tiles, normalizer, ASIC and performance."""

import numpy as np
import pytest

from repro.core.config import SDTWConfig
from repro.core.normalization import SignalNormalizer
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import sdtw_cost, sdtw_last_row
from repro.genomes.sequences import random_genome
from repro.hardware.accelerator import AcceleratorConfig, SquiggleFilterAccelerator
from repro.hardware.asic import AsicModel, TechnologyConstants, synthesis_table
from repro.hardware.devices import DEVICES, EdgeSoC, device, device_table
from repro.hardware.normalizer import HardwareNormalizer
from repro.hardware.pe import INFINITE_COST, PEState, ProcessingElement, ThresholdComparator
from repro.hardware.performance import (
    accelerator_performance,
    classification_cycles,
    latency_comparison,
    speedup_over_baseline,
    throughput_comparison,
)
from repro.hardware.systolic import SystolicTile


class TestProcessingElement:
    def test_first_pe_free_start(self):
        pe = ProcessingElement(index=0)
        pe.reset(50)
        state = pe.step(45, PEState(), PEState())
        assert state.valid
        assert state.cost == 5
        assert state.run_length == 1

    def test_inner_pe_without_valid_inputs_idles(self):
        pe = ProcessingElement(index=3)
        pe.reset(50)
        state = pe.step(45, PEState(), PEState())
        assert not state.valid

    def test_diagonal_bonus_applied(self):
        pe = ProcessingElement(index=1, match_bonus=10, match_bonus_cap=10)
        pe.reset(30)
        diagonal = PEState(cost=100, run_length=4, valid=True)
        vertical = PEState(cost=200, run_length=4, valid=True)
        state = pe.step(30, left_previous=vertical, left_before_previous=diagonal)
        # diagonal candidate 100 - 10*4 = 60 beats vertical 200; local distance 0.
        assert state.cost == 60
        assert state.run_length == 1

    def test_vertical_extends_run(self):
        pe = ProcessingElement(index=1, match_bonus=10)
        pe.reset(30)
        vertical = PEState(cost=10, run_length=2, valid=True)
        state = pe.step(35, left_previous=vertical, left_before_previous=PEState())
        assert state.cost == 15
        assert state.run_length == 3

    def test_threshold_comparator(self):
        comparator = ThresholdComparator(threshold=100)
        assert not comparator.has_observation
        comparator.observe(PEState(cost=150, run_length=1, valid=True))
        comparator.observe(PEState(cost=80, run_length=1, valid=True))
        assert comparator.minimum_cost == 80
        assert comparator.decision()

    def test_comparator_without_threshold(self):
        with pytest.raises(ValueError):
            ThresholdComparator().decision()


class TestSystolicTile:
    def test_align_matches_software_kernel(self, rng):
        query = rng.integers(-100, 100, size=50)
        reference = rng.integers(-100, 100, size=200)
        tile = SystolicTile(n_pes=64)
        result = tile.align(query, reference)
        software = sdtw_cost(query, reference, tile.config)
        assert result.cost == pytest.approx(software.cost)
        assert result.end_position == software.end_position

    def test_cycle_simulation_matches_functional_model(self, rng):
        query = rng.integers(-60, 60, size=16)
        reference = rng.integers(-60, 60, size=48)
        tile = SystolicTile(n_pes=16)
        fast = tile.align(query, reference)
        slow = tile.simulate_cycles(query, reference)
        assert slow.cost == pytest.approx(fast.cost)
        assert slow.end_position == fast.end_position
        assert slow.compute_cycles == len(query) + len(reference) - 1

    def test_threshold_decision(self, rng):
        query = rng.integers(-50, 50, size=20)
        reference = np.concatenate([rng.integers(-50, 50, size=80), query])
        tile = SystolicTile(n_pes=32)
        accept = tile.align(query, reference, threshold=10.0)
        reject = tile.align(query, rng.integers(-50, 50, size=100), threshold=-10**6)
        assert accept.accept is True
        assert reject.accept is False

    def test_query_larger_than_tile_rejected(self, rng):
        tile = SystolicTile(n_pes=8)
        with pytest.raises(ValueError):
            tile.align(rng.integers(0, 10, size=9), rng.integers(0, 10, size=20))

    def test_multi_stage_resume(self, rng):
        query = rng.integers(-80, 80, size=40)
        reference = rng.integers(-80, 80, size=120)
        tile = SystolicTile(n_pes=64)
        full = tile.align(query, reference)
        first = tile.align(query[:20], reference, keep_state=True)
        second = tile.align(query[20:], reference, state=first.state)
        assert second.cost == pytest.approx(full.cost)

    def test_reference_buffer_check(self):
        tile = SystolicTile()
        assert tile.reference_fits(50_000)
        assert not tile.reference_fits(60_000)

    def test_intermediate_bandwidth(self):
        tile = SystolicTile()
        assert tile.intermediate_bandwidth_bytes(60_000) == 240_000


class TestHardwareNormalizer:
    def test_matches_software_normalizer(self, rng):
        signal_pa = rng.normal(90, 12, size=1000)
        hardware = HardwareNormalizer(chunk_samples=1000)
        adc = hardware.quantize_adc(signal_pa)
        hardware_output = hardware.normalize_signal(adc)
        software = SignalNormalizer().normalize_quantized(adc.astype(np.float64))
        # ADC path and float path agree to within one quantization step almost
        # everywhere.
        assert np.mean(np.abs(hardware_output - software) <= 1) > 0.99

    def test_chunked_streaming(self, rng):
        hardware = HardwareNormalizer(chunk_samples=100)
        outputs = []
        for sample in hardware.quantize_adc(rng.normal(90, 12, size=250)):
            outputs.extend(hardware.push(int(sample)))
        outputs.extend(hardware.flush())
        assert len(outputs) == 250

    def test_output_range(self, rng):
        hardware = HardwareNormalizer(chunk_samples=500)
        outputs = hardware.normalize_signal(hardware.quantize_adc(rng.normal(90, 20, size=500)))
        assert outputs.max() <= 127 and outputs.min() >= -127

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            HardwareNormalizer(chunk_samples=0)
        with pytest.raises(ValueError):
            HardwareNormalizer(adc_bits=2)

    def test_stats_recorded(self, rng):
        hardware = HardwareNormalizer(chunk_samples=200)
        hardware.normalize_signal(hardware.quantize_adc(rng.normal(90, 12, size=200)))
        assert hardware.last_stats.n_samples == 200
        assert hardware.last_stats.mad > 0


class TestAsicModel:
    def test_table4_regenerated(self):
        model = AsicModel()
        rows = {row["element"]: row for row in synthesis_table(model)}
        assert rows["Tile (1x2000 PEs)"]["area_mm2"] == pytest.approx(2.423, abs=0.01)
        assert rows["Tile (1x2000 PEs)"]["power_w"] == pytest.approx(2.78, abs=0.01)
        assert rows["Complete 1-Tile ASIC"]["area_mm2"] == pytest.approx(2.65, abs=0.01)
        assert rows["Complete 1-Tile ASIC"]["power_w"] == pytest.approx(2.86, abs=0.01)
        assert rows["Complete 5-Tile ASIC"]["area_mm2"] == pytest.approx(13.25, abs=0.05)
        assert rows["Complete 5-Tile ASIC"]["power_w"] == pytest.approx(14.31, abs=0.05)

    def test_power_gating(self):
        model = AsicModel()
        assert model.power_gated_power_w(0) == 0.0
        assert model.power_gated_power_w(5) == pytest.approx(model.total_power_w)
        with pytest.raises(ValueError):
            model.power_gated_power_w(6)

    def test_reference_capacity_covers_sars_cov_2(self):
        model = AsicModel()
        assert model.max_reference_samples() >= 50_000

    def test_scaling_with_pe_count(self):
        small = AsicModel(n_pes_per_tile=1000)
        large = AsicModel(n_pes_per_tile=4000)
        assert large.tile_area_mm2 > 2 * small.tile_area_mm2 * 0.9

    def test_invalid_technology(self):
        with pytest.raises(ValueError):
            TechnologyConstants(clock_ghz=0)
        with pytest.raises(ValueError):
            AsicModel(n_tiles=0)


class TestDevices:
    def test_table3_devices_present(self):
        names = {spec.name for spec in DEVICES}
        assert {"jetson_xavier", "titan_xp", "arm_v8_2", "xeon_e5_2697v3"} <= names

    def test_lookup(self):
        assert device("titan_xp").cores == 3840
        with pytest.raises(KeyError):
            device("a100")

    def test_table_rows(self):
        rows = device_table()
        assert len(rows) == len(DEVICES)

    def test_edge_soc(self):
        soc = EdgeSoC()
        assert soc.total_power_w < 70
        assert soc.supports_multistage_bandwidth(n_tiles=5)
        assert not soc.supports_multistage_bandwidth(n_tiles=20)
        assert soc.flash_stores_one_day()


class TestPerformanceModel:
    def test_classification_cycles(self):
        assert classification_cycles(60_000, 2000) == 66_000
        with pytest.raises(ValueError):
            classification_cycles(0)

    def test_sars_cov_2_latency_matches_paper(self):
        performance = accelerator_performance(30_000)
        assert performance.latency_ms == pytest.approx(0.027, abs=0.002)

    def test_lambda_latency_matches_paper(self):
        performance = accelerator_performance(48_502)
        assert performance.latency_ms == pytest.approx(0.043, abs=0.003)

    def test_tile_throughputs_match_paper(self):
        covid = accelerator_performance(30_000)
        lam = accelerator_performance(48_502)
        assert covid.tile_throughput_samples_per_s == pytest.approx(74.6e6, rel=0.05)
        assert lam.tile_throughput_samples_per_s == pytest.approx(46.7e6, rel=0.05)

    def test_headroom_exceeds_100x(self):
        assert accelerator_performance(30_000).minion_headroom > 100

    def test_speedup_over_edge_gpu(self):
        assert speedup_over_baseline(48_502) > 200

    def test_latency_comparison_ordering(self):
        rows = {row["classifier"]: row["latency_ms"] for row in latency_comparison()}
        assert rows["squigglefilter"] < 0.1
        assert rows["guppy_lite@titan_xp"] == pytest.approx(149.0)
        assert rows["guppy@titan_xp"] > 1000
        assert rows["squigglefilter"] < rows["guppy_lite@jetson_xavier"]

    def test_throughput_comparison_flags(self):
        rows = {row["classifier"]: row for row in throughput_comparison()}
        assert rows["squigglefilter"]["keeps_up_with_minion"]
        assert not rows["guppy_lite@jetson_xavier"]["keeps_up_with_minion"]


class TestAccelerator:
    @pytest.fixture(scope="class")
    def accelerator(self, reference_squiggle):
        config = AcceleratorConfig(n_tiles=2, n_pes_per_tile=800)
        return SquiggleFilterAccelerator(reference_squiggle, config=config)

    def test_requires_threshold(self, accelerator, target_signals):
        with pytest.raises(ValueError):
            accelerator.classify(target_signals[0])

    def test_calibrate_and_classify(self, accelerator, target_signals, nontarget_signals):
        threshold = accelerator.calibrate_threshold(
            target_signals, nontarget_signals, prefix_samples=800
        )
        assert np.isfinite(threshold)
        accepted_targets = sum(
            1 for signal in target_signals if accelerator.classify(signal, 800).accept
        )
        accepted_background = sum(
            1 for signal in nontarget_signals if accelerator.classify(signal, 800).accept
        )
        assert accepted_targets >= len(target_signals) - 1
        assert accepted_background <= 1

    def test_round_robin_dispatch(self, accelerator, target_signals):
        accelerator.program_threshold(0.0)
        accelerator.stats.per_tile_reads.clear()
        accelerator.classify_batch(target_signals[:4], prefix_samples=400)
        assert len(accelerator.stats.per_tile_reads) == 2

    def test_latency_and_throughput_reporting(self, accelerator):
        assert accelerator.latency_ms(800) > 0
        assert accelerator.throughput_samples_per_s(800) > 1e6
        assert accelerator.area_mm2() > 0
        assert accelerator.power_w(1) < accelerator.power_w()

    def test_reference_too_large_rejected(self, kmer_model):
        huge = ReferenceSquiggle.from_genome(random_genome(40_000, seed=3), kmer_model=kmer_model)
        with pytest.raises(ValueError):
            SquiggleFilterAccelerator(huge, config=AcceleratorConfig(n_tiles=1, n_pes_per_tile=100))

    def test_stats_accumulate(self, accelerator, nontarget_signals):
        accelerator.program_threshold(-(10**9))
        before = accelerator.stats.reads_classified
        accelerator.classify(nontarget_signals[0], 400)
        assert accelerator.stats.reads_classified == before + 1
        assert accelerator.stats.reads_ejected > 0
        assert accelerator.stats.busy_seconds(2.5, 2) > 0
