"""Unit tests for the basecall+align and UNCALLED-like baseline classifiers."""

import numpy as np
import pytest

from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.baselines.uncalled import UncalledLikeClassifier
from repro.basecall.basecaller import GUPPY, GUPPY_LITE


class TestBasecallAlignClassifier:
    @pytest.fixture(scope="class")
    def classifier(self, target_genome):
        return BasecallAlignClassifier(target_genome, prefix_samples=1500, seed=7)

    def test_accepts_target_reads(self, classifier, balanced_reads):
        targets = [read for read in balanced_reads if read.is_target]
        accepted = sum(1 for read in targets if classifier.classify_read(read).accept)
        assert accepted >= len(targets) - 1

    def test_rejects_background_reads(self, classifier, balanced_reads):
        background = [read for read in balanced_reads if not read.is_target]
        accepted = sum(1 for read in background if classifier.classify_read(read).accept)
        assert accepted <= 1

    def test_decision_accounting(self, classifier, balanced_reads):
        read = balanced_reads[0]
        decision = classifier.classify_read(read, prefix_samples=1000)
        assert decision.samples_used <= 1000
        assert decision.bases_called > 0
        assert decision.basecall_operations >= GUPPY_LITE.operations_per_chunk

    def test_as_filter_decision(self, classifier, balanced_reads):
        decision = classifier.classify_read(balanced_reads[0])
        adapted = decision.as_filter_decision(latency_extra_samples=100)
        assert adapted.samples_used == decision.samples_used + 100
        assert adapted.accept == decision.accept

    def test_latency_from_device_model(self, target_genome):
        jetson = BasecallAlignClassifier(target_genome, device="jetson_xavier")
        titan = BasecallAlignClassifier(target_genome, device="titan_xp")
        assert jetson.decision_latency_s > titan.decision_latency_s

    def test_guppy_profile_uses_more_operations(self, target_genome, balanced_reads):
        lite = BasecallAlignClassifier(target_genome, basecaller_profile=GUPPY_LITE, seed=1)
        hac = BasecallAlignClassifier(target_genome, basecaller_profile=GUPPY, seed=1)
        read = balanced_reads[0]
        assert (
            hac.classify_read(read).basecall_operations
            > lite.classify_read(read).basecall_operations
        )

    def test_accuracy_costs_sign_convention(self, classifier, balanced_reads):
        targets = [read for read in balanced_reads if read.is_target][:3]
        background = [read for read in balanced_reads if not read.is_target][:3]
        target_costs = classifier.accuracy_costs(targets)
        background_costs = classifier.accuracy_costs(background)
        assert max(target_costs) <= min(background_costs)

    def test_invalid_prefix(self, target_genome):
        with pytest.raises(ValueError):
            BasecallAlignClassifier(target_genome, prefix_samples=0)

    def test_classify_batch(self, classifier, balanced_reads):
        assert len(classifier.classify_batch(balanced_reads[:4])) == 4


class TestUncalledLikeClassifier:
    @pytest.fixture(scope="class")
    def classifier(self, target_genome, kmer_model):
        return UncalledLikeClassifier(target_genome, kmer_model=kmer_model)

    def test_accepts_most_target_reads(self, classifier, balanced_reads):
        targets = [read for read in balanced_reads if read.is_target]
        accepted = sum(
            1 for read in targets if classifier.classify(read.signal_pa[:2000]).accept
        )
        assert accepted >= len(targets) * 0.6

    def test_rejects_most_background_reads(self, classifier, balanced_reads):
        background = [read for read in balanced_reads if not read.is_target]
        accepted = sum(
            1 for read in background if classifier.classify(read.signal_pa[:2000]).accept
        )
        assert accepted <= len(background) * 0.4

    def test_decision_fields(self, classifier, balanced_reads):
        decision = classifier.classify(balanced_reads[0].signal_pa[:2000])
        assert decision.n_events > 0
        assert decision.best_cluster_size >= 0

    def test_short_prefix_less_confident(self, classifier, balanced_reads):
        signals_short = [read.signal_pa[:300] for read in balanced_reads]
        signals_long = [read.signal_pa[:2000] for read in balanced_reads]
        assert classifier.unalignable_fraction(signals_short) >= classifier.unalignable_fraction(
            signals_long
        )

    def test_unalignable_fraction_empty(self, classifier):
        assert classifier.unalignable_fraction([]) == 0.0

    def test_event_letters_alphabet(self, classifier, balanced_reads):
        letters = classifier.event_letters(balanced_reads[0].signal_pa[:1500])
        assert set(letters) <= set("ACGT")

    def test_invalid_parameters(self, target_genome, kmer_model):
        with pytest.raises(ValueError):
            UncalledLikeClassifier(target_genome, kmer_model=kmer_model, seed_length=2)
        with pytest.raises(ValueError):
            UncalledLikeClassifier(target_genome, kmer_model=kmer_model, min_cluster_size=0)
