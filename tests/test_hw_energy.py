"""Tests for the energy-per-decision model."""

import pytest

from repro.basecall.performance import basecaller_performance
from repro.hardware.asic import AsicModel
from repro.hardware.energy import (
    accelerator_energy,
    basecaller_energy,
    energy_advantage_over,
    energy_comparison,
)


class TestAcceleratorEnergy:
    def test_energy_positive_and_small(self):
        estimate = accelerator_energy(30_000)
        assert estimate.power_w == pytest.approx(AsicModel().total_power_w)
        assert 0 < estimate.energy_per_decision_mj < 0.1

    def test_power_gating_reduces_power_not_energy(self):
        full = accelerator_energy(30_000)
        gated = accelerator_energy(30_000, active_tiles=1)
        assert gated.power_w < full.power_w
        # Energy per decision is unchanged to first order: one tile does one
        # read's work at one tile's power.
        assert gated.energy_per_decision_mj == pytest.approx(
            full.energy_per_decision_mj, rel=0.01
        )

    def test_longer_reference_costs_more_energy(self):
        covid = accelerator_energy(30_000)
        lam = accelerator_energy(48_502)
        assert lam.energy_per_decision_mj > covid.energy_per_decision_mj


class TestBasecallerEnergy:
    def test_edge_gpu_energy(self):
        record = basecaller_performance("guppy_lite", "jetson_xavier")
        estimate = basecaller_energy(record)
        assert estimate.power_w == pytest.approx(30.0)
        assert estimate.energy_per_decision_mj > 1.0

    def test_invalid_prefix(self):
        record = basecaller_performance("guppy_lite", "titan_xp")
        with pytest.raises(ValueError):
            basecaller_energy(record, decision_prefix_samples=0)


class TestEnergyComparison:
    def test_all_classifiers_present(self):
        rows = {row["classifier"] for row in energy_comparison()}
        assert "squigglefilter" in rows
        assert "guppy_lite@jetson_xavier" in rows
        assert len(rows) == 5

    def test_squigglefilter_most_efficient(self):
        rows = energy_comparison()
        best = min(rows, key=lambda row: row["energy_per_decision_mj"])
        assert best["classifier"] == "squigglefilter"

    def test_advantage_ratios(self):
        assert energy_advantage_over("guppy_lite@jetson_xavier") > 100
        assert energy_advantage_over("guppy@titan_xp") > energy_advantage_over(
            "guppy_lite@titan_xp"
        )
        with pytest.raises(KeyError):
            energy_advantage_over("tpu")
