"""Tests for the unified RunConfig/ReadUntilSession runtime API.

The contract under test: one declarative, serializable :class:`RunConfig`
describes a run; :func:`open_session` owns lazy backend creation and engine
lifecycle; and driving a seeded flowcell through the session produces
decisions bit-identical to the pre-existing classifier/pipeline entry points
on every registered execution backend — which also makes the deprecation
shims safe.
"""

import json
import threading
import warnings

import numpy as np
import pytest

from repro.batch.classifier import BatchSquiggleClassifier
from repro.core.config import SDTWConfig
from repro.core.sdtw import sdtw_resume
from repro.pipeline.api import build_pipeline
from repro.pipeline.read_until import ReadUntilPipeline
from repro.runtime import (
    ReadUntilSession,
    RunConfig,
    SessionClosedError,
    open_session,
)
from repro.sequencer.read_until_api import SignalChunk
from repro.sequencer.reads import ReadGenerator, ReadLengthModel

# Execution backends the acceptance property runs over. "gpu" executes the
# device code path on the host array module, so the backend is covered
# bit-for-bit on machines without a GPU stack.
SESSION_BACKENDS = [
    ("numpy", {}),
    ("sharded", {"workers": 2}),
    ("colsharded", {"workers": 2}),
    ("gpu", {"backend_options": {"array_module": "numpy"}}),
]


def session_config(reference, threshold, **overrides):
    base = dict(
        reference=reference,
        threshold=threshold,
        prefix_samples=800,
        chunk_samples=400,
        n_channels=8,
    )
    base.update(overrides)
    return RunConfig(**base)


# -------------------------------------------------------------- validation
class TestRunConfigValidation:
    @pytest.mark.parametrize(
        "kwargs,field",
        [
            (dict(backend="tpu"), "backend"),
            (dict(backend="sharded", workers=0), "workers"),
            (dict(backend="sharded", workers=-3), "workers"),
            (dict(backend="numpy", workers=2), "workers"),
            (dict(tile_columns=0), "tile_columns"),
            (dict(tile_columns=-16), "tile_columns"),
            (dict(backend="colsharded", tile_columns=64), "tile_columns"),
            (dict(prefix_samples=0), "prefix_samples"),
            (dict(chunk_samples=-1), "chunk_samples"),
            (dict(n_channels=0), "n_channels"),
            (dict(targets={}), "targets"),
            (dict(label=""), "label"),
            (dict(label="   "), "label"),
            (dict(label=7), "label"),
        ],
    )
    def test_invalid_field_named_in_error(self, kwargs, field):
        with pytest.raises(ValueError) as excinfo:
            RunConfig(**kwargs)
        assert str(excinfo.value).startswith(field), excinfo.value

    def test_exactly_one_reference_spec(self, reference_squiggle):
        with pytest.raises(ValueError, match="exactly one"):
            RunConfig(genome="ACGT" * 100, targets={"a": "ACGT" * 100})
        with pytest.raises(ValueError, match="exactly one"):
            RunConfig(genome="ACGT" * 100, reference=reference_squiggle)

    def test_with_revalidates(self):
        config = RunConfig(genome="ACGT" * 100)
        with pytest.raises(ValueError, match="backend"):
            config.with_(backend="tpu")

    def test_backend_name_normalized(self):
        assert RunConfig(backend="NumPy").backend == "numpy"

    def test_gpu_backend_name_validates_without_gpu_stack(self):
        # The registry entry always exists; only *instantiation* needs CuPy/Torch.
        assert RunConfig(backend="gpu", tile_columns=128).backend == "gpu"

    def test_resolved_backend_options_fold_sizing_fields(self):
        config = RunConfig(backend="sharded", workers=3, backend_options={"extra": 1})
        assert config.resolved_backend_options() == {"workers": 3, "extra": 1}
        tiled = RunConfig(backend="numpy", tile_columns=64)
        assert tiled.resolved_backend_options() == {"tile_columns": 64}


# ------------------------------------------------------------ serialization
class TestRunConfigSerialization:
    def test_dict_roundtrip(self):
        config = RunConfig(
            targets={"a": "ACGT" * 200, "b": "GGCA" * 150},
            hardware=SDTWConfig.hardware().with_(match_bonus=0.0),
            threshold=123.5,
            prefix_samples=640,
            chunk_samples=320,
            n_channels=16,
            batch=True,
            label="flowcell-A",
            backend="sharded",
            workers=4,
        )
        assert config.to_dict()["label"] == "flowcell-A"
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_hardware_accepts_mapping(self):
        config = RunConfig(hardware={"distance": "absolute", "match_bonus": 0.0})
        assert config.hardware == SDTWConfig(distance="absolute", match_bonus=0.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="n_channel"):
            RunConfig.from_dict({"n_channel": 4})

    def test_prebuilt_reference_not_serializable(self, reference_squiggle):
        config = RunConfig(reference=reference_squiggle)
        with pytest.raises(ValueError, match="reference"):
            config.to_dict()

    def test_json_file_roundtrip(self, tmp_path):
        config = RunConfig(genome="ACGT" * 200, backend="colsharded", workers=2)
        path = tmp_path / "run.json"
        config.to_file(path)
        assert RunConfig.from_file(path) == config
        assert json.loads(path.read_text())["backend"] == "colsharded"

    def test_yaml_file_roundtrip(self, tmp_path):
        pytest.importorskip("yaml")
        config = RunConfig(genome="ACGT" * 200, n_channels=4)
        path = tmp_path / "run.yaml"
        config.to_file(path)
        assert RunConfig.from_file(path) == config


# -------------------------------------------------------- session lifecycle
def _chunk(read_id, signal, start=0, channel=0, number=0, last=False):
    return SignalChunk(
        channel=channel,
        read_id=read_id,
        read_number=number,
        chunk_start_sample=start,
        signal_pa=np.asarray(signal, dtype=np.float64),
        is_last=last,
    )


class TestSessionLifecycle:
    def _config(self, reference_squiggle, **overrides):
        base = dict(reference=reference_squiggle, threshold=1e9, prefix_samples=400)
        base.update(overrides)
        return RunConfig(**base)

    def test_backend_not_spawned_until_first_submit(
        self, reference_squiggle, target_signals
    ):
        with open_session(self._config(reference_squiggle)) as session:
            assert not session.started
            assert session.engine is None
            actions = session.submit(
                [_chunk("r0", target_signals[0][:400], last=True)]
            )
            assert session.started
            assert session.engine is not None
            assert len(actions) == 1 and actions[0].is_terminal

    def test_calibrate_does_not_spawn_the_backend(
        self, reference_squiggle, target_signals, nontarget_signals
    ):
        with open_session(
            self._config(reference_squiggle, threshold=None)
        ) as session:
            threshold = session.calibrate(target_signals, nontarget_signals)
            assert threshold == session.threshold
            assert not session.started

    def test_double_close_is_idempotent(self, reference_squiggle):
        session = open_session(self._config(reference_squiggle))
        session.close()
        session.close()
        assert session.closed is True

    def test_reuse_after_close_raises(self, reference_squiggle, target_signals):
        session = open_session(self._config(reference_squiggle))
        session.submit([_chunk("r0", target_signals[0][:400], last=True)])
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit([_chunk("r1", target_signals[0][:400], last=True)])
        with pytest.raises(RuntimeError, match="closed"):
            session.classifier
        with pytest.raises(RuntimeError, match="closed"):
            session.calibrate([], [])

    def test_context_manager_closes_on_exception(self, reference_squiggle):
        with pytest.raises(KeyError):
            with open_session(self._config(reference_squiggle)) as session:
                raise KeyError("boom")
        with pytest.raises(RuntimeError, match="closed"):
            session.submit([])

    def test_failing_round_closes_the_session(
        self, reference_squiggle, target_signals
    ):
        # No threshold configured -> the round raises inside the classifier;
        # the session must close itself so nothing leaks, then refuse reuse.
        session = open_session(self._config(reference_squiggle, threshold=None))
        with pytest.raises(ValueError, match="threshold"):
            session.submit([_chunk("r0", target_signals[0][:400], last=True)])
        with pytest.raises(RuntimeError, match="closed"):
            session.submit([_chunk("r1", target_signals[0][:400], last=True)])

    def test_summary_tallies_decisions(self, reference_squiggle, target_signals):
        with open_session(self._config(reference_squiggle)) as session:
            session.submit(
                [
                    _chunk("r0", target_signals[0][:400], last=True),
                    _chunk("r1", target_signals[1][:400], channel=1, last=True),
                ]
            )
            summary = session.summary()
        assert summary["rounds"] == 1
        assert summary["accepts"] + summary["ejects"] == 2
        assert summary["backend"] == "numpy"
        assert summary["peak_batch_lanes"] == 2

    def test_session_without_reference_spec_fails_on_first_use(self):
        with open_session(RunConfig(threshold=1e9)) as session:
            with pytest.raises(ValueError, match="reference"):
                session.submit([_chunk("r0", np.ones(10), last=True)])

    def test_summary_reports_the_config_label(
        self, reference_squiggle, target_signals
    ):
        with open_session(
            self._config(reference_squiggle, label="flowcell-A")
        ) as session:
            session.submit([_chunk("r0", target_signals[0][:400], last=True)])
            assert session.label == "flowcell-A"
            assert session.summary()["label"] == "flowcell-A"
        # Unlabeled sessions don't grow the key.
        with open_session(self._config(reference_squiggle)) as session:
            assert "label" not in session.summary()

    @pytest.mark.parametrize("backend,extra", SESSION_BACKENDS)
    def test_use_after_close_raises_session_closed_error(
        self, reference_squiggle, target_signals, backend, extra
    ):
        """Satellite contract: after close(), submit() and summary() raise
        the same documented SessionClosedError on every registered backend
        (which is-a RuntimeError, so existing handlers keep working)."""
        config = self._config(reference_squiggle, backend=backend, **extra)
        session = open_session(config)
        try:
            session.submit([_chunk("r0", target_signals[0][:400], last=True)])
        finally:
            session.close()
        assert session.closed
        with pytest.raises(SessionClosedError, match="closed"):
            session.submit([_chunk("r1", target_signals[0][:400], last=True)])
        with pytest.raises(SessionClosedError, match="closed"):
            session.summary()
        assert issubclass(SessionClosedError, RuntimeError)

    def test_concurrent_submit_from_second_thread_raises(
        self, reference_squiggle, target_signals
    ):
        """Sessions are single-writer: while one thread's round is in
        flight, a second thread's submit fails loudly instead of corrupting
        lane state."""
        session = open_session(self._config(reference_squiggle))
        in_round = threading.Event()
        release = threading.Event()

        real_on_chunk_batch = type(session).on_chunk_batch

        def slow_round(self_, chunks):
            result = real_on_chunk_batch(self_, chunks)
            in_round.set()
            release.wait(timeout=10.0)
            return result

        try:
            type(session).on_chunk_batch = slow_round  # type: ignore[method-assign]

            def first_submit():
                session.submit([_chunk("r0", target_signals[0][:400], last=True)])

            worker = threading.Thread(target=first_submit)
            worker.start()
            assert in_round.wait(timeout=10.0)
            with pytest.raises(RuntimeError, match="single-writer"):
                session.submit(
                    [_chunk("r1", target_signals[1][:400], last=True)]
                )
            release.set()
            worker.join(timeout=10.0)
            assert not worker.is_alive()
        finally:
            release.set()
            type(session).on_chunk_batch = real_on_chunk_batch  # type: ignore[method-assign]
            session.close()
        # The lock is released once the in-flight round finished: a fresh
        # session accepts submissions again (closed above, so just re-open).
        with open_session(self._config(reference_squiggle)) as fresh:
            fresh.submit([_chunk("r2", target_signals[0][:400], last=True)])


# ------------------------------------------------------ acceptance property
@pytest.fixture(scope="module")
def runtime_flowcell_reads(mixture, kmer_model):
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(
            mean_bases=300, sigma=0.15, min_bases=220, max_bases=500
        ),
        seed=20260729,
    )
    reads = [generator.generate_one(source="virus") for _ in range(6)]
    reads += [generator.generate_one(source="host") for _ in range(18)]
    return reads


@pytest.fixture(scope="module")
def runtime_threshold(reference_squiggle, target_signals, nontarget_signals):
    classifier = BatchSquiggleClassifier(reference_squiggle, prefix_samples=800)
    return classifier.calibrate(
        target_signals, nontarget_signals, chunk_samples=400
    )


def _decision_fields(result):
    return {
        outcome.read.read_id: (
            outcome.ejected,
            outcome.decision.cost if outcome.decision else None,
            outcome.decision.samples_used if outcome.decision else None,
            outcome.decision.end_position if outcome.decision else None,
            outcome.decision.target if outcome.decision else None,
        )
        for outcome in result.session.outcomes
    }


class TestSessionBitIdentity:
    def test_seeded_flowcell_identical_through_every_entry_point(
        self,
        reference_squiggle,
        target_genome,
        runtime_threshold,
        runtime_flowcell_reads,
    ):
        """Acceptance: the seeded 8-channel flowcell decides identically
        through the legacy classifier+pipeline entry point and through
        ReadUntilSession, on every registered backend."""
        legacy = BatchSquiggleClassifier(
            reference_squiggle, threshold=runtime_threshold, prefix_samples=800
        )
        baseline = _decision_fields(
            ReadUntilPipeline(
                legacy,
                target_genome,
                assemble=False,
                chunk_samples=400,
                n_channels=8,
                batch=True,
            ).run(runtime_flowcell_reads)
        )
        assert len(baseline) == len(runtime_flowcell_reads)

        for backend, extra in SESSION_BACKENDS:
            config = session_config(
                reference_squiggle, runtime_threshold, backend=backend, **extra
            )
            with open_session(config) as session:
                result = session.run(
                    runtime_flowcell_reads, target_genome=target_genome
                )
            assert result.streaming["backend"] == backend, backend
            assert _decision_fields(result) == baseline, backend

    def test_build_pipeline_accepts_a_run_config(
        self,
        reference_squiggle,
        target_genome,
        runtime_threshold,
        runtime_flowcell_reads,
    ):
        legacy = BatchSquiggleClassifier(
            reference_squiggle, threshold=runtime_threshold, prefix_samples=800
        )
        baseline = _decision_fields(
            ReadUntilPipeline(
                legacy,
                target_genome,
                assemble=False,
                chunk_samples=400,
                n_channels=8,
                batch=True,
            ).run(runtime_flowcell_reads)
        )
        pipeline = build_pipeline(
            session_config(reference_squiggle, runtime_threshold)
        )
        try:
            result = pipeline.run(runtime_flowcell_reads)
        finally:
            pipeline.classifier.close()
        assert isinstance(pipeline.classifier, ReadUntilSession)
        assert _decision_fields(result) == baseline


# ------------------------------------------------------------------- shims
class TestDeprecationShims:
    def test_classifier_backend_kwargs_warn_but_decide_identically(
        self,
        reference_squiggle,
        target_genome,
        runtime_threshold,
        runtime_flowcell_reads,
    ):
        config = session_config(
            reference_squiggle, runtime_threshold, backend="sharded", workers=2
        )
        with open_session(config) as session:
            session_decisions = _decision_fields(
                session.run(runtime_flowcell_reads, target_genome=target_genome)
            )
        with pytest.deprecated_call():
            legacy = BatchSquiggleClassifier(
                reference_squiggle,
                threshold=runtime_threshold,
                prefix_samples=800,
                backend="sharded",
                backend_options={"workers": 2},
            )
        with legacy:
            legacy_decisions = _decision_fields(
                ReadUntilPipeline(
                    legacy,
                    target_genome,
                    assemble=False,
                    chunk_samples=400,
                    n_channels=8,
                    batch=True,
                ).run(runtime_flowcell_reads)
            )
        assert legacy_decisions == session_decisions

    def test_classifier_default_construction_does_not_warn(self, reference_squiggle):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            BatchSquiggleClassifier(
                reference_squiggle, threshold=1e9, prefix_samples=400
            ).close()

    def test_classifier_consumes_run_config_fields(self, reference_squiggle):
        """run_config supplies threshold/prefix/hardware unless a kwarg
        explicitly overrides them — the migration table's contract."""
        config = RunConfig(
            threshold=123.0,
            prefix_samples=640,
            hardware=SDTWConfig.hardware().with_(match_bonus=0.0),
        )
        with BatchSquiggleClassifier(reference_squiggle, run_config=config) as classifier:
            assert classifier.threshold == 123.0
            assert classifier.prefix_samples == 640
            assert classifier.config == config.hardware
        with BatchSquiggleClassifier(
            reference_squiggle, run_config=config, prefix_samples=320
        ) as classifier:
            assert classifier.prefix_samples == 320

    def test_classifier_rejects_run_config_plus_legacy_kwargs(
        self, reference_squiggle
    ):
        with pytest.raises(ValueError, match="not both"):
            BatchSquiggleClassifier(
                reference_squiggle,
                threshold=1e9,
                backend="numpy",
                run_config=RunConfig(),
            )

    def test_filter_classify_batch_backend_kwarg_warns(
        self, calibrated_filter, target_signals
    ):
        with pytest.deprecated_call():
            legacy = calibrated_filter.classify_batch(
                target_signals, backend="sharded", backend_options={"workers": 2}
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = calibrated_filter.classify_batch(
                target_signals,
                run_config=RunConfig(backend="sharded", workers=2),
            )
            plain = calibrated_filter.classify_batch(target_signals)
        assert legacy == modern == plain

    def test_filter_cost_batch_backend_kwarg_warns(
        self, calibrated_filter, target_signals
    ):
        with pytest.deprecated_call():
            legacy = calibrated_filter.cost_batch(target_signals, backend="numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = calibrated_filter.cost_batch(
                target_signals, run_config=RunConfig()
            )
        assert legacy == modern


# ------------------------------------------------------- gpu-on-host kernel
class TestGpuBackendOnHost:
    def test_gpu_backend_matches_scalar_rows(self, rng):
        from repro.batch.engine import BatchSDTWEngine

        reference = rng.integers(-127, 128, 60)
        config = SDTWConfig.hardware()
        for options in (
            {"array_module": "numpy"},
            {"array_module": "numpy", "tile_columns": 17},
        ):
            with BatchSDTWEngine(
                reference, config, backend="gpu", backend_options=options
            ) as engine:
                states = {}
                for _ in range(3):
                    items = [
                        (lane, rng.integers(-127, 128, int(rng.integers(1, 20))))
                        for lane in range(4)
                    ]
                    snaps = engine.step(items)
                    for lane, query in items:
                        states[lane] = sdtw_resume(
                            query, reference, config, state=states.get(lane)
                        )
                        assert snaps[lane].cost == states[lane].cost
                for lane in range(4):
                    assert np.array_equal(
                        engine.state_of(lane).row, states[lane].row
                    )

    def test_cupy_module_skips_cleanly_when_absent(self):
        from repro.core.array_module import get_array_module

        cupy = pytest.importorskip("cupy")  # noqa: F841 - skip without CuPy
        assert get_array_module("cupy").name == "cupy"


# ---------------------------------------------------------------------- CLI
class TestCliRunConfig:
    def test_config_dump_resolves_file_and_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        RunConfig(prefix_samples=800, n_channels=4).to_file(path)
        exit_code = main(
            [
                "config-dump",
                "--config",
                str(path),
                "--backend",
                "sharded",
                "--workers",
                "2",
                "--prefix-samples",
                "500",
            ]
        )
        assert exit_code == 0
        dumped = json.loads(capsys.readouterr().out)
        # flag > file > default
        assert dumped["backend"] == "sharded"
        assert dumped["workers"] == 2
        assert dumped["prefix_samples"] == 500
        assert dumped["n_channels"] == 4

    def test_config_dump_rejects_invalid_config(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        path.write_text(json.dumps({"backend": "tpu"}))
        assert main(["config-dump", "--config", str(path)]) == 2
        assert "backend" in capsys.readouterr().err

    def test_read_until_runs_from_config_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        RunConfig(
            prefix_samples=500, chunk_samples=250, n_channels=4, batch=True
        ).to_file(path)
        exit_code = main(
            [
                "read-until",
                "--config",
                str(path),
                "--n-reads",
                "10",
                "--target-length",
                "800",
                "--background-length",
                "3000",
                "--calibration-reads-per-class",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        assert "numpy" in output