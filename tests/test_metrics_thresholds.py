"""Unit tests for classification metrics and threshold selection."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    ClassificationCounts,
    confusion_from_labels,
    f_score,
)
from repro.core.thresholds import ThresholdPoint, choose_threshold, sweep_thresholds


class TestClassificationCounts:
    def test_perfect_classifier(self):
        counts = ClassificationCounts(true_positive=10, false_positive=0, true_negative=10, false_negative=0)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0
        assert counts.accuracy == 1.0
        assert counts.false_positive_rate == 0.0

    def test_degenerate_no_predictions(self):
        counts = ClassificationCounts(true_positive=0, false_positive=0, true_negative=5, false_negative=5)
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_counts_negative_rejected(self):
        with pytest.raises(ValueError):
            ClassificationCounts(true_positive=-1, false_positive=0, true_negative=0, false_negative=0)

    def test_totals(self):
        counts = ClassificationCounts(true_positive=3, false_positive=2, true_negative=4, false_negative=1)
        assert counts.total == 10
        assert counts.positives == 4
        assert counts.negatives == 6
        assert counts.specificity == pytest.approx(4 / 6)

    def test_f_beta_weights_recall(self):
        counts = ClassificationCounts(true_positive=8, false_positive=4, true_negative=0, false_negative=2)
        f1 = f_score(counts, beta=1.0)
        f2 = f_score(counts, beta=2.0)
        f_half = f_score(counts, beta=0.5)
        # recall (0.8) > precision (0.67), so favouring recall raises the score
        assert f2 > f1 > f_half

    def test_f_score_invalid_beta(self):
        counts = ClassificationCounts(1, 1, 1, 1)
        with pytest.raises(ValueError):
            f_score(counts, beta=0)


class TestConfusionFromLabels:
    def test_basic(self):
        truths = [True, True, False, False]
        predictions = [True, False, True, False]
        counts = confusion_from_labels(truths, predictions)
        assert counts.true_positive == 1
        assert counts.false_negative == 1
        assert counts.false_positive == 1
        assert counts.true_negative == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_from_labels([True], [True, False])


class TestSweepThresholds:
    def setup_method(self):
        self.target = [1.0, 2.0, 3.0, 4.0]
        self.nontarget = [10.0, 11.0, 12.0, 13.0]

    def test_perfectly_separable(self):
        sweep = sweep_thresholds(self.target, self.nontarget, n_thresholds=25)
        best = sweep.best_by_f1()
        assert best.f1 == 1.0
        assert 4.0 <= best.threshold < 10.0

    def test_monotone_recall(self):
        sweep = sweep_thresholds(self.target, self.nontarget, n_thresholds=50)
        recalls = [point.recall for point in sweep]
        assert recalls == sorted(recalls)

    def test_counts_add_up(self):
        sweep = sweep_thresholds(self.target, self.nontarget)
        for point in sweep:
            assert point.true_positive + point.false_negative == len(self.target)
            assert point.false_positive + point.true_negative == len(self.nontarget)

    def test_explicit_thresholds(self):
        sweep = sweep_thresholds(self.target, self.nontarget, thresholds=[5.0])
        assert len(sweep) == 1
        assert sweep.points[0].recall == 1.0
        assert sweep.points[0].false_positive_rate == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_thresholds([], self.nontarget)

    def test_rows_have_expected_keys(self):
        rows = sweep_thresholds(self.target, self.nontarget).as_rows()
        assert {"threshold", "recall", "precision", "f1", "accuracy", "false_positive_rate"} <= set(rows[0])

    def test_identical_costs_single_threshold(self):
        sweep = sweep_thresholds([5.0, 5.0], [5.0, 5.0])
        assert len(sweep) == 1

    def test_max_f1_shortcut(self):
        sweep = sweep_thresholds(self.target, self.nontarget)
        assert sweep.max_f1() == pytest.approx(sweep.best_by_f1().f1)

    def test_empty_sweep_best_raises(self):
        from repro.core.thresholds import ThresholdSweepResult

        with pytest.raises(ValueError):
            ThresholdSweepResult().best_by_f1()


class TestChooseThreshold:
    def test_f1_objective_separates(self):
        threshold = choose_threshold([1, 2, 3], [10, 11, 12], objective="f1")
        assert 3 <= threshold < 10

    def test_recall_objective(self):
        target = np.linspace(0, 100, 101)
        threshold = choose_threshold(target, [1000.0], objective="recall", target_recall=0.9)
        assert threshold == pytest.approx(90.0)

    def test_midpoint_objective(self):
        assert choose_threshold([0.0], [10.0], objective="midpoint") == pytest.approx(5.0)

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            choose_threshold([1.0], [2.0], objective="magic")

    def test_invalid_recall_target(self):
        with pytest.raises(ValueError):
            choose_threshold([1.0], [2.0], objective="recall", target_recall=0.0)


class TestThresholdPoint:
    def test_properties(self):
        point = ThresholdPoint(threshold=1.0, true_positive=8, false_positive=2, true_negative=18, false_negative=2)
        assert point.recall == pytest.approx(0.8)
        assert point.precision == pytest.approx(0.8)
        assert point.accuracy == pytest.approx(26 / 30)
        assert point.false_positive_rate == pytest.approx(0.1)
