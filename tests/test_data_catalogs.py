"""Unit tests for the static data catalogs (Tables 1/3, Figures 2/6)."""

import pytest

# NOTE: some catalog helpers are imported under aliases because their natural
# names start with "test"/"tests" and pytest would otherwise collect them as
# test functions.
from repro.data.tests_catalog import (
    DIAGNOSTIC_TESTS,
    DiagnosticTest,
    programmable_tests,
    whole_genome_tests,
)
from repro.data.tests_catalog import tests_table as diagnostic_tests_table
from repro.data.testing_history import US_TESTING_HISTORY, months_to_reach
from repro.data.testing_history import testing_history_table as us_testing_table
from repro.data.throughput_history import (
    SEQUENCER_RELEASES,
    exponential_growth_rate,
    projected_throughput,
    throughput_history_table,
)


class TestDiagnosticTestsCatalog:
    def test_table_has_all_rows(self):
        assert len(diagnostic_tests_table()) == len(DIAGNOSTIC_TESTS) == 9

    def test_only_sequencing_tests_programmable(self):
        for test in programmable_tests():
            assert test.category == "sequencing"

    def test_whole_genome_tests_are_programmable(self):
        for test in whole_genome_tests():
            assert test.programmable

    def test_antigen_test_fastest(self):
        timed = [test for test in DIAGNOSTIC_TESTS if test.time_minutes is not None]
        fastest = min(timed, key=lambda test: test.time_minutes)
        assert fastest.category == "antigen"

    def test_low_viral_load_takes_longer(self):
        rna_1 = next(t for t in DIAGNOSTIC_TESTS if "RNA sequencing (1%" in t.name)
        rna_01 = next(t for t in DIAGNOSTIC_TESTS if "RNA sequencing (0.1%" in t.name)
        assert rna_01.time_minutes > rna_1.time_minutes

    def test_invalid_test(self):
        with pytest.raises(ValueError):
            DiagnosticTest("bad", "antigen", "presence", False, -1, 5)


class TestTestingHistory:
    def test_monotone_ramp_overall(self):
        values = [entry.daily_tests for entry in US_TESTING_HISTORY]
        assert values[0] == 0
        assert values[-1] > 1_000_000

    def test_table_rows(self):
        rows = us_testing_table()
        assert len(rows) == 12
        assert rows[0]["month"] == "2020-01"

    def test_months_to_reach(self):
        assert months_to_reach(1) >= 1
        assert months_to_reach(1_000_000) >= 9
        assert months_to_reach(0) == 0


class TestThroughputHistory:
    def test_rows_sorted_by_year(self):
        rows = throughput_history_table()
        years = [row["year"] for row in rows]
        assert years == sorted(years)

    def test_growth_is_exponential(self):
        assert exponential_growth_rate() > 1.5

    def test_projection_increases(self):
        assert projected_throughput(2025.0) > projected_throughput(2018.0)

    def test_minion_r941_value(self):
        minion = next(r for r in SEQUENCER_RELEASES if r.name == "MinION R9.4.1")
        assert minion.bases_per_second == 230_400
