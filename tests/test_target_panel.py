"""Tests for the first-class TargetPanel layer and reference-axis tiling.

The contract under test (PR 4's acceptance invariant): a panel of N targets
advanced through the concatenated column space produces per-target costs,
end positions and rows **bit-identical** to N independent single-reference
``sdtw_resume`` runs — on every execution backend (``numpy``, ``sharded``,
``colsharded``), with in-process column tiling, across ragged chunk
schedules, ragged target lengths, and lane recycling.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.backends import ColumnShardedBackend, available_backends, create_backend
from repro.batch.classifier import BatchSquiggleClassifier
from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.filter import SquiggleFilter, build_default_filter
from repro.core.panel import TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import (
    normalize_block_starts,
    reduce_block_minima,
    sdtw_resume,
    sdtw_resume_batch,
)
from repro.genomes.sequences import random_genome
from repro.pipeline.api import build_pipeline
from repro.pipeline.read_until import ReadUntilPipeline

# Every execution shape a panel can advance on: the in-process wavefront,
# the same wavefront in cache-sized column tiles, lanes across workers, and
# reference columns across workers.
PANEL_BACKENDS = [
    ("numpy", None),
    ("numpy", {"tile_columns": 17}),
    ("sharded", {"workers": 2}),
    ("colsharded", {"workers": 2}),
]

# Deliberately ragged target lengths (in reference columns, both strands).
_PANEL_RNG = np.random.default_rng(20260728)
PANEL_REFERENCES = {
    "alpha": _PANEL_RNG.integers(-127, 128, 53),
    "beta": _PANEL_RNG.integers(-127, 128, 11),
    "gamma": _PANEL_RNG.integers(-127, 128, 34),
}
PANEL_CONCAT = np.concatenate(list(PANEL_REFERENCES.values()))
PANEL_STARTS = np.array([0, 53, 64])


def scalar_panel_states(schedules, config):
    """Ground truth: N independent single-reference sdtw_resume chains."""
    states = {}
    for lane, rounds in enumerate(schedules):
        for chunk in rounds:
            if not chunk.size:
                continue
            for name, reference in PANEL_REFERENCES.items():
                states[(lane, name)] = sdtw_resume(
                    chunk, reference, config, state=states.get((lane, name))
                )
    return states


# ------------------------------------------------------------------ structure
class TestTargetPanelStructure:
    def test_offsets_lengths_and_slices(self, kmer_model):
        genomes = {"a": random_genome(300, seed=1), "b": random_genome(120, seed=2)}
        panel = TargetPanel.from_genomes(genomes, kmer_model=kmer_model)
        assert panel.names == ("a", "b")
        assert panel.n_targets == 2
        assert len(panel) == int(panel.lengths.sum())
        assert panel.offsets[0] == 0 and panel.offsets[1] == panel.lengths[0]
        (name_a, slice_a), (name_b, slice_b) = panel.slices()
        values = panel.values(quantized=True)
        assert np.array_equal(
            values[slice_a], panel.reference_for("a").values(quantized=True)
        )
        assert np.array_equal(
            values[slice_b], panel.reference_for("b").values(quantized=True)
        )
        assert panel.buffer_bytes() == sum(
            panel.reference_for(name).buffer_bytes() for name in panel.names
        )

    def test_coerce_and_single(self, reference_squiggle):
        panel = TargetPanel.coerce(reference_squiggle)
        assert panel.n_targets == 1
        assert panel.primary is reference_squiggle
        assert TargetPanel.coerce(panel) is panel
        with pytest.raises(TypeError, match="TargetPanel or ReferenceSquiggle"):
            TargetPanel.coerce(np.arange(5))

    def test_empty_and_duplicate_names_rejected(self, reference_squiggle):
        with pytest.raises(ValueError, match="at least one"):
            TargetPanel([])
        with pytest.raises(ValueError, match="unique"):
            TargetPanel([("x", reference_squiggle), ("x", reference_squiggle)])

    def test_mismatched_normalization_rejected(self, target_genome, kmer_model):
        from repro.core.normalization import NormalizationConfig

        a = ReferenceSquiggle.from_genome(target_genome, kmer_model=kmer_model)
        b = ReferenceSquiggle.from_genome(
            target_genome,
            kmer_model=kmer_model,
            normalization=NormalizationConfig(clip=3.0),
        )
        with pytest.raises(ValueError, match="NormalizationConfig"):
            TargetPanel([("a", a), ("b", b)])

    def test_block_start_validation(self):
        with pytest.raises(ValueError, match="begin with column 0"):
            normalize_block_starts([3, 5], 10)
        with pytest.raises(ValueError, match="strictly increasing"):
            normalize_block_starts([0, 5, 5], 10)
        with pytest.raises(ValueError, match="beyond"):
            normalize_block_starts([0, 10], 10)


# ----------------------------------------------------- acceptance bit identity
signal_values = st.integers(min_value=-127, max_value=127)
lane_query = st.lists(signal_values, min_size=1, max_size=24).map(lambda v: np.array(v))
lane_queries = st.lists(lane_query, min_size=1, max_size=4)

panel_settings = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestPanelBitIdentity:
    @panel_settings
    @given(queries=lane_queries, data=st.data())
    def test_panel_costs_match_independent_runs_on_all_backends(self, queries, data):
        """The acceptance property: per-target panel costs/ends equal N
        independent single-reference sdtw_resume runs, across ragged chunk
        schedules, on numpy (tiled and untiled), sharded and colsharded."""
        n_rounds = data.draw(st.integers(min_value=1, max_value=3))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        schedules = []
        for query in queries:
            cuts = np.sort(rng.integers(0, query.size + 1, size=n_rounds - 1))
            bounds = [0, *cuts.tolist(), query.size]
            schedules.append([query[bounds[i] : bounds[i + 1]] for i in range(n_rounds)])

        config = SDTWConfig.hardware()
        panel_values = PANEL_CONCAT
        backends = [
            create_backend(
                name,
                panel_values,
                config,
                len(queries),
                block_starts=PANEL_STARTS,
                **dict(options or {}),
            )
            for name, options in PANEL_BACKENDS
        ]
        lanes = np.arange(len(queries), dtype=np.intp)
        try:
            scalar = {}
            for round_index in range(n_rounds):
                chunks = [schedules[lane][round_index] for lane in range(len(queries))]
                for lane, chunk in enumerate(chunks):
                    if not chunk.size:
                        continue
                    for name, reference in PANEL_REFERENCES.items():
                        scalar[(lane, name)] = sdtw_resume(
                            chunk, reference, config, state=scalar.get((lane, name))
                        )
                results = [backend.advance(lanes, chunks) for backend in backends]
                for backend, (costs, ends) in zip(backends, results):
                    assert costs.shape == (len(queries), 3)
                    for lane in range(len(queries)):
                        for index, name in enumerate(PANEL_REFERENCES):
                            state = scalar.get((lane, name))
                            if state is None:
                                continue
                            assert costs[lane, index] == state.cost, backend.backend_name
                            assert ends[lane, index] == state.end_position, (
                                backend.backend_name
                            )
            # Final resident rows are the concatenation of the independent runs.
            for backend in backends:
                gathered = backend.gather(lanes)
                for lane in range(len(queries)):
                    if not queries[lane].size:
                        continue
                    expected = np.concatenate(
                        [scalar[(lane, name)].row for name in PANEL_REFERENCES]
                    )
                    assert np.array_equal(gathered.rows[lane], expected), (
                        backend.backend_name
                    )
        finally:
            for backend in backends:
                backend.close()

    @pytest.mark.parametrize("tile_columns", [1, 5, 11, 53, 64, 97, 98])
    def test_tiled_advance_identical_to_untiled(self, tile_columns, rng):
        """Tile widths from degenerate (1 column) through 'narrower than the
        last block' to wider-than-reference all reproduce the untiled rows."""
        config = SDTWConfig.hardware()
        queries = [rng.integers(-127, 128, n) for n in (21, 7)]
        untiled = sdtw_resume_batch(
            queries, PANEL_CONCAT, config, block_starts=PANEL_STARTS
        )
        tiled = sdtw_resume_batch(
            queries,
            PANEL_CONCAT,
            config,
            block_starts=PANEL_STARTS,
            tile_columns=tile_columns,
        )
        assert np.array_equal(tiled.rows, untiled.rows)
        assert np.array_equal(tiled.runs, untiled.runs)
        assert np.array_equal(tiled.samples_processed, untiled.samples_processed)

    def test_colsharded_tile_narrower_than_last_block(self, rng):
        """7 workers over 98 columns leave tiles narrower than gamma's block,
        and beta's 11-column block straddles a tile boundary entirely."""
        config = SDTWConfig.hardware()
        backend = ColumnShardedBackend(
            PANEL_CONCAT, config, capacity=2, workers=7, block_starts=PANEL_STARTS
        )
        try:
            queries = [rng.integers(-127, 128, 30), rng.integers(-127, 128, 13)]
            costs, ends = backend.advance(np.array([0, 1]), queries)
            for lane, query in enumerate(queries):
                for index, (name, reference) in enumerate(PANEL_REFERENCES.items()):
                    expected = sdtw_resume(query, reference, config)
                    assert costs[lane, index] == expected.cost
                    assert ends[lane, index] == expected.end_position
        finally:
            backend.close()

    def test_colsharded_worker_count_clamped_to_columns(self, rng):
        reference = rng.integers(-127, 128, 3)
        backend = ColumnShardedBackend(reference, SDTWConfig.hardware(), capacity=1, workers=8)
        try:
            assert backend.n_workers == 3
            query = rng.integers(-127, 128, 9)
            costs, _ = backend.advance(np.array([0]), [query])
            assert costs[0, 0] == sdtw_resume(query, reference, SDTWConfig.hardware()).cost
        finally:
            backend.close()


# -------------------------------------------------------------- lane recycling
class TestColumnShardLaneChurn:
    def test_recycled_lanes_reset_across_column_shards(self, rng):
        """Admit -> retire -> re-admit on the colsharded backend: a recycled
        lane must come up zeroed in *every* column tile, across growth."""
        config = SDTWConfig.hardware()
        reference = rng.integers(-127, 128, 40)
        with BatchSDTWEngine(
            reference,
            config,
            initial_capacity=2,
            backend="colsharded",
            backend_options={"workers": 3},
        ) as engine:
            first = {key: rng.integers(-127, 128, 12) for key in ("a", "b")}
            engine.step(list(first.items()))
            survivor = sdtw_resume(first["b"], reference, config)

            engine.retire("a")
            fresh = {key: rng.integers(-127, 128, 9) for key in ("c", "d", "e")}
            for key in fresh:
                engine.admit(key)
            assert engine.capacity > 2
            for key in fresh:
                assert engine.samples_processed(key) == 0
                assert engine.snapshot(key).cost == 0.0
                assert not engine.state_of(key).row.any()

            snaps = engine.step(list(fresh.items()))
            for key, query in fresh.items():
                expected = sdtw_resume(query, reference, config)
                assert snaps[key].cost == expected.cost
                assert np.array_equal(engine.state_of(key).row, expected.row)
            assert np.array_equal(engine.state_of("b").row, survivor.row)
            assert engine.samples_processed("b") == survivor.samples_processed


# ------------------------------------------------------------------ filter API
class TestPanelFilter:
    def test_one_target_panel_bit_identical_to_plain_filter(
        self, reference_squiggle, target_signals, nontarget_signals
    ):
        """A 1-entry panel is the plain filter: identical decisions, costs,
        thresholds and batch decisions, field for field."""
        plain = SquiggleFilter(reference_squiggle, prefix_samples=600)
        panelled = SquiggleFilter(TargetPanel.single(reference_squiggle), prefix_samples=600)
        plain.calibrate(target_signals, nontarget_signals)
        panelled.calibrate(target_signals, nontarget_signals)
        assert panelled.threshold == plain.threshold
        signals = list(target_signals) + list(nontarget_signals)
        assert [panelled.classify(s) for s in signals] == [plain.classify(s) for s in signals]
        assert panelled.classify_batch(signals) == plain.classify_batch(signals)

    def test_panel_classify_reports_argmin_target(self, kmer_model, rng):
        genomes = {
            "long": random_genome(700, seed=31),
            "short": random_genome(150, seed=32),
            "mid": random_genome(400, seed=33),
        }
        squiggle_filter = build_default_filter(genomes, kmer_model=kmer_model, prefix_samples=400)
        assert squiggle_filter.panel.names == ("long", "short", "mid")
        signal = rng.normal(90.0, 10.0, 500)
        decision = squiggle_filter.classify(signal, threshold=1e12)
        assert decision.target in genomes
        assert len(decision.target_costs) == 3
        assert decision.cost == min(decision.target_costs)
        # The reported target is the per-target argmin (first on ties).
        assert decision.target == squiggle_filter.panel.names[
            int(np.argmin(decision.target_costs))
        ]
        # Scalar path and each batched backend agree field for field.
        alignments = squiggle_filter.target_alignments(signal, 400)
        assert decision.target_costs == tuple(
            alignments[name].cost for name in squiggle_filter.panel.names
        )
        for backend, options in PANEL_BACKENDS:
            batch = squiggle_filter.classify_batch(
                [signal], threshold=1e12, backend=backend, backend_options=options
            )
            assert batch == [decision], backend

    def test_panel_end_positions_are_target_local(self, kmer_model, rng):
        genomes = {"a": random_genome(300, seed=41), "b": random_genome(200, seed=42)}
        squiggle_filter = build_default_filter(genomes, kmer_model=kmer_model, prefix_samples=300)
        decision = squiggle_filter.classify(rng.normal(90.0, 10.0, 350), threshold=1e12)
        target_length = squiggle_filter.panel.reference_for(decision.target).n_positions
        assert 0 <= decision.end_position < target_length


# --------------------------------------------------------- engine + classifier
class TestPanelEngine:
    def test_engine_snapshot_carries_per_target_breakdown(self, kmer_model, rng):
        config = SDTWConfig.hardware()
        panel = TargetPanel.from_genomes(
            {"a": random_genome(80, seed=51), "b": random_genome(40, seed=52)},
            kmer_model=kmer_model,
        )
        with BatchSDTWEngine(panel, config) as engine:
            assert engine.n_targets == 2
            assert engine.target_names == ("a", "b")
            query = rng.integers(-127, 128, 15)
            snap = engine.step([("read", query)])["read"]
            expected = {
                name: sdtw_resume(
                    query, panel.reference_for(name).values(quantized=True), config
                )
                for name in panel.names
            }
            assert snap.target_costs == tuple(expected[n].cost for n in panel.names)
            assert snap.target_ends == tuple(
                expected[n].end_position for n in panel.names
            )
            best = min(panel.names, key=lambda n: expected[n].cost)
            assert snap.target == best
            assert snap.cost == expected[best].cost
            assert snap.end_position == expected[best].end_position

    def test_prebuilt_backend_block_mismatch_rejected(self, kmer_model):
        config = SDTWConfig.hardware()
        panel = TargetPanel.from_genomes(
            {"a": random_genome(30, seed=5), "b": random_genome(24, seed=6)},
            kmer_model=kmer_model,
        )
        # Same column count, but reduced as one block instead of two.
        backend = create_backend("numpy", panel.values(quantized=True), config, 2)
        with pytest.raises(ValueError, match="panel blocks"):
            BatchSDTWEngine(panel, config, backend=backend)
        backend.close()


# ------------------------------------------------------------ pipeline and CLI
@pytest.fixture(scope="module")
def virus_panel(kmer_model):
    return {
        "virus_a": random_genome(600, seed=71),
        "virus_b": random_genome(350, seed=72),
        "virus_c": random_genome(480, seed=73),
    }


class TestPanelPipeline:
    def test_build_pipeline_targets_key_reports_per_target_accepts(
        self, virus_panel, background_genome, kmer_model
    ):
        from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

        mixture = SpecimenMixture(
            genomes={**virus_panel, "host": background_genome},
            fractions={
                **{name: 0.15 for name in virus_panel},
                "host": 1.0 - 0.45,
            },
            target_names=tuple(virus_panel),
        )
        generator = ReadGenerator(
            mixture,
            kmer_model=kmer_model,
            length_model=ReadLengthModel(mean_bases=300, sigma=0.15, min_bases=240, max_bases=460),
            seed=20260731,
        )
        reads = generator.generate(24)
        pipeline = build_pipeline(
            {
                "classifier": {
                    "name": "batch_squigglefilter",
                    "kmer_model": kmer_model,
                    "threshold": 1e12,  # accept-everything: attribution is what matters
                    "prefix_samples": 600,
                },
                "targets": virus_panel,
                "target_genome": virus_panel["virus_a"],
                "n_channels": 4,
                "batch": True,
                "assemble": False,
            }
        )
        try:
            assert pipeline.classifier.panel.names == tuple(virus_panel)
            result = pipeline.run(reads)
        finally:
            pipeline.classifier.close()
        accepts = result.streaming["per_target_accepts"]
        assert sum(accepts.values()) == len(reads)  # threshold accepts all
        assert set(accepts) <= set(virus_panel)
        assert result.streaming["targets"] == list(virus_panel)
        # Every read carries a target attribution in its decision.
        for outcome in result.session.outcomes:
            assert outcome.decision is not None
            assert outcome.decision.target in virus_panel
            assert len(outcome.decision.target_costs) == 3

    def test_panel_decisions_identical_across_backends(
        self, virus_panel, background_genome, kmer_model
    ):
        from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

        panel = TargetPanel.from_genomes(virus_panel, kmer_model=kmer_model)
        mixture = SpecimenMixture(
            genomes={**virus_panel, "host": background_genome},
            fractions={**{name: 0.1 for name in virus_panel}, "host": 0.7},
            target_names=tuple(virus_panel),
        )
        generator = ReadGenerator(
            mixture,
            kmer_model=kmer_model,
            length_model=ReadLengthModel(mean_bases=260, sigma=0.15, min_bases=220, max_bases=400),
            seed=20260801,
        )
        reads = generator.generate(12)
        calibration = generator.generate_balanced(6)
        helper = BatchSquiggleClassifier(panel, prefix_samples=500)
        threshold = helper.calibrate(
            [r.signal_pa for r in calibration if r.is_target],
            [r.signal_pa for r in calibration if not r.is_target],
            chunk_samples=250,
        )
        decisions = {}
        for backend, options in PANEL_BACKENDS:
            with BatchSquiggleClassifier(
                panel,
                threshold=threshold,
                prefix_samples=500,
                backend=backend,
                backend_options=options,
            ) as classifier:
                result = ReadUntilPipeline(
                    classifier,
                    virus_panel["virus_a"],
                    assemble=False,
                    chunk_samples=250,
                    n_channels=4,
                    batch=True,
                ).run(reads)
            key = f"{backend}:{options}"
            decisions[key] = {
                outcome.read.read_id: (
                    outcome.ejected,
                    outcome.decision.cost if outcome.decision else None,
                    outcome.decision.target if outcome.decision else None,
                    outcome.decision.target_costs if outcome.decision else None,
                )
                for outcome in result.session.outcomes
            }
        baseline = decisions["numpy:None"]
        assert len(baseline) == len(reads)
        for key, mapping in decisions.items():
            assert mapping == baseline, key


class TestCliTargetPanel:
    CLI_ARGS = [
        "read-until",
        "--n-channels", "4",
        "--target-length", "600",
        "--background-length", "2500",
        "--n-reads", "10",
        "--calibration-reads-per-class", "5",
        "--prefix-samples", "400",
    ]

    def test_target_panel_session_reports_per_target_accepts(self, capsys):
        from repro.cli import main

        exit_code = main(self.CLI_ARGS + ["--target-panel", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "batch_squigglefilter" in output
        for name in ("virus1", "virus2", "virus3"):
            assert f"accepts[{name}]" in output

    def test_target_panel_with_colsharded_backend(self, capsys):
        from repro.cli import main

        exit_code = main(
            self.CLI_ARGS + ["--target-panel", "2", "--backend", "colsharded", "--workers", "2"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "colsharded" in output
        assert "accepts[virus1]" in output

    def test_target_panel_requires_squigglefilter_family(self, capsys):
        from repro.cli import main

        exit_code = main(
            self.CLI_ARGS + ["--target-panel", "2", "--classifier", "multistage"]
        )
        assert exit_code == 2
        assert "--target-panel requires" in capsys.readouterr().err

    def test_target_panel_needs_two_targets(self, capsys):
        from repro.cli import main

        assert main(self.CLI_ARGS + ["--target-panel", "1"]) == 2
        assert "at least 2" in capsys.readouterr().err

    def test_workers_accepts_colsharded(self, capsys):
        from repro.cli import main

        # RunConfig validation owns the workers-vs-backend check now; the
        # error names the offending field.
        assert main(self.CLI_ARGS + ["--workers", "2"]) == 2
        assert "workers" in capsys.readouterr().err
