"""Unit tests for the extension subsystems: Read Until API simulation,
multi-target panels, the cost model, PAF output and report generation."""

import numpy as np
import pytest

from repro.align.aligner import ReferenceAligner
from repro.analysis.report import ExperimentReport, format_markdown_table, format_table
from repro.core.panel import ReferencePanelFilter
from repro.genomes.sequences import random_genome
from repro.io.paf import PafRecord, paf_from_alignment, read_paf, write_paf
from repro.pipeline.cost_model import (
    SequencingCostConfig,
    experiment_cost,
    read_until_savings,
)
from repro.pipeline.runtime_model import ReadUntilModelConfig
from repro.sequencer.read_until_api import ReadUntilSimulator, classifier_client
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture
from repro.sequencer.run import MinIONParameters

# Most API tests disable the 1-second capture dead time so the first chunk is
# available immediately; one dedicated test checks the capture delay itself.
NO_CAPTURE = MinIONParameters(capture_time_s=0.0)


# --------------------------------------------------------------------------- Read Until API
class TestReadUntilSimulator:
    @pytest.fixture()
    def long_reads(self, mixture, kmer_model):
        generator = ReadGenerator(
            mixture,
            kmer_model=kmer_model,
            length_model=ReadLengthModel(mean_bases=700, sigma=0.1, min_bases=500, max_bases=900),
            seed=31,
        )
        reads = [generator.generate_one(source="virus") for _ in range(4)]
        reads += [generator.generate_one(source="host") for _ in range(8)]
        return reads

    def test_chunks_grow_until_decision(self, long_reads):
        simulator = ReadUntilSimulator(
            long_reads[:2], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1
        )
        first = simulator.get_read_chunks()
        second = simulator.get_read_chunks()
        assert first and second
        assert second[0].samples_seen > first[0].samples_seen

    def test_capture_time_delays_first_chunk(self, long_reads):
        simulator = ReadUntilSimulator(long_reads[:1], chunk_samples=500, n_channels=1)
        # With the default 1 s capture time and 0.125 s chunks, the first few
        # polls return nothing.
        assert simulator.get_read_chunks() == []
        for _ in range(10):
            chunks = simulator.get_read_chunks()
            if chunks:
                break
        assert chunks

    def test_unblock_truncates_read(self, long_reads):
        read = long_reads[0]
        simulator = ReadUntilSimulator([read], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1)
        chunks = simulator.get_read_chunks()
        simulator.unblock(chunks[0].channel, chunks[0].read_id)
        assert simulator.action_log
        entry = simulator.action_log[0]
        assert entry.action == "unblocked"
        assert entry.samples_sequenced < read.n_samples

    def test_stop_receiving_sequences_fully(self, long_reads):
        read = long_reads[0]
        simulator = ReadUntilSimulator([read], parameters=NO_CAPTURE, chunk_samples=800, n_channels=1)
        chunks = simulator.get_read_chunks()
        simulator.stop_receiving(chunks[0].channel, chunks[0].read_id)
        while not simulator.finished:
            simulator.get_read_chunks()
        entry = simulator.action_log[0]
        assert entry.action == "sequenced"
        assert entry.samples_sequenced == read.n_samples

    def test_latency_costs_extra_samples(self, long_reads):
        read = long_reads[0]
        fast = ReadUntilSimulator([read], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1)
        chunk = fast.get_read_chunks()[0]
        fast.unblock(chunk.channel, chunk.read_id, latency_s=0.0)
        slow = ReadUntilSimulator([read], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1)
        chunk = slow.get_read_chunks()[0]
        slow.unblock(chunk.channel, chunk.read_id, latency_s=0.2)
        assert slow.action_log[0].samples_sequenced > fast.action_log[0].samples_sequenced

    def test_run_client_with_oracle(self, long_reads):
        truth = {read.read_id: read.is_target for read in long_reads}
        simulator = ReadUntilSimulator(long_reads, chunk_samples=600, n_channels=4)

        def decide(chunk):
            return "stop_receiving" if truth[chunk.read_id] else "unblock"

        summary = simulator.run_client(decide)
        assert summary["reads_finished"] == len(long_reads)
        assert summary["target_recall"] == 1.0
        assert summary["background_ejection_rate"] == 1.0
        assert summary["mean_background_samples"] < np.mean(
            [read.n_samples for read in long_reads if not read.is_target]
        )

    def test_classifier_client_adapter(self, long_reads, calibrated_filter):
        client = classifier_client(
            lambda signal: calibrated_filter.classify(signal).accept, min_samples=800
        )
        simulator = ReadUntilSimulator(long_reads, chunk_samples=400, n_channels=4)
        summary = simulator.run_client(client)
        assert summary["reads_finished"] == len(long_reads)
        assert summary["target_recall"] >= 0.75
        assert summary["background_ejection_rate"] >= 0.75

    def test_invalid_construction(self, long_reads):
        with pytest.raises(ValueError):
            ReadUntilSimulator(long_reads, chunk_samples=0)
        with pytest.raises(ValueError):
            ReadUntilSimulator(long_reads, n_channels=0)

    def test_unknown_action_rejected(self, long_reads):
        simulator = ReadUntilSimulator(long_reads[:1], chunk_samples=500, n_channels=1)
        with pytest.raises(ValueError):
            simulator.run_client(lambda chunk: "explode")

    def test_stale_unblock_ignored(self, long_reads):
        simulator = ReadUntilSimulator(long_reads[:1], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1)
        simulator.get_read_chunks()
        simulator.unblock(0, "nonexistent-read")
        assert simulator.action_log == []


# --------------------------------------------------------------------------- Panel filter
class TestReferencePanelFilter:
    @pytest.fixture(scope="class")
    def panel_world(self, kmer_model):
        genomes = {
            "virus_a": random_genome(900, seed=71),
            "virus_b": random_genome(900, seed=72),
        }
        background = random_genome(6000, seed=73)
        panel = ReferencePanelFilter(genomes, kmer_model=kmer_model, prefix_samples=900)

        def reads_for(genome, n, seed):
            mixture = SpecimenMixture.two_component("t", genome, "bg", background, 0.5)
            generator = ReadGenerator(
                mixture,
                kmer_model=kmer_model,
                length_model=ReadLengthModel(mean_bases=250, sigma=0.1, min_bases=200, max_bases=350),
                seed=seed,
            )
            return generator.generate_balanced(n)

        reads_a = reads_for(genomes["virus_a"], 6, 81)
        reads_b = reads_for(genomes["virus_b"], 6, 82)
        target_a = [r.signal_pa for r in reads_a if r.is_target]
        target_b = [r.signal_pa for r in reads_b if r.is_target]
        background_signals = [r.signal_pa for r in reads_a + reads_b if not r.is_target]
        panel.calibrate({"virus_a": target_a, "virus_b": target_b}, background_signals)
        return panel, target_a, target_b, background_signals

    def test_requires_calibration(self, kmer_model):
        panel = ReferencePanelFilter({"x": random_genome(600, seed=1)}, kmer_model=kmer_model)
        with pytest.raises(ValueError):
            panel.classify(np.random.default_rng(0).normal(90, 12, 500))

    def test_identifies_correct_member(self, panel_world):
        panel, target_a, target_b, _ = panel_world
        hits_a = [panel.classify(signal) for signal in target_a]
        hits_b = [panel.classify(signal) for signal in target_b]
        assert sum(1 for d in hits_a if d.best_target == "virus_a") >= len(hits_a) - 1
        assert sum(1 for d in hits_b if d.best_target == "virus_b") >= len(hits_b) - 1

    def test_rejects_background(self, panel_world):
        panel, _, _, background_signals = panel_world
        rejected = sum(1 for signal in background_signals if not panel.classify(signal).accept)
        assert rejected >= len(background_signals) - 1

    def test_identification_accuracy(self, panel_world):
        panel, target_a, target_b, background_signals = panel_world
        labelled = (
            [("virus_a", signal) for signal in target_a]
            + [("virus_b", signal) for signal in target_b]
            + [(None, signal) for signal in background_signals]
        )
        assert panel.identification_accuracy(labelled) >= 0.85
        assert panel.identification_accuracy([]) == 0.0

    def test_buffer_capacity_enforced(self, kmer_model):
        genomes = {f"virus_{i}": random_genome(20_000, seed=100 + i) for i in range(3)}
        with pytest.raises(ValueError):
            ReferencePanelFilter(genomes, kmer_model=kmer_model)

    def test_empty_panel_rejected(self, kmer_model):
        with pytest.raises(ValueError):
            ReferencePanelFilter({}, kmer_model=kmer_model)

    def test_unknown_member_in_calibration(self, kmer_model):
        panel = ReferencePanelFilter({"x": random_genome(600, seed=5)}, kmer_model=kmer_model)
        with pytest.raises(KeyError):
            panel.calibrate({"y": [np.zeros(100)]}, [np.zeros(100)])

    def test_cost_margin(self, panel_world):
        panel, target_a, _, _ = panel_world
        decision = panel.classify(target_a[0])
        assert decision.cost_margin() > 0


# --------------------------------------------------------------------------- Cost model
class TestCostModel:
    def test_effective_flowcell_cost(self):
        config = SequencingCostConfig()
        assert config.effective_flowcell_cost_usd == pytest.approx(125.0)

    def test_experiment_cost_scales_with_runtime(self):
        short = experiment_cost(3600.0)
        long = experiment_cost(7200.0)
        assert long.total_usd > short.total_usd
        assert long.runtime_hours == pytest.approx(2.0)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            experiment_cost(-1.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SequencingCostConfig(flowcell_cost_usd=0)
        with pytest.raises(ValueError):
            SequencingCostConfig(flowcell_reuses=0)

    def test_read_until_saves_time_and_cost(self):
        model = ReadUntilModelConfig()
        savings = read_until_savings(model, recall=0.95, false_positive_rate=0.02)
        assert savings["time_saved_hours"] > 0
        assert savings["cost_saved_usd"] > 0
        assert (
            savings["experiments_per_flowcell_read_until"]
            >= savings["experiments_per_flowcell_control"]
        )


# --------------------------------------------------------------------------- PAF output
class TestPafOutput:
    @pytest.fixture(scope="class")
    def alignment_world(self):
        genome = random_genome(3000, seed=91)
        aligner = ReferenceAligner(genome)
        read = genome[500:900]
        alignment = aligner.map(read)
        return genome, alignment

    def test_round_trip(self, tmp_path, alignment_world):
        genome, alignment = alignment_world
        record = paf_from_alignment("read_1", alignment, "virus", len(genome))
        path = tmp_path / "out.paf"
        assert write_paf(path, [record]) == 1
        loaded = read_paf(path)
        assert loaded == [record]

    def test_record_consistency(self, alignment_world):
        genome, alignment = alignment_world
        record = paf_from_alignment("read_1", alignment, "virus", len(genome))
        assert record.strand == alignment.strand
        assert record.target_start <= 500 <= record.target_end
        assert 0 < record.residue_matches <= record.alignment_block_length

    def test_invalid_record(self):
        with pytest.raises(ValueError):
            PafRecord("q", 100, 0, 50, "x", "t", 200, 0, 50, 40, 50, 60)
        with pytest.raises(ValueError):
            PafRecord("q", 100, 60, 50, "+", "t", 200, 0, 50, 40, 50, 60)
        with pytest.raises(ValueError):
            PafRecord("q", 100, 0, 50, "+", "t", 200, 0, 50, 40, 50, 300)

    def test_from_line_rejects_short_lines(self):
        with pytest.raises(ValueError):
            PafRecord.from_line("a\tb\tc")


# --------------------------------------------------------------------------- Reports
class TestExperimentReport:
    def test_text_table_alignment(self):
        rows = [{"metric": "recall", "value": 0.95}, {"metric": "fpr", "value": 0.0123}]
        text = format_table(rows)
        assert "recall" in text and "0.95" in text
        assert format_table([]) == "(no rows)"

    def test_markdown_table(self):
        rows = [{"a": 1, "b": True}]
        markdown = format_markdown_table(rows)
        assert markdown.splitlines()[0] == "| a | b |"
        assert "yes" in markdown

    def test_report_round_trip(self, tmp_path):
        report = ExperimentReport("Figure 17b reproduction")
        section = report.section("lambda", columns=["prefix", "runtime_min"])
        section.add_row(prefix=1000, runtime_min=42.1)
        section.add_note("30x coverage target")
        text = report.to_text()
        markdown = report.to_markdown()
        assert "Figure 17b" in text and "lambda" in text
        assert markdown.startswith("# Figure 17b reproduction")
        path = tmp_path / "report.md"
        report.save(path)
        assert "42.1" in path.read_text()

    def test_empty_title_rejected(self):
        with pytest.raises(ValueError):
            ExperimentReport("")
