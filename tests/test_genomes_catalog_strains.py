"""Unit tests for the virus catalog (Fig. 10) and strain panel (Table 2)."""

import pytest

from repro.genomes.catalog import (
    EPIDEMIC_VIRUSES,
    MAX_DOUBLE_STRANDED_LENGTH,
    MAX_SINGLE_STRANDED_LENGTH,
    VirusRecord,
    genome_length_table,
    lookup,
    supported_by_filter,
    supported_fraction,
)
from repro.genomes.references import (
    DEFAULT_SCALED_LENGTHS,
    REAL_GENOME_LENGTHS,
    ReferencePanel,
    build_reference_panel,
    scaled_length,
)
from repro.genomes.sequences import random_genome
from repro.genomes.strains import (
    SARS_COV_2_CLADES,
    max_strain_divergence,
    simulate_strain_panel,
    strain_mutation_table,
)


class TestVirusCatalog:
    def test_known_viruses_present(self):
        names = {record.name for record in EPIDEMIC_VIRUSES}
        assert "SARS-CoV-2" in names
        assert "Lambda phage" in names
        assert "Ebola virus" in names

    def test_sars_cov_2_length(self):
        assert lookup("SARS-CoV-2").genome_length == 29_903

    def test_lookup_case_insensitive(self):
        assert lookup("sars-cov-2").name == "SARS-CoV-2"

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            lookup("T4 phage")

    def test_table_sorted_by_length(self):
        rows = genome_length_table()
        lengths = [row["genome_length"] for row in rows]
        assert lengths == sorted(lengths)

    def test_most_viruses_supported(self):
        # The paper: smallpox and herpes simplex (and mpox) are the exceptions.
        assert supported_fraction() > 0.85

    def test_smallpox_not_supported(self):
        assert not supported_by_filter(lookup("Smallpox (Variola)"))

    def test_sars_cov_2_supported(self):
        assert supported_by_filter(lookup("SARS-CoV-2"))

    def test_limits_consistent(self):
        assert MAX_SINGLE_STRANDED_LENGTH == 2 * MAX_DOUBLE_STRANDED_LENGTH

    def test_effective_reference_length_double_stranded(self):
        record = lookup("Lambda phage")
        assert record.effective_reference_length == 2 * record.genome_length

    def test_invalid_record_rejected(self):
        with pytest.raises(ValueError):
            VirusRecord("bad", -5, "RNA", "single")
        with pytest.raises(ValueError):
            VirusRecord("bad", 10, "XNA", "single")


class TestReferencePanel:
    def test_build_contains_canonical_genomes(self):
        panel = build_reference_panel(seed=1)
        for name in ("lambda", "sars_cov_2", "human"):
            assert name in panel

    def test_lengths_match_defaults(self):
        panel = build_reference_panel(seed=2)
        assert panel.lengths() == {
            name: DEFAULT_SCALED_LENGTHS[name] for name in panel.lengths()
        }

    def test_target_background_accessors(self):
        panel = build_reference_panel(target="lambda", background="human", seed=3)
        assert panel.target == panel["lambda"]
        assert panel.background == panel["human"]

    def test_custom_lengths(self):
        panel = build_reference_panel(lengths={"lambda": 900}, seed=4)
        assert len(panel["lambda"]) == 900

    def test_missing_length_raises(self):
        with pytest.raises(KeyError):
            build_reference_panel(target="zika", seed=5)

    def test_add_validates(self):
        panel = ReferencePanel()
        with pytest.raises(ValueError):
            panel.add("bad", "ACGX")

    def test_scaled_length(self):
        assert scaled_length("lambda", 0.1) == int(REAL_GENOME_LENGTHS["lambda"] * 0.1)
        with pytest.raises(KeyError):
            scaled_length("unknown")
        with pytest.raises(ValueError):
            scaled_length("lambda", 0)


class TestStrainPanel:
    def test_table2_clades(self):
        clades = {record.clade: record.mutations for record in SARS_COV_2_CLADES}
        assert clades == {"19A": 23, "19B": 18, "20A": 22, "20B": 17, "20C": 17}

    def test_panel_mutation_counts_match(self):
        reference = random_genome(2000, seed=6)
        panel = simulate_strain_panel(reference, seed=7)
        for strain, record in zip(panel, SARS_COV_2_CLADES):
            assert strain.mutation_count == record.mutations
            assert len(strain.genome) == len(reference)

    def test_table_regeneration(self):
        reference = random_genome(1500, seed=8)
        panel = simulate_strain_panel(reference, seed=9)
        rows = strain_mutation_table(reference, panel)
        for row in rows:
            assert row["mutations"] == row["expected_mutations"]

    def test_max_divergence(self):
        reference = random_genome(1500, seed=10)
        panel = simulate_strain_panel(reference, seed=11)
        assert max_strain_divergence(panel) == 23
        assert max_strain_divergence([]) == 0
