"""Unit tests for repro.genomes.sequences."""

import numpy as np
import pytest

from repro.genomes.sequences import (
    gc_content,
    hamming_distance,
    kmer_counts,
    random_genome,
    reverse_complement,
    sequence_identity,
    tile_sequence,
    transcribe_errors,
    validate_sequence,
)


class TestValidateSequence:
    def test_uppercases(self):
        assert validate_sequence("acgt") == "ACGT"

    def test_accepts_n(self):
        assert validate_sequence("ACGTN") == "ACGTN"

    def test_rejects_invalid_base(self):
        with pytest.raises(ValueError):
            validate_sequence("ACGX")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            validate_sequence(1234)


class TestRandomGenome:
    def test_length(self):
        assert len(random_genome(500, seed=1)) == 500

    def test_only_valid_bases(self):
        genome = random_genome(300, seed=2)
        assert set(genome) <= set("ACGT")

    def test_deterministic_with_seed(self):
        assert random_genome(200, seed=3) == random_genome(200, seed=3)

    def test_different_seeds_differ(self):
        assert random_genome(200, seed=3) != random_genome(200, seed=4)

    def test_gc_content_respected(self):
        genome = random_genome(20_000, gc=0.7, seed=5)
        assert 0.66 < gc_content(genome) < 0.74

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            random_genome(0)

    def test_invalid_gc_rejected(self):
        with pytest.raises(ValueError):
            random_genome(100, gc=1.5)

    def test_rng_takes_precedence(self):
        rng = np.random.default_rng(9)
        first = random_genome(100, rng=rng)
        second = random_genome(100, rng=rng)
        assert first != second


class TestReverseComplement:
    def test_simple(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAAC") == "GTTT"

    def test_involution(self):
        genome = random_genome(150, seed=6)
        assert reverse_complement(reverse_complement(genome)) == genome

    def test_preserves_n(self):
        assert reverse_complement("ANT") == "ANT"


class TestGcContent:
    def test_half(self):
        assert gc_content("ACGT") == 0.5

    def test_all_gc(self):
        assert gc_content("GGCC") == 1.0

    def test_ignores_n(self):
        assert gc_content("GCNN") == 1.0

    def test_empty_is_zero(self):
        assert gc_content("NNN") == 0.0


class TestKmerCounts:
    def test_counts(self):
        counts = kmer_counts("ACGACG", 3)
        assert counts["ACG"] == 2
        assert counts["CGA"] == 1

    def test_skips_n(self):
        counts = kmer_counts("ACNGT", 2)
        assert "CN" not in counts and "NG" not in counts

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmer_counts("ACGT", 0)

    def test_total_count(self):
        genome = random_genome(100, seed=7)
        counts = kmer_counts(genome, 4)
        assert sum(counts.values()) == len(genome) - 3


class TestTranscribeErrors:
    def test_no_errors_is_identity(self):
        genome = random_genome(200, seed=8)
        assert transcribe_errors(genome) == genome

    def test_substitutions_change_bases(self):
        genome = random_genome(500, seed=9)
        mutated = transcribe_errors(genome, substitution_rate=0.2, seed=10)
        assert len(mutated) == len(genome)
        assert hamming_distance(genome, mutated) > 50

    def test_deletions_shorten(self):
        genome = random_genome(500, seed=11)
        mutated = transcribe_errors(genome, deletion_rate=0.2, seed=12)
        assert len(mutated) < len(genome)

    def test_insertions_lengthen(self):
        genome = random_genome(500, seed=13)
        mutated = transcribe_errors(genome, insertion_rate=0.2, seed=14)
        assert len(mutated) > len(genome)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            transcribe_errors("ACGT", substitution_rate=1.5)


class TestDistances:
    def test_hamming_requires_equal_length(self):
        with pytest.raises(ValueError):
            hamming_distance("ACG", "AC")

    def test_hamming_zero_for_identical(self):
        assert hamming_distance("ACGT", "ACGT") == 0

    def test_identity_range(self):
        assert sequence_identity("ACGT", "ACGA") == 0.75

    def test_identity_empty(self):
        assert sequence_identity("", "ACGT") == 0.0


class TestTileSequence:
    def test_non_overlapping(self):
        tiles = list(tile_sequence("ACGTACGT", window=4))
        assert tiles == ["ACGT", "ACGT"]

    def test_overlapping_stride(self):
        tiles = list(tile_sequence("ACGTAC", window=4, stride=2))
        assert tiles == ["ACGT", "GTAC"]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(tile_sequence("ACGT", window=0))
