"""Tests for the pruned sDTW wavefront and the ``native`` backend.

The pruning exactness contract under test, on every registered backend:
with ``prune=True`` and a decision bound ``B = prune_bound + prune_margin``,

* accept/eject decisions (``cost <= prune_bound``) are bit-identical to the
  brute-force wavefront,
* every cost at or below ``B`` is bit-exact (value and end position),
* costs above ``B`` may be stale in either direction — frozen columns keep
  their last exact value, which can undercut the brute-force minimum — but
  can never falsely dip to or below ``B``.

The ``native`` backend is additionally pinned to the vectorized kernels:
always registered, RuntimeError with an install hint when Numba is missing,
and ``jit=False`` runs the identical scalar kernel as pure Python so the
bit-identity harness covers it on machines without Numba.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.backends import available_backends, create_backend
from repro.batch.engine import BatchSDTWEngine
from repro.batch.native import NativeBackend, cython_kernel_available, numba_available
from repro.core.config import SDTWConfig
from repro.core.panel import TargetPanel
from repro.core.sdtw import sdtw_resume
from repro.obs.trace import Tracer
from repro.runtime import RunConfig, open_session
from repro.sequencer.read_until_api import SignalChunk

# Every registered backend, in host-executable form: "gpu" runs the device
# code path on the numpy array module, "native" runs its scalar kernel as
# pure Python when Numba is absent.
PRUNE_BACKENDS = [
    ("numpy", None),
    ("sharded", {"workers": 2}),
    ("colsharded", {"workers": 2}),
    ("gpu", {"array_module": "numpy"}),
    ("native", {"jit": False}),
]

_PRUNE_REFERENCE = np.random.default_rng(20260807).integers(-127, 128, 60)

prune_settings = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

signal_values = st.integers(min_value=-127, max_value=127)
lane_query = st.lists(signal_values, min_size=1, max_size=24).map(lambda v: np.array(v))
lane_queries = st.lists(lane_query, min_size=1, max_size=4)


def _brute_schedule(schedules, reference, config):
    """Per-round brute-force states for every lane (the exactness oracle)."""
    states = [None] * len(schedules)
    per_round = []
    for round_index in range(len(schedules[0])):
        for lane, schedule in enumerate(schedules):
            chunk = schedule[round_index]
            if chunk.size:
                states[lane] = sdtw_resume(chunk, reference, config, state=states[lane])
        per_round.append(list(states))
    return per_round


def _pruned_engine(reference, config=None, backend="numpy", options=None, **kwargs):
    kwargs.setdefault("prune", True)
    return BatchSDTWEngine(
        reference, config, backend=backend, backend_options=options, **kwargs
    )


class TestPrunedBitIdentity:
    @prune_settings
    @given(queries=lane_queries, data=st.data())
    def test_pruned_matches_brute_on_every_backend(self, queries, data):
        """The acceptance property: across ragged chunk schedules on every
        registered backend, pruned decisions are bit-identical to brute force
        and every cost at or below ``threshold + margin`` is bit-exact."""
        n_rounds = data.draw(st.integers(min_value=1, max_value=3))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        schedules = []
        for query in queries:
            cuts = np.sort(rng.integers(0, query.size + 1, size=n_rounds - 1))
            bounds = [0, *cuts.tolist(), query.size]
            schedules.append([query[bounds[i] : bounds[i + 1]] for i in range(n_rounds)])

        config = SDTWConfig.hardware()
        brute_rounds = _brute_schedule(schedules, _PRUNE_REFERENCE, config)
        final_costs = sorted(
            state.cost for state in brute_rounds[-1] if state is not None
        )
        # A threshold somewhere inside the observed cost range makes both
        # decision outcomes and both sides of the exactness bound reachable.
        threshold = float(
            data.draw(st.sampled_from(final_costs)) + data.draw(st.integers(-5, 5))
        )
        margin = float(data.draw(st.sampled_from([0.0, 40.0])))
        bound = threshold + margin
        lifetime = max(sum(c.size for c in schedule) for schedule in schedules)

        engines = [
            _pruned_engine(
                _PRUNE_REFERENCE,
                config,
                backend=name,
                options=options,
                prune_margin=margin,
                prune_lifetime_samples=lifetime,
            )
            for name, options in PRUNE_BACKENDS
        ]
        try:
            for engine in engines:
                engine.prune_bound = threshold
            for round_index in range(n_rounds):
                items = [
                    (lane, schedules[lane][round_index])
                    for lane in range(len(queries))
                ]
                snaps = [engine.step(items) for engine in engines]
                for lane, brute in enumerate(brute_rounds[round_index]):
                    if brute is None:
                        continue
                    for (name, _), snap in zip(PRUNE_BACKENDS, snaps):
                        got = snap[lane]
                        assert (got.cost <= threshold) == (
                            brute.cost <= threshold
                        ), (name, lane, round_index)
                        if brute.cost <= bound:
                            assert got.cost == brute.cost, (name, lane, round_index)
                            assert got.end_position == brute.end_position, (
                                name,
                                lane,
                                round_index,
                            )
                        else:
                            assert got.cost > bound, (name, lane, round_index)
        finally:
            for engine in engines:
                engine.close()

    @pytest.mark.parametrize("backend,options", PRUNE_BACKENDS)
    def test_per_target_costs_exact_below_bound_on_panel(
        self, backend, options, kmer_model
    ):
        """With a multi-target panel, per-target costs obey the same contract
        target by target: exact at or below the bound, never falsely below."""
        rng = np.random.default_rng(20260808)
        from repro.genomes.sequences import random_genome

        panel = TargetPanel.from_genomes(
            {"a": random_genome(40, seed=5), "b": random_genome(55, seed=6)},
            kmer_model=kmer_model,
        )
        concatenated = panel.values(quantized=True)
        rounds, chunk = 3, 40
        total = rounds * chunk
        chunks_per_lane = []
        for lane in range(6):
            if lane < 2:  # on-target: a slice of the panel buffer plus noise
                start = int(rng.integers(0, max(1, concatenated.size - total)))
                base = np.tile(concatenated, total // concatenated.size + 2)[
                    start : start + total
                ]
                prefix = np.clip(base + rng.integers(-2, 3, total), -127, 127)
            else:
                prefix = rng.integers(-127, 128, total)
            chunks_per_lane.append(
                [prefix[r * chunk : (r + 1) * chunk] for r in range(rounds)]
            )

        config = SDTWConfig.hardware()
        with BatchSDTWEngine(panel, config) as brute_engine:
            for round_index in range(rounds):
                brute_snaps = brute_engine.step(
                    [(lane, chunks_per_lane[lane][round_index]) for lane in range(6)]
                )
        # Threshold midway between the on- and off-target lane costs: accepts
        # stay exact, ejected lanes blow through the kill bound and freeze.
        lane_costs = [brute_snaps[lane].cost for lane in range(6)]
        threshold = float((max(lane_costs[:2]) + min(lane_costs[2:])) / 2.0)
        assert max(lane_costs[:2]) < min(lane_costs[2:])
        bound = threshold  # margin 0: the decisions-only guarantee

        with _pruned_engine(
            panel,
            config,
            backend=backend,
            options=options,
            prune_lifetime_samples=total,
        ) as engine:
            engine.prune_bound = threshold
            for round_index in range(rounds):
                snaps = engine.step(
                    [(lane, chunks_per_lane[lane][round_index]) for lane in range(6)]
                )
        pruned_some = engine.cells_pruned > 0
        for lane in range(6):
            brute, got = brute_snaps[lane], snaps[lane]
            assert (got.cost <= threshold) == (brute.cost <= threshold), (backend, lane)
            for target in range(panel.n_targets):
                brute_cost = brute.target_costs[target]
                got_cost = got.target_costs[target]
                if brute_cost <= bound:
                    assert got_cost == brute_cost, (backend, lane, target)
                    assert got.target_ends[target] == brute.target_ends[target]
                else:
                    assert got_cost > bound, (backend, lane, target)
        assert pruned_some, f"{backend}: the pruning layer never engaged"

    def test_prune_off_is_bit_identical_brute_force(self, rng):
        """The default path: prune=False engines advance every cell and the
        counters say so."""
        reference = rng.integers(-127, 128, 50)
        config = SDTWConfig.hardware()
        query = rng.integers(-127, 128, 40)
        with BatchSDTWEngine(reference, config) as engine:
            snap = engine.step([(0, query)])[0]
            expected = sdtw_resume(query, reference, config)
            assert snap.cost == expected.cost
            assert np.array_equal(engine.state_of(0).row, expected.row)
        assert engine.cells_pruned == 0
        assert engine.cells_advanced == 40 * 50

    def test_pruned_engine_without_bound_runs_brute_force(self, rng):
        """prune=True but no prune_bound stamped yet (calibration pending):
        every cell advances and results are exact."""
        reference = rng.integers(-127, 128, 50)
        config = SDTWConfig.hardware()
        query = rng.integers(-127, 128, 40)
        with _pruned_engine(
            reference, config, prune_lifetime_samples=40
        ) as engine:
            snap = engine.step([(0, query)])[0]
        expected = sdtw_resume(query, reference, config)
        assert snap.cost == expected.cost
        assert engine.cells_pruned == 0
        assert engine.cells_advanced == 40 * 50


class TestPruneCounters:
    def _workload(self, rng, reference, n_lanes=8, rounds=3, chunk=40):
        chunks = []
        for lane in range(n_lanes):
            if lane == 0:  # one on-target lane stays alive throughout
                prefix = np.clip(
                    np.tile(reference, rounds * chunk // reference.size + 2)[
                        : rounds * chunk
                    ]
                    + rng.integers(-2, 3, rounds * chunk),
                    -127,
                    127,
                )
            else:
                prefix = rng.integers(-127, 128, rounds * chunk)
            chunks.append([prefix[r * chunk : (r + 1) * chunk] for r in range(rounds)])
        return chunks

    def test_cells_pruned_grows_as_margin_tightens(self, rng):
        """Monotonicity: a tighter (smaller) prune_margin can only prune more
        cells, and advanced + pruned always accounts for every nominal cell."""
        reference = rng.integers(-127, 128, 60)
        config = SDTWConfig.hardware()
        rounds, chunk, n_lanes = 3, 40, 8
        chunks = self._workload(rng, reference, n_lanes, rounds, chunk)
        nominal = n_lanes * rounds * chunk * reference.size

        pruned_by_margin = []
        for margin in (0.0, 500.0, 2000.0, 8000.0):
            with _pruned_engine(
                reference,
                config,
                prune_margin=margin,
                prune_lifetime_samples=rounds * chunk,
            ) as engine:
                engine.prune_bound = 0.0
                for round_index in range(rounds):
                    engine.step(
                        [(lane, chunks[lane][round_index]) for lane in range(n_lanes)]
                    )
                assert engine.cells_advanced + engine.cells_pruned == nominal
                pruned_by_margin.append(engine.cells_pruned)
        assert pruned_by_margin[0] > 0
        for tighter, looser in zip(pruned_by_margin, pruned_by_margin[1:]):
            assert tighter >= looser, pruned_by_margin

    def test_backend_prune_span_and_session_summary_counters(
        self, reference_squiggle, target_signals
    ):
        """Satellite contract: the engine emits a ``backend.prune`` span with
        the per-round deltas, and ``session.summary()`` reports the totals."""
        rng = np.random.default_rng(20260809)
        config = RunConfig(
            reference=reference_squiggle,
            threshold=-1e6,  # far below any cost: everything ejects, and the
            # kill bounds sit so low that round two+ is fully pruned
            prefix_samples=800,
            chunk_samples=400,
            n_channels=4,
            trace=True,
            prune=True,
        )
        with open_session(config) as session:
            for lane in range(4):
                signal = rng.normal(90.0, 12.0, size=800)
                for round_index in range(2):
                    session.submit(
                        [
                            SignalChunk(
                                channel=lane,
                                read_id=f"r{lane}",
                                read_number=lane,
                                chunk_start_sample=round_index * 400,
                                signal_pa=signal[
                                    round_index * 400 : (round_index + 1) * 400
                                ],
                                is_last=round_index == 1,
                            )
                        ]
                    )
            summary = session.summary()
        assert summary["cells_advanced"] > 0
        assert summary["cells_pruned"] > 0
        assert "backend.prune" in summary["phase_totals"]

    def test_engine_validation(self, rng):
        reference = rng.integers(-127, 128, 30)
        with pytest.raises(ValueError, match="prune_margin"):
            BatchSDTWEngine(reference, prune=True, prune_margin=-1.0)
        with pytest.raises(ValueError, match="prune_lifetime_samples"):
            BatchSDTWEngine(reference, prune=True, prune_lifetime_samples=0)
        # The hardware config uses a match bonus, so the bonus-credit kill
        # bound needs a lifetime to be sound.
        with pytest.raises(ValueError, match="prune_lifetime_samples"):
            BatchSDTWEngine(reference, SDTWConfig.hardware(), prune=True)
        # A bonus-free config needs no lifetime: the bound is the threshold.
        BatchSDTWEngine(
            reference,
            SDTWConfig(
                distance="absolute",
                allow_reference_deletions=False,
                quantize=True,
                match_bonus=0.0,
            ),
            prune=True,
        ).close()

    def test_backend_prune_span_carries_round_deltas(self, rng):
        reference = rng.integers(-127, 128, 40)
        tracer = Tracer(track="test")
        with _pruned_engine(
            reference,
            SDTWConfig.hardware(),
            prune_lifetime_samples=60,
            tracer=tracer,
        ) as engine:
            engine.prune_bound = -1e6
            for round_index in range(3):
                engine.step([(0, rng.integers(-127, 128, 20))])
        spans = [record for record in tracer.records() if record.name == "backend.prune"]
        assert len(spans) == 3
        assert sum(span.args["cells_pruned"] for span in spans) == engine.cells_pruned
        assert (
            sum(span.args["cells_advanced"] for span in spans) == engine.cells_advanced
        )


class TestNativeBackend:
    def test_native_registered_even_without_numba(self, rng):
        """The 'native' name always validates; with no compiled kernel build
        construction raises a RuntimeError carrying an install hint, not a
        KeyError."""
        assert "native" in available_backends()
        if numba_available() or cython_kernel_available():
            pytest.skip(
                "a compiled kernel is available; the unavailable-library path cannot fire"
            )
        with pytest.raises(RuntimeError, match="numba"):
            create_backend("native", rng.integers(-127, 128, 30), SDTWConfig.hardware(), 4)

    @pytest.mark.parametrize(
        "config",
        [
            SDTWConfig.hardware(),
            SDTWConfig(
                distance="absolute",
                allow_reference_deletions=False,
                quantize=True,
                match_bonus=0.0,
            ),
            # Non-integer configs fall back to the vectorized numpy advance.
            SDTWConfig(
                distance="squared",
                allow_reference_deletions=False,
                quantize=False,
                match_bonus=0.0,
            ),
        ],
    )
    def test_native_unpruned_matches_scalar(self, config, rng):
        reference = (
            rng.integers(-127, 128, 50) if config.quantize else rng.normal(size=50)
        )
        queries = [
            rng.integers(-127, 128, n).astype(np.float64)
            if not config.quantize
            else rng.integers(-127, 128, n)
            for n in (7, 19, 33)
        ]
        with BatchSDTWEngine(
            reference, config, backend="native", backend_options={"jit": False}
        ) as engine:
            scalar = [None] * len(queries)
            for start in range(0, 33, 11):
                items = []
                for lane, query in enumerate(queries):
                    chunk = query[start : start + 11]
                    items.append((lane, chunk))
                    if chunk.size:
                        scalar[lane] = sdtw_resume(
                            chunk, reference, config, state=scalar[lane]
                        )
                engine.step(items)
            for lane in range(len(queries)):
                state = engine.state_of(lane)
                assert np.array_equal(state.row, scalar[lane].row), config
                assert state.samples_processed == scalar[lane].samples_processed

    def test_native_jit_false_runs_pure_python(self, rng):
        backend = NativeBackend(
            rng.integers(-127, 128, 30), SDTWConfig.hardware(), capacity=2, jit=False
        )
        assert backend.backend_name == "native"
        costs, ends = backend.advance(
            np.array([0]), [rng.integers(-127, 128, 12)]
        )
        assert costs.shape == (1, 1)
        assert backend.stats.cells_advanced == 12 * 30

    @pytest.mark.skipif(not numba_available(), reason="Numba not installed")
    def test_native_jit_matches_scalar(self, rng):
        """The compiled kernel (CI installs Numba) is bit-identical too."""
        reference = rng.integers(-127, 128, 50)
        config = SDTWConfig.hardware()
        query = rng.integers(-127, 128, 60)
        with BatchSDTWEngine(reference, config, backend="native") as engine:
            snap = engine.step([(0, query)])[0]
        expected = sdtw_resume(query, reference, config)
        assert snap.cost == expected.cost
        assert snap.end_position == expected.end_position

    def test_run_config_accepts_native_backend(self):
        config = RunConfig(genome="ACGT" * 30, backend="native", tile_columns=32)
        assert config.backend == "native"
        with pytest.raises(ValueError, match="workers"):
            RunConfig(genome="ACGT" * 30, backend="native", workers=2)
