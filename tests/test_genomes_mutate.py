"""Unit tests for repro.genomes.mutate."""

import pytest

from repro.genomes.mutate import (
    Mutation,
    MutationSet,
    apply_mutations,
    mutated_reference_series,
    mutation_distance,
    random_mutations,
)
from repro.genomes.sequences import random_genome


class TestMutation:
    def test_valid_substitution(self):
        mutation = Mutation(position=3, kind="substitution", base="A")
        assert mutation.position == 3

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Mutation(position=0, kind="inversion", base="A")

    def test_substitution_requires_base(self):
        with pytest.raises(ValueError):
            Mutation(position=0, kind="substitution", base="")

    def test_negative_position(self):
        with pytest.raises(ValueError):
            Mutation(position=-1, kind="deletion")


class TestRandomMutations:
    def test_exact_substitution_count(self):
        genome = random_genome(400, seed=1)
        mutation_set = random_mutations(genome, substitutions=17, seed=2)
        assert mutation_set.substitution_count == 17
        assert mutation_set.indel_count == 0

    def test_substitutions_change_base(self):
        genome = random_genome(400, seed=3)
        mutation_set = random_mutations(genome, substitutions=25, seed=4)
        for mutation in mutation_set:
            assert mutation.base != genome[mutation.position]

    def test_positions_unique(self):
        genome = random_genome(300, seed=5)
        mutation_set = random_mutations(genome, substitutions=50, seed=6)
        assert len(set(mutation_set.positions())) == 50

    def test_too_many_mutations_rejected(self):
        with pytest.raises(ValueError):
            random_mutations("ACGT", substitutions=10)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            random_mutations("ACGTACGT", substitutions=-1)

    def test_indels_counted(self):
        genome = random_genome(400, seed=7)
        mutation_set = random_mutations(genome, substitutions=5, insertions=3, deletions=2, seed=8)
        assert mutation_set.substitution_count == 5
        assert mutation_set.indel_count == 5


class TestApplyMutations:
    def test_substitution_only_preserves_length(self):
        genome = random_genome(500, seed=9)
        mutation_set = random_mutations(genome, substitutions=20, seed=10)
        mutated = apply_mutations(genome, mutation_set)
        assert len(mutated) == len(genome)
        assert mutation_distance(genome, mutated) == 20

    def test_deletion_shortens(self):
        genome = random_genome(200, seed=11)
        mutation_set = random_mutations(genome, substitutions=0, deletions=5, seed=12)
        assert len(apply_mutations(genome, mutation_set)) == len(genome) - 5

    def test_insertion_lengthens(self):
        genome = random_genome(200, seed=13)
        mutation_set = random_mutations(genome, substitutions=0, insertions=4, seed=14)
        assert len(apply_mutations(genome, mutation_set)) == len(genome) + 4

    def test_substitution_beyond_length_rejected(self):
        mutation_set = MutationSet(
            reference_name="x",
            mutations=[Mutation(position=100, kind="substitution", base="A")],
        )
        with pytest.raises(ValueError):
            apply_mutations("ACGT", mutation_set)

    def test_manual_substitution(self):
        mutation_set = MutationSet(
            reference_name="x",
            mutations=[Mutation(position=1, kind="substitution", base="T")],
        )
        assert apply_mutations("AAAA", mutation_set) == "ATAA"


class TestMutationDistance:
    def test_requires_equal_length(self):
        with pytest.raises(ValueError):
            mutation_distance("ACGT", "ACG")

    def test_zero_for_identical(self):
        assert mutation_distance("ACGT", "ACGT") == 0


class TestMutatedReferenceSeries:
    def test_series_counts(self):
        genome = random_genome(600, seed=15)
        series = mutated_reference_series(genome, [0, 10, 50], seed=16)
        assert [count for count, _ in series] == [0, 10, 50]
        for count, mutated in series:
            assert mutation_distance(genome, mutated) == count

    def test_zero_mutations_identical(self):
        genome = random_genome(100, seed=17)
        series = mutated_reference_series(genome, [0], seed=18)
        assert series[0][1] == genome
