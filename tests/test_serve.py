"""Tests for the multi-tenant classification service (``repro.serve``).

Layered like the subsystem itself: the metrics registry and the admission
pool are exercised directly (the pool through real event loops —
saturation, fairness, draining); the session manager's config validation is
checked to reuse ``RunConfig``'s field-naming errors verbatim; and the HTTP
surface runs end-to-end over the stdlib transport with real sockets,
including the acceptance property — decisions served over the wire are
bit-identical to a local ``open_session`` replay — and the deterministic
backpressure contract (429 + ``Retry-After`` while a slot is held, success
after release, no round ever dropped).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.runtime import RunConfig, open_session
from repro.serve import (
    BackendPool,
    BackgroundServer,
    MetricsRegistry,
    PoolClosedError,
    PoolSaturatedError,
    ServeClient,
    ServeClientError,
    ServeServer,
)
from repro.serve.client import AsyncServeClient
from repro.serve.manager import SessionManager, chunk_from_payload
from repro.serve.workload import build_tenant_workloads, replay_flowcell

run = asyncio.run

GENOME = "ACGTTGCAAGGCTTAGCCGTAT" * 20


def service_config(**overrides):
    base = dict(
        genome=GENOME,
        threshold=1e9,
        prefix_samples=400,
        chunk_samples=200,
        n_channels=4,
    )
    base.update(overrides)
    return base


def wire_chunk(read_id, n=200, seed=0, last=True, channel=0):
    rng = np.random.default_rng(seed)
    return {
        "read_id": read_id,
        "signal": [float(v) for v in rng.normal(90.0, 10.0, n)],
        "channel": channel,
        "is_last": last,
    }


# --------------------------------------------------------------- metrics
class TestMetricsRegistry:
    def test_counters_and_gauges_render_prometheus_text(self):
        metrics = MetricsRegistry()
        metrics.describe("widgets_total", "Widgets seen")
        metrics.inc("widgets_total", session="a")
        metrics.inc("widgets_total", 2, session="a")
        metrics.inc("widgets_total", session="b")
        metrics.set_gauge("depth", 7)
        text = metrics.render()
        assert "# HELP widgets_total Widgets seen" in text
        assert "# TYPE widgets_total counter" in text
        assert 'widgets_total{session="a"} 3' in text
        assert 'widgets_total{session="b"} 1' in text
        assert "depth 7" in text
        assert metrics.counter_value("widgets_total", session="a") == 3

    def test_summary_percentiles_are_nearest_rank(self):
        metrics = MetricsRegistry(quantiles=(0.5, 0.95, 0.99))
        for value in range(1, 101):
            metrics.observe("latency", float(value))
        quantiles = metrics.percentiles("latency")
        assert quantiles[0.5] == 50.0
        assert quantiles[0.95] == 95.0
        assert quantiles[0.99] == 99.0
        text = metrics.render()
        assert 'latency{quantile="0.5"} 50' in text
        assert "latency_count 100" in text

    def test_label_order_does_not_split_series(self):
        metrics = MetricsRegistry()
        metrics.inc("m", session="s", kind="accept")
        metrics.inc("m", kind="accept", session="s")
        assert metrics.counter_value("m", kind="accept", session="s") == 2


# ------------------------------------------------------------------ pool
class TestBackendPool:
    def test_runs_work_and_tracks_occupancy(self):
        async def scenario():
            pool = BackendPool(max_concurrency=2, max_queue=4)
            result = await pool.run("t", lambda x: x * 2, 21)
            assert result == 42
            assert pool.active == 0 and pool.queue_depth == 0
            await pool.close()

        run(scenario())

    def test_saturation_raises_with_retry_hint(self):
        async def scenario():
            pool = BackendPool(max_concurrency=1, max_queue=0)
            await pool.acquire("hog")
            with pytest.raises(PoolSaturatedError) as excinfo:
                await pool.acquire("victim")
            assert excinfo.value.retry_after_s > 0
            pool.release(0.01)
            # Slot free again: admission succeeds.
            await pool.acquire("victim")
            pool.release(0.01)
            await pool.close()

        run(scenario())

    def test_round_robin_is_fair_across_tenants(self):
        async def scenario():
            pool = BackendPool(max_concurrency=1, max_queue=10)
            await pool.acquire("hold")
            order = []

            async def wait(tenant, tag):
                await pool.acquire(tenant)
                order.append(tag)

            # Tenant A queues three rounds before B queues one: a fair pool
            # must not let A drain its backlog first.
            tasks = []
            for tenant, tag in [("A", "a1"), ("A", "a2"), ("A", "a3"), ("B", "b1")]:
                tasks.append(asyncio.ensure_future(wait(tenant, tag)))
                await asyncio.sleep(0)
            for _ in range(4):
                pool.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == ["a1", "b1", "a2", "a3"]
            for _ in range(4):
                pool.release()
            await pool.close()

        run(scenario())

    def test_no_barging_while_tenants_are_queued(self):
        async def scenario():
            pool = BackendPool(max_concurrency=1, max_queue=10)
            await pool.acquire("first")
            waiter = asyncio.ensure_future(pool.acquire("queued"))
            await asyncio.sleep(0)
            assert pool.queue_depth == 1
            # A free-slot check alone would admit this; fairness must not.
            barger = asyncio.ensure_future(pool.acquire("barger"))
            await asyncio.sleep(0)
            assert pool.queue_depth == 2
            pool.release()
            await waiter  # the queued tenant got the slot, not the barger
            pool.release()
            await barger
            pool.release()
            await pool.close()

        run(scenario())

    def test_close_refuses_new_work_and_drains_backlog(self):
        async def scenario():
            pool = BackendPool(max_concurrency=1, max_queue=4)
            started = asyncio.Event()
            import time as _time

            def slow():
                started.set()
                _time.sleep(0.05)
                return "done"

            task = asyncio.ensure_future(pool.run("t", slow))
            await started.wait()
            closer = asyncio.ensure_future(pool.close(drain=True))
            await asyncio.sleep(0)
            with pytest.raises(PoolClosedError):
                await pool.acquire("late")
            assert await task == "done"
            await closer
            assert pool.closed

        run(scenario())


# --------------------------------------------------------------- manager
class TestSessionManagerConfig:
    def _manager(self, **kwargs):
        return SessionManager(BackendPool(max_concurrency=1, max_queue=1), **kwargs)

    def test_invalid_tenant_config_reuses_runconfig_field_errors(self):
        async def scenario():
            manager = self._manager()
            with pytest.raises(ValueError) as excinfo:
                manager.resolve_config({"backend": "tpu"})
            assert str(excinfo.value).startswith("backend")
            with pytest.raises(ValueError, match="^label"):
                manager.resolve_config({"genome": GENOME, "label": ""})
            with pytest.raises(ValueError, match="n_channel"):
                manager.resolve_config({"genome": GENOME, "n_channel": 2})
            await manager.pool.close()

        run(scenario())

    def test_empty_config_without_template_is_an_error(self):
        async def scenario():
            manager = self._manager()
            with pytest.raises(ValueError, match="^config"):
                manager.resolve_config(None)
            await manager.pool.close()

        run(scenario())

    def test_tenant_config_overlays_the_server_template(self):
        async def scenario():
            manager = self._manager(
                default_config={"prefix_samples": 640, "n_channels": 2}
            )
            config = manager.resolve_config({"genome": GENOME, "n_channels": 6})
            assert config.prefix_samples == 640  # from the template
            assert config.n_channels == 6  # tenant override wins
            await manager.pool.close()

        run(scenario())

    def test_wire_chunk_validation_names_the_problem(self):
        with pytest.raises(ValueError, match="read_id"):
            chunk_from_payload({"signal": [1.0]})
        with pytest.raises(ValueError, match="signal"):
            chunk_from_payload({"read_id": "r", "signal": []})


# ------------------------------------------------------------- http api
@pytest.fixture(scope="module")
def serve_server():
    with BackgroundServer(max_concurrency=2, max_queue=8) as background:
        yield background


@pytest.fixture()
def serve_client(serve_server):
    client = ServeClient(serve_server.host, serve_server.port)
    yield client
    client.close()


class TestHttpEndToEnd:
    def test_session_lifecycle_over_the_wire(self, serve_client):
        session_id = serve_client.create_session(
            service_config(label="flowcell-A")
        )
        assert session_id.startswith("flowcell-A-")
        assert any(
            entry["session_id"] == session_id
            for entry in serve_client.list_sessions()
        )

        actions, meta = serve_client.submit_round(
            session_id, [wire_chunk("r0"), wire_chunk("r1", seed=1, channel=1)]
        )
        assert len(actions) == 2
        assert all(action.is_terminal for action in actions)
        assert meta["round"] == 1

        summary = serve_client.summary(session_id)
        assert summary["rounds"] == 1
        assert summary["label"] == "flowcell-A"

        final = serve_client.close_session(session_id)
        assert final["closed"] is True
        assert final["label"] == "flowcell-A"
        # Closed sessions are gone: the uniform 404 contract.
        with pytest.raises(ServeClientError) as excinfo:
            serve_client.summary(session_id)
        assert excinfo.value.status == 404

    def test_health_and_metrics_account_for_rounds(self, serve_client):
        session_id = serve_client.create_session(service_config(label="metrics"))
        serve_client.submit_round(session_id, [wire_chunk("r0")])
        health = serve_client.health()
        assert health["status"] == "ok"
        assert health["pool"]["max_concurrency"] == 2
        metrics = serve_client.metrics_text()
        assert f'repro_serve_rounds_total{{session="{session_id}"}} 1' in metrics
        assert "repro_serve_round_latency_seconds" in metrics
        assert "repro_serve_pool_queue_depth" in metrics
        serve_client.close_session(session_id)

    def test_metrics_expose_engine_cell_counters(self, serve_client):
        """_record_round folds the engine's cumulative cell counters into
        per-session serve counters: cells computed, cells cut mid-wavefront
        by column pruning, and cells never dispatched thanks to the
        lower-bound lane gate."""
        pruned = serve_client.create_session(
            service_config(label="cells", threshold=-1e6, prune=True)
        )
        gated = serve_client.create_session(
            service_config(
                label="gated", threshold=-1e6, prune=True, lb_cascade=True
            )
        )
        # Streams span several rounds: column pruning needs a post-init round
        # to engage, and the lane gate must keep stale-dead lanes skipped.
        for round_index in range(3):
            last = round_index == 2
            serve_client.submit_round(
                pruned, [wire_chunk("r0", seed=round_index, last=last)]
            )
            serve_client.submit_round(
                gated, [wire_chunk("g0", seed=round_index, last=last)]
            )
        metrics = serve_client.metrics_text()

        def counter(name, session):
            prefix = f'{name}{{session="{session}"}} '
            for line in metrics.splitlines():
                if line.startswith(prefix):
                    return float(line[len(prefix):])
            return 0.0

        # The dead threshold leaves the fresh-lane init as the only computed
        # cells; the rest of the round is column-pruned.
        assert counter("repro_serve_cells_advanced_total", pruned) > 0
        assert counter("repro_serve_cells_pruned_total", pruned) > 0
        # The gated session's lanes never reach a backend at all.
        assert counter("repro_serve_cells_lb_skipped_total", gated) > 0
        assert counter("repro_serve_cells_advanced_total", gated) == 0
        serve_client.close_session(pruned)
        serve_client.close_session(gated)

    def test_error_statuses_name_the_problem(self, serve_client):
        with pytest.raises(ServeClientError) as excinfo:
            serve_client.create_session({"backend": "tpu"})
        assert excinfo.value.status == 400
        assert "backend" in excinfo.value.message

        with pytest.raises(ServeClientError) as excinfo:
            serve_client.summary("nope-0000")
        assert excinfo.value.status == 404
        assert "nope-0000" in excinfo.value.message

        session_id = serve_client.create_session(service_config())
        with pytest.raises(ServeClientError) as excinfo:
            serve_client.submit_round(session_id, [{"signal": [1.0, 2.0]}])
        assert excinfo.value.status == 400
        assert "read_id" in excinfo.value.message
        serve_client.close_session(session_id)

    def test_closed_underlying_session_maps_to_conflict(
        self, serve_server, serve_client
    ):
        """A session whose runtime object died (e.g. a failed round closed
        it) answers 409, not 500 — SessionClosedError is part of the API."""
        session_id = serve_client.create_session(service_config(label="doomed"))
        serve_server.server.manager._sessions[session_id].session.close()
        with pytest.raises(ServeClientError) as excinfo:
            serve_client.submit_round(session_id, [wire_chunk("r0")])
        assert excinfo.value.status == 409
        assert "closed" in excinfo.value.message
        serve_client.close_session(session_id)

    def test_async_client_speaks_the_same_wire_format(self, serve_server):
        async def scenario():
            client = AsyncServeClient(serve_server.host, serve_server.port)
            try:
                session_id = await client.create_session(
                    service_config(label="async")
                )
                actions, meta = await client.submit_round(
                    session_id, [wire_chunk("r0")]
                )
                assert len(actions) == 1 and meta["round"] == 1
                final = await client.close_session(session_id)
                assert final["closed"] is True
            finally:
                await client.close()

        run(scenario())


class TestBackpressure:
    def test_saturated_pool_returns_429_then_recovers(self):
        """Deterministic backpressure: hold the only slot, watch a round get
        429 + Retry-After, release, watch the same round succeed."""

        async def scenario():
            server = ServeServer(max_concurrency=1, max_queue=0)
            created = await server.app.handle(
                "POST",
                "/v1/sessions",
                json.dumps({"config": service_config(label="bp")}).encode(),
            )
            assert created.status == 200
            session_id = created.body["session_id"]
            body = json.dumps({"chunks": [wire_chunk("r0")]}).encode()

            await server.pool.acquire("hog")  # occupy the only slot
            rejected = await server.app.handle(
                "POST", f"/v1/sessions/{session_id}/rounds", body
            )
            assert rejected.status == 429
            assert float(rejected.headers["Retry-After"]) > 0
            assert rejected.body["retry_after_s"] > 0
            assert (
                server.metrics.counter_value(
                    "repro_serve_rejected_total", reason="pool_saturated"
                )
                == 1
            )

            server.pool.release(0.01)
            accepted = await server.app.handle(
                "POST", f"/v1/sessions/{session_id}/rounds", body
            )
            assert accepted.status == 200
            assert len(accepted.body["actions"]) == 1
            await server.app.handle("DELETE", f"/v1/sessions/{session_id}", b"")
            await server.shutdown()

        run(scenario())

    def test_client_retries_through_saturation_without_losing_rounds(self):
        """The sync client's 429 loop: a tiny pool under two competing
        tenants produces retries, yet every round completes."""
        with BackgroundServer(max_concurrency=1, max_queue=1) as background:
            workloads = build_tenant_workloads(2, reads_per_tenant=3)
            baselines = []
            for workload in workloads:
                with open_session(workload.config) as session:
                    baselines.append(replay_flowcell(session.submit, workload))

            async def tenant(workload):
                client = AsyncServeClient(background.host, background.port)
                try:
                    session_id = await client.create_session(workload.config)

                    async def submit(chunks):
                        actions, _ = await client.submit_round(session_id, chunks)
                        return actions

                    from repro.serve.workload import replay_flowcell_async

                    decisions, rounds, _ = await replay_flowcell_async(
                        submit, workload
                    )
                    return decisions, rounds, client.backpressure_retries
                finally:
                    await client.close()

            async def fleet():
                return await asyncio.gather(*(tenant(w) for w in workloads))

            results = run(fleet())
            for (decisions, rounds, _retries), (base_decisions, base_rounds) in zip(
                results, baselines
            ):
                assert decisions == base_decisions
                assert rounds == base_rounds


class TestBitIdentity:
    def test_served_decisions_match_local_open_session(self):
        """Acceptance: a seeded flowcell replayed through the HTTP API
        decides bit-identically to the same replay through open_session."""
        workload = build_tenant_workloads(1, reads_per_tenant=4)[0]
        with open_session(workload.config) as session:
            baseline, baseline_rounds = replay_flowcell(session.submit, workload)

        with BackgroundServer(max_concurrency=2) as background:
            with ServeClient(background.host, background.port) as client:
                session_id = client.create_session(workload.config)
                served, rounds = replay_flowcell(
                    lambda chunks: client.submit_round(session_id, chunks)[0],
                    workload,
                )
                client.close_session(session_id)
        assert served == baseline
        assert rounds == baseline_rounds


class TestGracefulShutdown:
    def test_draining_refuses_new_work_but_health_stays_up(self):
        async def scenario():
            server = ServeServer(max_concurrency=1, max_queue=1)
            server.app.draining = True
            health = await server.app.handle("GET", "/health", b"")
            assert health.body["status"] == "draining"
            metrics = await server.app.handle("GET", "/metrics", b"")
            assert metrics.status == 200
            refused = await server.app.handle("POST", "/v1/sessions", b"{}")
            assert refused.status == 503
            await server.shutdown()

        run(scenario())

    def test_shutdown_closes_sessions_and_pool(self):
        async def scenario():
            server = ServeServer(max_concurrency=1, max_queue=1)
            created = await server.app.handle(
                "POST",
                "/v1/sessions",
                json.dumps({"config": service_config()}).encode(),
            )
            session_id = created.body["session_id"]
            await server.app.handle(
                "POST",
                f"/v1/sessions/{session_id}/rounds",
                json.dumps({"chunks": [wire_chunk("r0")]}).encode(),
            )
            await server.shutdown()
            assert len(server.manager) == 0
            assert server.pool.closed

        run(scenario())

    def test_background_server_drains_on_exit(self):
        with BackgroundServer(max_concurrency=1) as background:
            with ServeClient(background.host, background.port) as client:
                session_id = client.create_session(service_config(label="drain"))
                client.submit_round(session_id, [wire_chunk("r0")])
        # After __exit__ the server is gone: connections are refused.
        with pytest.raises((ConnectionError, ServeClientError, OSError)):
            probe = ServeClient(background.host, background.port, max_retries=0)
            probe._connection = None
            import http.client

            conn = http.client.HTTPConnection(
                background.host, background.port, timeout=2
            )
            conn.request("GET", "/health")
            conn.getresponse()


# -------------------------------------------------------------------- cli
class TestServeCli:
    def test_serve_rejects_invalid_config_template(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        path.write_text(json.dumps({"backend": "tpu"}))
        assert main(["serve", "--config", str(path)]) == 2
        assert "backend" in capsys.readouterr().err

    def test_fastapi_adapter_gates_cleanly_when_absent(self):
        pytest.importorskip  # documented gate: only assert the error path
        try:
            import fastapi  # noqa: F401

            pytest.skip("FastAPI installed; the gate path is not reachable")
        except ImportError:
            pass
        from repro.serve import create_fastapi_app

        with pytest.raises(RuntimeError, match="fastapi"):
            create_fastapi_app()
