"""Tests for the lower-bound lane gate (``lb_cascade``) and the Cython kernel.

The gate contract under test, on every registered backend: with
``prune=True`` and ``lb_cascade=True``, lanes whose cheapest admissible cost
provably exceeds their kill bound skip the backend dispatch entirely, and

* accept/eject decisions (``cost <= prune_bound``) stay bit-identical to the
  brute-force wavefront,
* every cost at or below ``prune_bound + prune_margin`` stays bit-exact,
* costs above the bound may be clamped up to the violated lower bound —
  faithful, since the true cost provably exceeds the bound forever — but can
  never falsely dip to or below it.

The cascade's admissibility is tested directly against the recurrence
(bonus-free configs, where each query sample must add at least its envelope
gap), and the optional Cython build of the native scalar kernel is pinned
bit-identical to the pure-Python kernel whenever the extension is importable.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.batch.engine import BatchSDTWEngine
from repro.batch.native import (
    NativeBackend,
    advance_scalar_kernel,
    cython_kernel_available,
)
from repro.core.config import SDTWConfig
from repro.core.panel import TargetPanel
from repro.core.sdtw import (
    lb_envelopes,
    lb_keogh_bounds,
    lb_kim_bound,
    sdtw_resume,
)
from repro.obs.trace import Tracer
from repro.runtime import RunConfig, open_session
from repro.sequencer.read_until_api import SignalChunk

from test_sdtw_pruning import (
    _PRUNE_REFERENCE,
    PRUNE_BACKENDS,
    _brute_schedule,
    lane_queries,
    prune_settings,
)

BONUS_FREE_CONFIGS = [
    SDTWConfig(
        distance="absolute",
        allow_reference_deletions=False,
        quantize=True,
        match_bonus=0.0,
    ),
    SDTWConfig(
        distance="squared",
        allow_reference_deletions=False,
        quantize=False,
        match_bonus=0.0,
    ),
]


def _gated_engine(reference, config=None, backend="numpy", options=None, **kwargs):
    kwargs.setdefault("prune", True)
    kwargs.setdefault("lb_cascade", True)
    return BatchSDTWEngine(
        reference, config, backend=backend, backend_options=options, **kwargs
    )


class TestLowerBoundAdmissibility:
    @pytest.mark.parametrize("config", BONUS_FREE_CONFIGS)
    def test_bounds_never_exceed_true_added_cost(self, config, rng):
        """Without a match bonus every query sample adds at least its envelope
        gap, so processing a chunk can never grow the row minimum by less
        than LB_Kim or LB_Keogh — fresh and resumed lanes alike."""
        if config.quantize:
            reference = rng.integers(-127, 128, 60)
            draw = lambda n: rng.integers(-127, 128, n)
        else:
            reference = rng.normal(90.0, 12.0, 60)
            draw = lambda n: rng.normal(90.0, 25.0, n)
        lows, highs = lb_envelopes(reference)
        assert lows.shape == highs.shape == (1,)
        for warm_size in (0, 5, 30):
            for chunk_size in (1, 2, 17):
                state = (
                    sdtw_resume(draw(warm_size), reference, config)
                    if warm_size
                    else None
                )
                before = 0.0 if state is None else float(np.min(state.row))
                chunk = draw(chunk_size)
                after = float(
                    np.min(sdtw_resume(chunk, reference, config, state=state).row)
                )
                kim = lb_kim_bound(chunk, float(lows[0]), float(highs[0]), config)
                keogh = lb_keogh_bounds(chunk, lows, highs, config)
                assert kim >= 0.0 and keogh[0] >= 0.0
                assert before + kim <= after + 1e-9, (warm_size, chunk_size)
                assert before + keogh[0] <= after + 1e-9, (warm_size, chunk_size)
                # The cascade tightens rung by rung: per-block envelopes are
                # never wider than the global extrema, and every sample counts.
                assert keogh[0] >= kim

    def test_per_block_envelopes_match_per_target_slices(self, rng):
        values = rng.integers(-127, 128, 90)
        starts = np.array([0, 40, 65])
        lows, highs = lb_envelopes(values, starts)
        bounds = list(zip(starts.tolist(), [*starts.tolist()[1:], values.size]))
        for block, (lo, hi) in enumerate(bounds):
            assert lows[block] == values[lo:hi].min()
            assert highs[block] == values[lo:hi].max()

    def test_empty_chunk_bounds_are_zero(self):
        config = SDTWConfig.hardware()
        empty = np.array([], dtype=np.int64)
        assert lb_kim_bound(empty, -10.0, 10.0, config) == 0.0
        assert np.array_equal(
            lb_keogh_bounds(empty, np.array([-10.0]), np.array([10.0]), config),
            np.zeros(1),
        )


class TestGatedBitIdentity:
    @prune_settings
    @given(queries=lane_queries, data=st.data())
    def test_gated_matches_brute_on_every_backend(self, queries, data):
        """The acceptance property: with the lane gate on (both cascade
        levels), decisions across ragged chunk schedules on every registered
        backend are bit-identical to brute force and every cost at or below
        ``threshold + margin`` is bit-exact."""
        n_rounds = data.draw(st.integers(min_value=1, max_value=3))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        lb_level = data.draw(st.sampled_from([1, 2]))
        rng = np.random.default_rng(seed)
        schedules = []
        for query in queries:
            cuts = np.sort(rng.integers(0, query.size + 1, size=n_rounds - 1))
            bounds = [0, *cuts.tolist(), query.size]
            schedules.append([query[bounds[i] : bounds[i + 1]] for i in range(n_rounds)])

        config = SDTWConfig.hardware()
        brute_rounds = _brute_schedule(schedules, _PRUNE_REFERENCE, config)
        final_costs = sorted(
            state.cost for state in brute_rounds[-1] if state is not None
        )
        threshold = float(
            data.draw(st.sampled_from(final_costs)) + data.draw(st.integers(-5, 5))
        )
        margin = float(data.draw(st.sampled_from([0.0, 40.0])))
        bound = threshold + margin
        lifetime = max(sum(c.size for c in schedule) for schedule in schedules)

        engines = [
            _gated_engine(
                _PRUNE_REFERENCE,
                config,
                backend=name,
                options=options,
                lb_level=lb_level,
                prune_margin=margin,
                prune_lifetime_samples=lifetime,
            )
            for name, options in PRUNE_BACKENDS
        ]
        try:
            for engine in engines:
                engine.prune_bound = threshold
            for round_index in range(n_rounds):
                items = [
                    (lane, schedules[lane][round_index])
                    for lane in range(len(queries))
                ]
                snaps = [engine.step(items) for engine in engines]
                for lane, brute in enumerate(brute_rounds[round_index]):
                    if brute is None:
                        continue
                    for (name, _), snap in zip(PRUNE_BACKENDS, snaps):
                        got = snap[lane]
                        assert (got.cost <= threshold) == (
                            brute.cost <= threshold
                        ), (name, lane, round_index)
                        if brute.cost <= bound:
                            assert got.cost == brute.cost, (name, lane, round_index)
                            assert got.end_position == brute.end_position, (
                                name,
                                lane,
                                round_index,
                            )
                        else:
                            assert got.cost > bound, (name, lane, round_index)
        finally:
            for engine in engines:
                engine.close()

    @pytest.mark.parametrize("backend,options", PRUNE_BACKENDS)
    def test_gated_per_target_costs_on_panel(self, backend, options, kmer_model):
        """Multi-target panels: the gate consults cached per-target minima and
        per-block envelopes, and the per-target cost contract holds while
        off-target lanes are skipped outright."""
        rng = np.random.default_rng(20260808)
        from repro.genomes.sequences import random_genome

        panel = TargetPanel.from_genomes(
            {"a": random_genome(40, seed=5), "b": random_genome(55, seed=6)},
            kmer_model=kmer_model,
        )
        concatenated = panel.values(quantized=True)
        rounds, chunk = 3, 40
        total = rounds * chunk
        chunks_per_lane = []
        for lane in range(6):
            if lane < 2:  # on-target: a slice of the panel buffer plus noise
                start = int(rng.integers(0, max(1, concatenated.size - total)))
                base = np.tile(concatenated, total // concatenated.size + 2)[
                    start : start + total
                ]
                prefix = np.clip(base + rng.integers(-2, 3, total), -127, 127)
            else:
                prefix = rng.integers(-127, 128, total)
            chunks_per_lane.append(
                [prefix[r * chunk : (r + 1) * chunk] for r in range(rounds)]
            )

        config = SDTWConfig.hardware()
        with BatchSDTWEngine(panel, config) as brute_engine:
            for round_index in range(rounds):
                brute_snaps = brute_engine.step(
                    [(lane, chunks_per_lane[lane][round_index]) for lane in range(6)]
                )
        lane_costs = [brute_snaps[lane].cost for lane in range(6)]
        threshold = float((max(lane_costs[:2]) + min(lane_costs[2:])) / 2.0)
        assert max(lane_costs[:2]) < min(lane_costs[2:])
        bound = threshold  # margin 0: the decisions-only guarantee

        with _gated_engine(
            panel,
            config,
            backend=backend,
            options=options,
            prune_lifetime_samples=total,
        ) as engine:
            engine.prune_bound = threshold
            for round_index in range(rounds):
                snaps = engine.step(
                    [(lane, chunks_per_lane[lane][round_index]) for lane in range(6)]
                )
        for lane in range(6):
            brute, got = brute_snaps[lane], snaps[lane]
            assert (got.cost <= threshold) == (brute.cost <= threshold), (backend, lane)
            for target in range(panel.n_targets):
                brute_cost = brute.target_costs[target]
                got_cost = got.target_costs[target]
                if brute_cost <= bound:
                    assert got_cost == brute_cost, (backend, lane, target)
                    assert got.target_ends[target] == brute.target_ends[target]
                else:
                    assert got_cost > bound, (backend, lane, target)
        assert engine.lanes_lb_skipped > 0, f"{backend}: the lane gate never fired"

    def test_dead_threshold_skips_every_dispatch(self, rng):
        """With a bound no alignment can reach, the gate kills every lane in
        round one and stale-dead lanes stay skipped: the backend never runs,
        yet reported costs stay faithfully above the bound."""
        reference = rng.integers(-127, 128, 50)
        rounds, chunk, n_lanes = 3, 20, 4
        threshold = -1e6
        with _gated_engine(
            reference,
            SDTWConfig.hardware(),
            prune_lifetime_samples=rounds * chunk,
        ) as engine:
            engine.prune_bound = threshold
            for round_index in range(rounds):
                snaps = engine.step(
                    [
                        (lane, rng.integers(-127, 128, chunk))
                        for lane in range(n_lanes)
                    ]
                )
        assert engine.cells_advanced == 0
        assert engine.lanes_lb_skipped == n_lanes * rounds
        assert engine.cells_lb_skipped == n_lanes * rounds * chunk * reference.size
        for lane in range(n_lanes):
            assert snaps[lane].cost > threshold


class TestGateCounters:
    def _workload(self, rng, reference, n_lanes=8, rounds=3, chunk=40):
        chunks = []
        for lane in range(n_lanes):
            if lane == 0:  # one on-target lane stays alive throughout
                prefix = np.clip(
                    np.tile(reference, rounds * chunk // reference.size + 2)[
                        : rounds * chunk
                    ]
                    + rng.integers(-2, 3, rounds * chunk),
                    -127,
                    127,
                )
            else:
                prefix = rng.integers(-127, 128, rounds * chunk)
            chunks.append([prefix[r * chunk : (r + 1) * chunk] for r in range(rounds)])
        return chunks

    def test_skips_shrink_as_margin_loosens_and_cells_account(self, rng):
        """Monotonicity: a looser (larger) prune_margin can only skip fewer
        lanes, and advanced + pruned + lb_skipped always accounts for every
        nominal cell."""
        reference = rng.integers(-127, 128, 60)
        config = SDTWConfig.hardware()
        rounds, chunk, n_lanes = 3, 40, 8
        chunks = self._workload(rng, reference, n_lanes, rounds, chunk)
        nominal = n_lanes * rounds * chunk * reference.size

        skipped_by_margin = []
        for margin in (0.0, 500.0, 2000.0, 8000.0):
            with _gated_engine(
                reference,
                config,
                prune_margin=margin,
                prune_lifetime_samples=rounds * chunk,
            ) as engine:
                engine.prune_bound = 0.0
                for round_index in range(rounds):
                    engine.step(
                        [(lane, chunks[lane][round_index]) for lane in range(n_lanes)]
                    )
                assert (
                    engine.cells_advanced
                    + engine.cells_pruned
                    + engine.cells_lb_skipped
                    == nominal
                )
                skipped_by_margin.append(engine.lanes_lb_skipped)
        assert skipped_by_margin[0] > 0
        for tighter, looser in zip(skipped_by_margin, skipped_by_margin[1:]):
            assert tighter >= looser, skipped_by_margin

    def test_backend_lb_span_carries_round_deltas(self, rng):
        reference = rng.integers(-127, 128, 40)
        tracer = Tracer(track="test")
        with _gated_engine(
            reference,
            SDTWConfig.hardware(),
            prune_lifetime_samples=60,
            tracer=tracer,
        ) as engine:
            engine.prune_bound = -1e6
            for round_index in range(3):
                engine.step([(0, rng.integers(-127, 128, 20))])
        spans = [record for record in tracer.records() if record.name == "backend.lb"]
        assert len(spans) == 3
        assert sum(span.args["lanes_skipped"] for span in spans) == engine.lanes_lb_skipped
        assert sum(span.args["cells_skipped"] for span in spans) == engine.cells_lb_skipped
        assert all(span.args["level"] == 2 for span in spans)

    def test_session_summary_reports_gate_counters(self, reference_squiggle):
        """Satellite contract: ``session.summary()`` carries the gate totals
        and the flight recorder sees the ``backend.lb`` span."""
        rng = np.random.default_rng(20260809)
        config = RunConfig(
            reference=reference_squiggle,
            threshold=-1e6,  # far below any cost: the gate kills every lane
            prefix_samples=800,
            chunk_samples=400,
            n_channels=4,
            trace=True,
            prune=True,
            lb_cascade=True,
        )
        with open_session(config) as session:
            for lane in range(4):
                signal = rng.normal(90.0, 12.0, size=800)
                for round_index in range(2):
                    session.submit(
                        [
                            SignalChunk(
                                channel=lane,
                                read_id=f"r{lane}",
                                read_number=lane,
                                chunk_start_sample=round_index * 400,
                                signal_pa=signal[
                                    round_index * 400 : (round_index + 1) * 400
                                ],
                                is_last=round_index == 1,
                            )
                        ]
                    )
            summary = session.summary()
        assert summary["lanes_lb_skipped"] > 0
        assert summary["cells_lb_skipped"] > 0
        assert "backend.lb" in summary["phase_totals"]


class TestNativeSpans:
    def test_native_advance_emits_phase_spans(self, rng):
        """Satellite contract: the native backend's scalar advance is traced
        phase by phase, and the engine's gate span joins the same track."""
        reference = rng.integers(-127, 128, 40)
        tracer = Tracer(track="test")
        with _gated_engine(
            reference,
            SDTWConfig.hardware(),
            backend="native",
            options={"jit": False},
            prune_lifetime_samples=60,
            tracer=tracer,
        ) as engine:
            engine.prune_bound = 1e9  # generous: every lane dispatches
            for round_index in range(2):
                engine.step([(0, rng.integers(-127, 128, 20))])
        names = {record.name for record in tracer.records()}
        assert {
            "backend.advance",
            "backend.gather",
            "backend.wavefront",
            "backend.scatter",
            "backend.reduce",
            "backend.lb",
            "backend.prune",
        } <= names
        assert engine.lanes_lb_skipped == 0


class TestValidation:
    def test_engine_validation(self, rng):
        reference = rng.integers(-127, 128, 30)
        config = BONUS_FREE_CONFIGS[0]
        with pytest.raises(ValueError, match="lb_cascade"):
            BatchSDTWEngine(reference, config, lb_cascade=True)
        with pytest.raises(ValueError, match="lb_level"):
            BatchSDTWEngine(reference, config, prune=True, lb_cascade=True, lb_level=3)

    def test_run_config_validation_and_round_trip(self):
        genome = "ACGT" * 30
        with pytest.raises(ValueError, match="lb_cascade"):
            RunConfig(genome=genome, lb_cascade=True)
        with pytest.raises(ValueError, match="lb_level"):
            RunConfig(genome=genome, prune=True, lb_cascade=True, lb_level=3)
        config = RunConfig(genome=genome, prune=True, lb_cascade=True, lb_level=1)
        restored = RunConfig.from_dict(config.to_dict())
        assert restored.lb_cascade is True
        assert restored.lb_level == 1

    def test_native_kernel_option_validation(self, rng):
        reference = rng.integers(-127, 128, 30)
        with pytest.raises(ValueError, match="kernel"):
            NativeBackend(reference, SDTWConfig.hardware(), kernel="fortran")
        if not cython_kernel_available():
            with pytest.raises(RuntimeError, match="Cython"):
                NativeBackend(reference, SDTWConfig.hardware(), kernel="cython")


def _kernel_args(rng, dtype, n_lanes=3, n_columns=40):
    big = 2**29 if dtype == np.int32 else 2**40
    rows = rng.integers(0, 400, (n_lanes, n_columns)).astype(dtype)
    runs = rng.integers(1, 4, (n_lanes, n_columns)).astype(dtype)
    lengths = [0, 7, 12]
    query_flat = rng.integers(-127, 128, sum(lengths)).astype(dtype)
    query_offsets = np.cumsum([0, *lengths]).astype(np.int64)
    reference = rng.integers(-127, 128, n_columns).astype(dtype)
    kill = np.array([np.inf, 900.0, 250.0])
    fresh = np.array([False, True, False])
    block_lo = np.array([0, 25], dtype=np.int64)
    block_hi = np.array([25, n_columns], dtype=np.int64)
    return [rows, runs, query_flat, query_offsets, reference, 2, 3, kill, fresh,
            block_lo, block_hi, big]


@pytest.mark.skipif(
    not cython_kernel_available(), reason="Cython kernel extension not built"
)
class TestCythonKernel:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_compiled_kernel_matches_pure_python(self, rng, dtype):
        """Both working dtypes: the AOT extension mutates identical state and
        reports identical cell counts (mid-round breaks, fresh init, per-block
        spans and all)."""
        from repro.batch import _native_kernel

        args = _kernel_args(rng, dtype)
        pure = [np.copy(a) if isinstance(a, np.ndarray) else a for a in args]
        compiled = [np.copy(a) if isinstance(a, np.ndarray) else a for a in args]
        pure_cells = advance_scalar_kernel(*pure)
        compiled_cells = _native_kernel.advance_scalar_kernel(*compiled)
        assert pure_cells == compiled_cells
        assert np.array_equal(pure[0], compiled[0])  # rows
        assert np.array_equal(pure[1], compiled[1])  # runs

    def test_engine_with_cython_kernel_matches_python_kernel(self, rng):
        reference = rng.integers(-127, 128, 50)
        config = SDTWConfig.hardware()
        queries = [rng.integers(-127, 128, n) for n in (9, 23, 40)]
        results = {}
        for kernel_options in ({"kernel": "cython"}, {"jit": False}):
            with BatchSDTWEngine(
                reference, config, backend="native", backend_options=kernel_options
            ) as engine:
                for start in range(0, 40, 13):
                    engine.step(
                        [
                            (lane, query[start : start + 13])
                            for lane, query in enumerate(queries)
                        ]
                    )
                results[tuple(kernel_options)] = [
                    np.copy(engine.state_of(lane).row) for lane in range(len(queries))
                ]
        cython_rows, python_rows = results.values()
        for lane in range(len(queries)):
            assert np.array_equal(cython_rows[lane], python_rows[lane])
