"""Tests for repro.tune: probes, the persistent cache, and backend="auto".

The contract under test: ``RunConfig(backend="auto")`` resolves to a
concrete *installed* backend via calibration probes on first use and via
the tuning cache on repeat use; probe wall clock is bounded by
``tune_budget_s``; decisions on the seeded 8-channel flowcell are
bit-identical to running the chosen backend pinned; and the cache layer is
corruption-tolerant (bad files load as empty, never raise) with keys stable
across processes.
"""

import asyncio
import json
import os
import subprocess
import sys
import time

import pytest

from repro.batch.classifier import BatchSquiggleClassifier
from repro.core.config import SDTWConfig
from repro.runtime import RunConfig, open_session
from repro.sequencer.reads import ReadGenerator, ReadLengthModel
from repro.serve.manager import SessionManager
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import BackendPool
from repro.tune import (
    SCHEMA_VERSION,
    TunedDecision,
    TuningCache,
    WorkloadShape,
    cache_key,
    generate_candidates,
    host_fingerprint,
    installed_backends,
    resolve_auto,
    size_bucket,
    tune_config,
)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Every test gets its own tuning cache file; none touches ~/.cache."""
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune.json"))


def small_config(**overrides):
    base = dict(
        genome="ACGT" * 300,
        threshold=0.0,
        prefix_samples=400,
        chunk_samples=200,
        n_channels=4,
    )
    base.update(overrides)
    return RunConfig(**base)


# ------------------------------------------------------------ cache keying
class TestCacheKey:
    def test_size_bucket_rounds_up_to_powers_of_two(self):
        assert [size_bucket(v) for v in (0, 1, 2, 3, 4, 5, 1000, 1024, 1025)] == [
            0,
            1,
            2,
            4,
            4,
            8,
            1024,
            1024,
            2048,
        ]

    def test_key_is_stable_within_a_process(self):
        shape = WorkloadShape(reference_columns=4790, n_channels=8, chunk_samples=400)
        assert cache_key(shape) == cache_key(shape)

    def test_key_is_stable_across_processes(self):
        """The key must be derived, never randomized: a second process
        computing the key for the same shape must hit the first's entry."""
        shape = WorkloadShape(reference_columns=4790, n_channels=8, chunk_samples=400)
        script = (
            "from repro.tune import WorkloadShape, cache_key;"
            "print(cache_key(WorkloadShape(reference_columns=4790,"
            " n_channels=8, chunk_samples=400)), end='')"
        )
        other = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        assert other.stdout == cache_key(shape)

    def test_key_separates_shapes_but_buckets_nearby_sizes(self):
        near = WorkloadShape(reference_columns=4790, n_channels=8, chunk_samples=400)
        same_bucket = WorkloadShape(
            reference_columns=4801, n_channels=8, chunk_samples=400
        )
        far = WorkloadShape(reference_columns=190000, n_channels=8, chunk_samples=400)
        assert cache_key(near) == cache_key(same_bucket)
        assert cache_key(near) != cache_key(far)
        assert cache_key(near) != cache_key(
            WorkloadShape(reference_columns=4790, n_channels=512, chunk_samples=400)
        )

    def test_key_carries_the_dtype_path(self):
        int_shape = WorkloadShape(reference_columns=1000)
        float_shape = WorkloadShape(
            reference_columns=1000, hardware=SDTWConfig.vanilla()
        )
        assert int_shape.dtype_path == "int32"
        assert float_shape.dtype_path == "float64"
        assert cache_key(int_shape) != cache_key(float_shape)

    def test_host_fingerprint_fields(self):
        fingerprint = host_fingerprint()
        assert set(fingerprint) == {"cpu_count", "platform", "python", "numpy", "blas"}
        assert fingerprint["cpu_count"] >= 1


# ------------------------------------------------------- cache file hygiene
class TestTuningCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "tune.json"
        cache = TuningCache(path)
        decision = TunedDecision(backend="numpy", prune=True, cell_rate=1e8)
        cache.put("key", decision.as_dict())
        assert cache.save()
        reloaded = TuningCache(path)
        assert "key" in reloaded
        entry = reloaded.get("key")
        assert TunedDecision.from_dict(entry).backend == "numpy"
        assert TunedDecision.from_dict(entry).prune is True

    def test_missing_file_loads_empty(self, tmp_path):
        cache = TuningCache(tmp_path / "absent.json")
        assert len(cache) == 0

    @pytest.mark.parametrize(
        "payload",
        [
            "{not json",
            '"a bare string"',
            "[1, 2, 3]",
            json.dumps({"schema": SCHEMA_VERSION + 1, "entries": {"k": {"backend": "numpy"}}}),
            json.dumps({"entries": {"k": {"backend": "numpy"}}}),
            json.dumps({"schema": SCHEMA_VERSION, "entries": "not-a-mapping"}),
        ],
    )
    def test_corrupted_or_stale_files_load_empty_without_raising(
        self, tmp_path, payload
    ):
        path = tmp_path / "tune.json"
        path.write_text(payload)
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_unwritable_path_is_nonfatal(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        cache = TuningCache(blocker / "tune.json")
        cache.put("k", {"backend": "numpy"})
        assert cache.save() is False  # degraded, not raised

    def test_clear_removes_the_file(self, tmp_path):
        path = tmp_path / "tune.json"
        cache = TuningCache(path)
        cache.put("k", {"backend": "numpy"})
        cache.save()
        assert path.exists()
        cache.clear()
        assert not path.exists()
        assert len(cache) == 0

    def test_decision_from_dict_ignores_unknown_fields(self):
        decision = TunedDecision.from_dict(
            {"backend": "numpy", "future_field": 1, "cell_rate": 2.0}
        )
        assert decision.backend == "numpy"
        assert decision.cell_rate == 2.0


# --------------------------------------------------- RunConfig integration
class TestRunConfigTuneFields:
    def test_auto_backend_validates(self):
        assert RunConfig(genome="ACGT" * 100, backend="auto").backend == "auto"
        assert RunConfig(genome="ACGT" * 100, backend="AUTO").backend == "auto"

    def test_auto_rejects_manual_sizing(self):
        with pytest.raises(ValueError, match="workers"):
            RunConfig(backend="auto", workers=2)
        with pytest.raises(ValueError, match="workers"):
            RunConfig(backend="auto", tile_columns=64)

    def test_tune_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="tune_budget_s"):
            RunConfig(tune_budget_s=0.0)
        with pytest.raises(ValueError, match="tune_budget_s"):
            RunConfig(tune_budget_s=-1.0)

    def test_dict_roundtrip_of_tune_fields(self):
        config = RunConfig(
            genome="ACGT" * 100,
            backend="auto",
            tune={"ignore_cache": True, "margin": 2.0},
            tune_budget_s=0.5,
        )
        data = config.to_dict()
        assert data["backend"] == "auto"
        assert data["tune"] == {"ignore_cache": True, "margin": 2.0}
        assert data["tune_budget_s"] == 0.5
        restored = RunConfig.from_dict(json.loads(json.dumps(data)))
        assert restored == config

    def test_defaults_roundtrip(self):
        config = RunConfig(genome="ACGT" * 100)
        restored = RunConfig.from_dict(config.to_dict())
        assert restored.tune is None
        assert restored.tune_budget_s == 2.0


# ------------------------------------------------------------ shape + search
class TestWorkloadShape:
    def test_estimate_matches_built_panel_bucket(self):
        """The genome-length estimate and the built panel's exact column
        count must land on the same cache key (power-of-two bucketing)."""
        config = small_config()
        estimated = WorkloadShape.from_config(config)
        panel = config.resolve_panel()
        exact = WorkloadShape.from_config(config, panel=panel)
        assert exact.reference_columns == panel.n_positions
        assert cache_key(estimated) == cache_key(exact)

    def test_default_shape_when_no_target_named(self):
        shape = WorkloadShape.from_config(RunConfig(prefix_samples=500))
        assert shape.reference_columns > 0
        assert shape.chunk_samples == 500

    def test_candidates_only_name_installed_backends(self):
        installed = set(installed_backends())
        assert "numpy" in installed
        shape = WorkloadShape(reference_columns=4790, n_channels=8, chunk_samples=400)
        candidates = generate_candidates(shape)
        assert candidates, "candidate list must never be empty"
        assert candidates[0].backend == "numpy"
        assert {c.backend for c in candidates} <= installed


# ------------------------------------------------------------- tune_config
class TestTuneConfig:
    def test_probes_then_caches(self):
        config = small_config(backend="auto")
        first = tune_config(config)
        assert first.decision.cache_hit is False
        assert first.decision.n_probes >= 1
        assert first.decision.backend in installed_backends()
        assert first.results, "a fresh resolution must report its probe table"
        second = tune_config(config)
        assert second.decision.cache_hit is True
        assert second.decision.backend == first.decision.backend
        assert second.results == ()

    def test_ignore_cache_reprobes(self):
        config = small_config(backend="auto")
        tune_config(config)
        again = tune_config(config.with_(tune={"ignore_cache": True}))
        assert again.decision.cache_hit is False
        assert again.decision.n_probes >= 1

    def test_budget_bounds_probe_count(self):
        """With a vanishingly small budget exactly one probe runs (the
        first candidate always completes so resolution never comes back
        empty), and the sweep stops immediately after."""
        config = small_config(backend="auto", tune_budget_s=1e-6)
        outcome = tune_config(config)
        assert outcome.decision.n_probes == 1
        assert outcome.decision.backend == "numpy"

    def test_budget_bounds_wall_clock(self):
        config = small_config(backend="auto", tune_budget_s=0.2)
        start = time.perf_counter()
        outcome = tune_config(config)
        elapsed = time.perf_counter() - start
        # Budget + the one always-completed probe + workload synthesis; the
        # generous factor absorbs slow CI machines, the assertion still
        # catches an unbounded sweep.
        assert elapsed < 10.0
        assert outcome.decision.probed_s > 0.0

    def test_decision_applies_to_a_valid_config(self):
        config = small_config(backend="auto")
        resolved, decision = resolve_auto(config)
        assert resolved.backend == decision.backend
        assert resolved.backend != "auto"
        assert resolved.backend in installed_backends()

    def test_resolve_auto_is_identity_for_pinned_configs(self):
        config = small_config(backend="numpy")
        resolved, decision = resolve_auto(config)
        assert resolved is config
        assert decision.backend == "numpy"

    def test_probe_table_rows(self):
        outcome = tune_config(small_config(backend="auto"))
        rows = outcome.table()
        assert rows
        assert {"candidate", "seconds", "cells_per_s"} <= set(rows[0])


# ---------------------------------------------------- session bit-identity
@pytest.fixture(scope="module")
def tune_flowcell_reads(mixture, kmer_model):
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(
            mean_bases=300, sigma=0.15, min_bases=220, max_bases=500
        ),
        seed=20260729,
    )
    reads = [generator.generate_one(source="virus") for _ in range(6)]
    reads += [generator.generate_one(source="host") for _ in range(18)]
    return reads


@pytest.fixture(scope="module")
def tune_threshold(reference_squiggle, target_signals, nontarget_signals):
    classifier = BatchSquiggleClassifier(reference_squiggle, prefix_samples=800)
    return classifier.calibrate(target_signals, nontarget_signals, chunk_samples=400)


def _decision_fields(result):
    return {
        outcome.read.read_id: (
            outcome.ejected,
            outcome.decision.cost if outcome.decision else None,
            outcome.decision.samples_used if outcome.decision else None,
            outcome.decision.end_position if outcome.decision else None,
            outcome.decision.target if outcome.decision else None,
        )
        for outcome in result.session.outcomes
    }


class TestSessionAutoBackend:
    def _config(self, reference, threshold, **overrides):
        base = dict(
            reference=reference,
            threshold=threshold,
            prefix_samples=800,
            chunk_samples=400,
            n_channels=8,
        )
        base.update(overrides)
        return RunConfig(**base)

    def test_auto_decisions_bit_identical_to_pinned(
        self,
        reference_squiggle,
        target_genome,
        tune_threshold,
        tune_flowcell_reads,
    ):
        """Acceptance: the seeded 8-channel flowcell decides identically
        with backend='auto' (whatever point the tuner picks) and with the
        chosen backend pinned by hand."""
        auto_config = self._config(
            reference_squiggle, tune_threshold, backend="auto"
        )
        with open_session(auto_config) as session:
            auto_result = session.run(
                tune_flowcell_reads, target_genome=target_genome
            )
            tuned = session.tuned
            assert tuned is not None
            summary = session.summary()
        assert summary["backend"] == tuned.backend
        assert summary["tuned"]["backend"] == tuned.backend
        assert summary["tuned"]["cache_hit"] is False

        pinned_config = self._config(
            reference_squiggle,
            tune_threshold,
            backend=tuned.backend,
            workers=tuned.workers,
            tile_columns=tuned.tile_columns,
            prune=tuned.prune,
            lb_cascade=tuned.lb_cascade,
        )
        with open_session(pinned_config) as session:
            pinned_result = session.run(
                tune_flowcell_reads, target_genome=target_genome
            )
        assert _decision_fields(auto_result) == _decision_fields(pinned_result)

        # And identical to plain brute-force numpy: tuning may only change
        # speed, never a decision.
        numpy_config = self._config(reference_squiggle, tune_threshold)
        with open_session(numpy_config) as session:
            numpy_result = session.run(
                tune_flowcell_reads, target_genome=target_genome
            )
        assert _decision_fields(auto_result) == _decision_fields(numpy_result)

    def test_second_session_hits_the_cache(
        self, reference_squiggle, tune_threshold
    ):
        config = self._config(reference_squiggle, tune_threshold, backend="auto")
        with open_session(config) as session:
            session.classifier  # spawn -> resolve
            first = session.tuned
        with open_session(config) as session:
            session.classifier
            second = session.tuned
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert second.backend == first.backend

    def test_tune_probe_spans_traced(self, reference_squiggle, tune_threshold):
        config = self._config(
            reference_squiggle, tune_threshold, backend="auto", trace=True
        )
        with open_session(config) as session:
            session.classifier
            phases = session.summary().get("phase_totals", {})
        assert "tune.probe" in phases
        assert phases["tune.probe"]["count"] >= 1

    def test_backend_name_before_and_after_resolution(
        self, reference_squiggle, tune_threshold
    ):
        config = self._config(reference_squiggle, tune_threshold, backend="auto")
        with open_session(config) as session:
            assert session.backend_name == "auto"
            session.classifier
            assert session.backend_name != "auto"


# ------------------------------------------------------------ serve memoizing
class TestServeAutoBackend:
    def test_template_resolved_once_and_gauge_exported(self):
        async def scenario():
            metrics = MetricsRegistry()
            manager = SessionManager(
                BackendPool(max_concurrency=1, max_queue=1),
                metrics=metrics,
                default_config={
                    "genome": "ACGT" * 300,
                    "threshold": 0.0,
                    "prefix_samples": 400,
                    "chunk_samples": 200,
                    "backend": "auto",
                },
            )
            try:
                first = manager.create()
                second = manager.create()
                assert first["backend"] != "auto"
                assert second["backend"] == first["backend"]
                assert first["tuned"]["backend"] == first["backend"]
                # The second tenant replays the per-template memo: no
                # probes ran for it.
                assert second["tuned"]["cache_hit"] is True
                text = metrics.render()
                assert "repro_serve_tuned_backend" in text
                assert f'backend="{first["backend"]}"' in text
            finally:
                await manager.drain()
                await manager.pool.close()

        asyncio.run(scenario())
