"""Tests for the unified streaming classifier API (repro.pipeline.api) and
the Read Until simulator edge cases the chunk-driven pipeline relies on."""

import numpy as np
import pytest

from repro.core.filter import FilterDecision, MultiStageSquiggleFilter
from repro.core.thresholds import choose_threshold
from repro.pipeline.api import (
    ACCEPT,
    EJECT,
    WAIT,
    Action,
    MultiStageAdapter,
    SingleStageAdapter,
    as_streaming_classifier,
    available_classifiers,
    build_pipeline,
    create_classifier,
    register_classifier,
)
from repro.pipeline.read_until import ReadUntilPipeline
from repro.sequencer.read_until_api import ReadUntilSimulator
from repro.sequencer.reads import ReadGenerator, ReadLengthModel
from repro.sequencer.run import MinIONParameters

NO_CAPTURE = MinIONParameters(capture_time_s=0.0)


@pytest.fixture(scope="module")
def streaming_reads(mixture, kmer_model):
    """Reads long enough that every stage boundary falls inside the signal."""
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=700, sigma=0.1, min_bases=500, max_bases=900),
        seed=20211025,
    )
    reads = [generator.generate_one(source="virus") for _ in range(5)]
    reads += [generator.generate_one(source="host") for _ in range(20)]
    return reads


# ------------------------------------------------------------------------ Action
class TestAction:
    def test_kinds_and_terminality(self):
        assert Action.wait().kind == WAIT
        assert not Action.wait().is_terminal
        assert Action(kind=ACCEPT).is_terminal
        assert Action(kind=EJECT).is_terminal

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Action(kind="explode")

    def test_round_trip_with_filter_decision(self):
        decision = FilterDecision(
            accept=False,
            cost=123.0,
            per_sample_cost=123.0 / 400,
            samples_used=400,
            threshold=200.0,
            end_position=17,
            stage=1,
        )
        action = Action.from_decision(decision)
        assert action.kind == EJECT
        assert action.stage == 1
        assert action.samples_used == 400
        assert action.as_filter_decision() == decision

    def test_wait_carries_no_decision(self):
        with pytest.raises(ValueError):
            Action.wait().as_filter_decision()

    def test_simulator_verbs(self):
        assert Action(kind=ACCEPT).to_simulator_action() == "stop_receiving"
        assert Action(kind=EJECT).to_simulator_action() == "unblock"
        assert Action.wait().to_simulator_action() == "wait"


# ---------------------------------------------------------------------- adapters
class TestAdapters:
    def test_single_stage_waits_then_decides(self, calibrated_filter, streaming_reads):
        adapter = SingleStageAdapter(calibrated_filter, prefix_samples=800)
        read = streaming_reads[0]
        simulator = ReadUntilSimulator(
            [read], parameters=NO_CAPTURE, chunk_samples=400, n_channels=1
        )
        adapter.begin_read(read.read_id)
        first = adapter.on_chunk(simulator.get_read_chunks()[0])
        assert first.kind == WAIT
        second = adapter.on_chunk(simulator.get_read_chunks()[0])
        assert second.is_terminal
        assert second.samples_used == 800

    def test_adapter_matches_whole_prefix_classification(
        self, calibrated_filter, streaming_reads
    ):
        adapter = SingleStageAdapter(calibrated_filter, prefix_samples=800)
        for read in streaming_reads[:6]:
            expected = calibrated_filter.classify(read.signal_pa, prefix_samples=800)
            simulator = ReadUntilSimulator(
                [read], parameters=NO_CAPTURE, chunk_samples=400, n_channels=1
            )
            adapter.begin_read(read.read_id)
            action = Action.wait()
            while not action.is_terminal:
                action = adapter.on_chunk(simulator.get_read_chunks()[0])
            assert (action.kind == ACCEPT) == expected.accept
            assert action.cost == expected.cost

    def test_structural_dispatch(self, calibrated_filter):
        streaming = as_streaming_classifier(calibrated_filter, prefix_samples=800)
        assert isinstance(streaming, SingleStageAdapter)
        # An object already speaking the protocol passes through untouched.
        assert as_streaming_classifier(streaming) is streaming

    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            as_streaming_classifier(object())


# --------------------------------------------------------- multistage streaming
class TestMultiStageStreaming:
    @pytest.fixture(scope="class")
    def multistage(self, reference_squiggle, target_signals, nontarget_signals):
        return MultiStageSquiggleFilter.calibrated(
            reference_squiggle,
            target_signals,
            nontarget_signals,
            prefix_lengths=(400, 800),
        )

    def test_dispatches_to_multistage_adapter(self, multistage):
        assert isinstance(as_streaming_classifier(multistage), MultiStageAdapter)

    def test_ejects_on_earlier_chunk_than_final_prefix(
        self, multistage, target_genome, streaming_reads
    ):
        """The acceptance check: streamed stage 0 fires on the first 400-sample
        chunk, so some non-target reads are ejected before the final stage's
        800-sample prefix ever arrives."""
        pipeline = ReadUntilPipeline(
            multistage, target_genome, assemble=False, chunk_samples=400
        )
        result = pipeline.run(streaming_reads)
        assert result.recall >= 0.8
        ejected = [o.decision for o in result.session.outcomes if o.ejected]
        assert ejected
        early = [d for d in ejected if d.stage == 0]
        assert early, "no read was ejected by the early stage"
        final_prefix = multistage.stages[-1].prefix_samples
        assert all(d.samples_used <= 400 < final_prefix for d in early)
        # And the pore stopped streaming right there: the ejected reads'
        # sequenced samples stay well short of the final prefix.
        for outcome in result.session.outcomes:
            if outcome.ejected and outcome.decision.stage == 0:
                assert outcome.sequenced_samples < final_prefix

    def test_stage_accounting_matches_batch_classify(self, multistage, streaming_reads):
        adapter = MultiStageAdapter(multistage)
        for read in streaming_reads[:6]:
            expected = multistage.classify(read.signal_pa)
            simulator = ReadUntilSimulator(
                [read], parameters=NO_CAPTURE, chunk_samples=400, n_channels=1
            )
            adapter.begin_read(read.read_id)
            action = Action.wait()
            while not action.is_terminal:
                action = adapter.on_chunk(simulator.get_read_chunks()[0])
            assert action.stage == expected.stage
            assert (action.kind == ACCEPT) == expected.accept


# ---------------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_names(self):
        assert {"squigglefilter", "multistage", "basecall_align"} <= set(available_classifiers())

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_classifier("does-not-exist")

    def test_duplicate_registration_rejected(self):
        @register_classifier("only-once-test")
        def factory(**kwargs):  # pragma: no cover - never called
            return None

        with pytest.raises(ValueError):
            register_classifier("only-once-test")(factory)

    def test_create_squigglefilter_from_genome(self, target_genome, kmer_model):
        classifier = create_classifier(
            "squigglefilter", genome=target_genome, kmer_model=kmer_model, prefix_samples=800
        )
        assert classifier.prefix_samples == 800

    def test_create_multistage_from_pairs(self, reference_squiggle):
        classifier = create_classifier(
            "multistage", reference=reference_squiggle, stages=[(400, 1e9), (800, 5e8)]
        )
        assert classifier.prefix_lengths == [400, 800]


# ----------------------------------------------------------------- build_pipeline
class TestBuildPipeline:
    def _threshold(self, helper, signals_a, signals_b, prefix, objective="f1"):
        return choose_threshold(
            [helper.cost(signal, prefix) for signal in signals_a],
            [helper.cost(signal, prefix) for signal in signals_b],
            objective=objective,
        )

    def test_all_three_classifiers_by_name(
        self,
        calibrated_filter,
        reference_squiggle,
        target_genome,
        target_signals,
        nontarget_signals,
        streaming_reads,
    ):
        threshold_800 = self._threshold(calibrated_filter, target_signals, nontarget_signals, 800)
        threshold_400 = self._threshold(
            calibrated_filter, target_signals, nontarget_signals, 400, objective="recall"
        )
        specs = {
            "squigglefilter": {
                "classifier": {
                    "name": "squigglefilter",
                    "reference": reference_squiggle,
                    "threshold": threshold_800,
                    "prefix_samples": 800,
                },
                "target_genome": target_genome,
                "prefix_samples": 800,
                "assemble": False,
            },
            "multistage": {
                "classifier": {
                    "name": "multistage",
                    "reference": reference_squiggle,
                    "stages": [(400, threshold_400), (800, threshold_800)],
                },
                "target_genome": target_genome,
                "assemble": False,
            },
            "basecall_align": {
                "classifier": {
                    "name": "basecall_align",
                    "params": {"prefix_samples": 1500, "seed": 5},
                },
                "target_genome": target_genome,
                "prefix_samples": 1500,
                "assemble": False,
            },
        }
        for name, spec in specs.items():
            pipeline = build_pipeline(spec)
            result = pipeline.run(streaming_reads)
            assert result.session.n_reads == len(streaming_reads), name
            assert result.recall >= 0.6, name
            assert result.streaming["reads_finished"] >= 1, name

    def test_parameters_and_assembler_from_mappings(self, target_genome, reference_squiggle):
        pipeline = build_pipeline(
            {
                "classifier": {
                    "name": "squigglefilter",
                    "reference": reference_squiggle,
                    "threshold": 1e9,
                    "prefix_samples": 400,
                },
                "target_genome": target_genome,
                "parameters": {"capture_time_s": 0.0},
                "assembler": {"seed": 3},
                "prefix_samples": 400,
            }
        )
        assert pipeline.parameters.capture_time_s == 0.0
        assert pipeline.assembler is not None

    def test_missing_keys_rejected(self):
        with pytest.raises(KeyError):
            build_pipeline({"target_genome": "ACGT"})


# ------------------------------------------------------ pipeline robustness
class TestPipelineRobustness:
    def test_short_reads_still_classified(self, calibrated_filter, target_genome, read_generator):
        """A read shorter than the decision prefix is classified on its final
        chunk with the signal that exists (whole-prefix classify() parity),
        not silently kept undecided."""
        reads = [read_generator.generate_one(source="virus") for _ in range(4)]
        reads += [read_generator.generate_one(source="host") for _ in range(8)]
        prefix = max(read.n_samples for read in reads) + 1000
        pipeline = ReadUntilPipeline(
            calibrated_filter, target_genome, prefix_samples=prefix, assemble=False
        )
        result = pipeline.run(reads)
        assert result.session.n_reads == len(reads)
        decisions = [outcome.decision for outcome in result.session.outcomes]
        assert all(decision is not None for decision in decisions)
        assert result.recall >= 0.75
        assert result.session.n_ejected >= 1

    def test_tiny_chunks_drain_every_read(self, calibrated_filter, target_genome, streaming_reads):
        """The iteration budget must scale with chunk geometry: tiny chunks
        mean many capture-dead-time polls per read, which once silently
        truncated the session."""
        pipeline = ReadUntilPipeline(
            calibrated_filter,
            target_genome,
            prefix_samples=800,
            chunk_samples=50,
            assemble=False,
        )
        result = pipeline.run(streaming_reads)
        assert result.session.n_reads == len(streaming_reads)


# ------------------------------------------------------- simulator edge cases
class TestSimulatorEdgeCases:
    def test_stale_unblock_after_read_finished(self, streaming_reads):
        read = streaming_reads[0]
        simulator = ReadUntilSimulator(
            [read], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1
        )
        chunk = simulator.get_read_chunks()[0]
        simulator.stop_receiving(chunk.channel, chunk.read_id)
        while not simulator.finished:
            simulator.get_read_chunks()
        assert len(simulator.action_log) == 1
        # The client learns about the decision late and unblocks anyway; the
        # read is gone, so the command must be a no-op.
        simulator.unblock(chunk.channel, chunk.read_id)
        assert len(simulator.action_log) == 1
        assert simulator.action_log[0].action == "sequenced"

    def test_max_chunks_forces_stop_receiving(self, streaming_reads):
        read = streaming_reads[0]
        simulator = ReadUntilSimulator(
            [read],
            parameters=NO_CAPTURE,
            chunk_samples=400,
            n_channels=1,
            max_chunks_per_read=2,
        )
        summary = simulator.run_client(lambda chunk: "wait")
        assert summary["reads_finished"] == 1
        entry = simulator.action_log[0]
        # An undecided read is not ejected: it keeps sequencing to the end,
        # the client just stops receiving its chunks.
        assert entry.action == "sequenced"
        assert entry.samples_sequenced == read.n_samples
        # The client saw exactly max_chunks_per_read chunks' worth of signal.
        assert entry.decision_sample == 2 * 400

    def test_exhaustion_and_finished_semantics(self, streaming_reads):
        reads = streaming_reads[:2]
        simulator = ReadUntilSimulator(
            reads, parameters=NO_CAPTURE, chunk_samples=500, n_channels=1
        )
        assert not simulator.finished
        simulator.run_client(lambda chunk: "stop_receiving")
        assert simulator.finished
        assert simulator.summary()["reads_finished"] == len(reads)
        # Polling an exhausted stream yields nothing and stays finished.
        assert simulator.get_read_chunks() == []
        assert simulator.finished

    def test_chunk_geometry_reports_true_prefix_start(self, streaming_reads):
        read = streaming_reads[0]
        simulator = ReadUntilSimulator(
            [read], parameters=NO_CAPTURE, chunk_samples=500, n_channels=1
        )
        first = simulator.get_read_chunks()[0]
        second = simulator.get_read_chunks()[0]
        assert first.chunk_start_sample == 0
        assert second.chunk_start_sample == 500
        assert first.samples_seen == 500
        assert second.samples_seen == 1000
        stitched = np.concatenate([first.signal_pa, second.signal_pa])
        np.testing.assert_array_equal(stitched, read.signal_pa[:1000])
