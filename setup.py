"""Setuptools shim: legacy editable installs + the optional native extension.

All project metadata lives in pyproject.toml. This file enables the legacy
editable-install path on environments whose setuptools cannot build PEP 517
editable wheels, and — when Cython is importable — builds the optional
ahead-of-time scalar-kernel extension (``repro.batch._native_kernel``, see
``src/repro/batch/_native_kernel.pyx``). Without Cython the extension list
is empty and the install proceeds pure-Python: the ``native`` backend then
uses Numba (when installed) or its pure-Python kernel, bit-identically.

Build the extension explicitly with ``pip install -e .[native]`` or
``python setup.py build_ext --inplace``.
"""

from setuptools import Extension, setup

try:
    from Cython.Build import cythonize
except ImportError:
    ext_modules = []
else:
    ext_modules = cythonize(
        [
            Extension(
                "repro.batch._native_kernel",
                ["src/repro/batch/_native_kernel.pyx"],
            )
        ],
        language_level=3,
    )

setup(ext_modules=ext_modules)
