"""Setuptools shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on environments whose setuptools cannot build
PEP 517 editable wheels.
"""

from setuptools import setup

setup()
