"""Figure 11 — sDTW cost distributions for target vs non-target reads."""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.analysis.distributions import cost_distributions_by_prefix


def test_fig11_cost_distributions(benchmark, lambda_bench, lambda_filter):
    target_signals = lambda_bench.target_signals()
    nontarget_signals = lambda_bench.nontarget_signals()

    def regenerate():
        return cost_distributions_by_prefix(
            lambda_filter.cost,
            target_signals,
            nontarget_signals,
            prefix_lengths=PREFIX_LENGTHS,
        )

    distributions = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = []
    for entry in distributions:
        rows.append(
            {
                "prefix_samples": entry.prefix_samples,
                "target_mean": entry.target.mean,
                "target_p95": entry.target.quantile(0.95),
                "nontarget_mean": entry.nontarget.mean,
                "nontarget_p05": entry.nontarget.quantile(0.05),
                "overlap": entry.overlap,
                "separation": entry.separation,
            }
        )
    print_rows("Figure 11: sDTW cost distributions by prefix length (lambda vs human)", rows)
    benchmark.extra_info["separations"] = {row["prefix_samples"]: row["separation"] for row in rows}

    # Shape checks mirroring the paper's observations:
    # target costs sit below non-target costs at every prefix length,
    for row in rows:
        assert row["target_mean"] < row["nontarget_mean"]
    # and the class separation improves (overlap shrinks) with longer prefixes.
    assert rows[-1].get("separation") >= rows[0].get("separation")
    assert rows[-1]["overlap"] <= rows[0]["overlap"] + 0.05
