"""Supplementary benchmark: raw sDTW kernel cost and the accelerator's cycle model.

Not a paper table/figure by itself, but the quantity everything else builds
on: how expensive one 2000-sample classification is in software (the paper's
Section 4.8 motivation for an accelerator: ~1,400 M operations per read), and
how many cycles the hardware model charges for the same work.
"""

import numpy as np
import pytest
from _bench_utils import print_rows

from repro.core.config import SDTWConfig
from repro.core.sdtw import sdtw_cost
from repro.hardware.performance import accelerator_performance, classification_cycles

QUERY_SAMPLES = 1000


@pytest.mark.parametrize(
    "variant",
    ["hardware", "no_bonus", "vanilla"],
)
def test_software_kernel_cost(benchmark, lambda_reference, lambda_bench, variant):
    configs = {
        "hardware": SDTWConfig.hardware(),
        "no_bonus": SDTWConfig(
            distance="absolute", allow_reference_deletions=False, quantize=True, match_bonus=0.0
        ),
        "vanilla": SDTWConfig.vanilla(),
    }
    config = configs[variant]
    signal = lambda_bench.target_signals()[0][:QUERY_SAMPLES]
    reference = lambda_reference.values(quantized=config.quantize)
    query = np.asarray(signal)

    result = benchmark(sdtw_cost, query, reference, config)
    cells = QUERY_SAMPLES * reference.size
    benchmark.extra_info["dp_cells"] = cells
    benchmark.extra_info["variant"] = variant
    assert np.isfinite(result.cost)


def test_accelerator_cycle_model(benchmark):
    rows = []

    def regenerate():
        rows.clear()
        for genome, bases in (("SARS-CoV-2", 29_903), ("lambda", 48_502), ("largest supported", 50_000)):
            performance = accelerator_performance(bases)
            rows.append(
                {
                    "genome": genome,
                    "reference_samples": performance.reference_samples,
                    "cycles": performance.cycles,
                    "latency_ms": performance.latency_ms,
                    "tile_Msamples_per_s": performance.tile_throughput_samples_per_s / 1e6,
                }
            )
        return rows

    benchmark(regenerate)
    print_rows("Accelerator cycle model (Section 7.1)", rows)
    covid = rows[0]
    assert covid["cycles"] == classification_cycles(2 * 29_903)
    assert covid["latency_ms"] == pytest.approx(0.027, abs=0.002)
