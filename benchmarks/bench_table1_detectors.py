"""Table 1 — comparison of commercial and sequencing-based virus detectors."""

from _bench_utils import print_rows

# `tests_table` is imported under an alias so pytest does not collect the
# library function (its name matches the test-discovery pattern).
from repro.data.tests_catalog import programmable_tests
from repro.data.tests_catalog import tests_table as detector_tests_table


def test_table1_detector_comparison(benchmark):
    rows = benchmark(detector_tests_table)
    print_rows("Table 1: virus detector comparison", rows)
    programmable = programmable_tests()
    print(f"programmable (reference-driven) tests: {len(programmable)} of {len(rows)}")
    benchmark.extra_info["n_tests"] = len(rows)
    benchmark.extra_info["n_programmable"] = len(programmable)
    assert len(rows) == 9
    assert all(test.diagnostic_output == "whole genome" for test in programmable)
