"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper. The expensive
experiments (cost distributions, accuracy sweeps, the ablation) share two
scaled datasets built once per session:

* ``lambda_bench`` — a lambda-phage-scale target (the paper's wet-lab
  dataset) against a human-like background,
* ``covid_bench``  — a SARS-CoV-2-scale target against the same background.

Genome lengths and read counts are scaled down so the whole harness runs in a
few minutes of pure Python; the EXPERIMENTS.md file records how the scaled
results compare with the paper's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.filter import SquiggleFilter
from repro.core.reference import ReferenceSquiggle
from repro.sequencer.datasets import build_dataset
from repro.sequencer.reads import ReadLengthModel

# Prefix lengths mirroring the paper's 1000/2000/4000-sample analysis, scaled
# to the smaller genomes used here.
PREFIX_LENGTHS = (500, 1000, 2000)
N_READS_PER_CLASS = 30

GENOME_LENGTHS = {"lambda": 2_400, "sars_cov_2": 1_500, "human": 12_000}
READ_LENGTHS = ReadLengthModel(mean_bases=400, sigma=0.2, min_bases=260, max_bases=800)


@pytest.fixture(scope="session")
def lambda_bench():
    """Lambda-phage-scale dataset with balanced labelled reads."""
    return build_dataset(
        target="lambda",
        background="human",
        viral_fraction=0.01,
        n_balanced_reads=N_READS_PER_CLASS,
        genome_lengths=GENOME_LENGTHS,
        read_length=READ_LENGTHS,
        seed=20211018,
    )


@pytest.fixture(scope="session")
def covid_bench():
    """SARS-CoV-2-scale dataset with balanced labelled reads."""
    return build_dataset(
        target="sars_cov_2",
        background="human",
        viral_fraction=0.01,
        n_balanced_reads=N_READS_PER_CLASS,
        genome_lengths=GENOME_LENGTHS,
        read_length=READ_LENGTHS,
        seed=20211019,
    )


@pytest.fixture(scope="session")
def lambda_reference(lambda_bench) -> ReferenceSquiggle:
    return ReferenceSquiggle.from_genome(
        lambda_bench.target_genome, kmer_model=lambda_bench.kmer_model
    )


@pytest.fixture(scope="session")
def covid_reference(covid_bench) -> ReferenceSquiggle:
    return ReferenceSquiggle.from_genome(
        covid_bench.target_genome, kmer_model=covid_bench.kmer_model
    )


@pytest.fixture(scope="session")
def lambda_filter(lambda_reference) -> SquiggleFilter:
    return SquiggleFilter(lambda_reference, prefix_samples=max(PREFIX_LENGTHS))


@pytest.fixture(scope="session")
def covid_filter(covid_reference) -> SquiggleFilter:
    return SquiggleFilter(covid_reference, prefix_samples=max(PREFIX_LENGTHS))


def print_rows(title, rows, columns=None):
    """Small helper to render a table/figure's rows in the bench output."""
    print(f"\n===== {title} =====")
    if not rows:
        print("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    header = " | ".join(f"{column:>22}" for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>22.4g}")
            else:
                cells.append(f"{str(value):>22}")
        print(" | ".join(cells))
