"""Figure 21 — future Read Until benefits as sequencing throughput scales 1-100x."""

from _bench_utils import print_rows

from repro.pipeline.scalability import scalability_analysis, speedup_table

SCALE_FACTORS = (1, 2, 5, 10, 20, 50, 100)


def test_fig21_future_scalability(benchmark):
    points = benchmark(scalability_analysis, SCALE_FACTORS)
    rows = speedup_table(points)
    print_rows("Figure 21: Read Until speedup vs sequencer throughput scaling", rows)

    by_classifier = {}
    for point in points:
        by_classifier.setdefault(point.classifier, {})[point.scale_factor] = point
    benchmark.extra_info["speedups"] = {
        name: {str(scale): round(point.speedup, 3) for scale, point in scales.items()}
        for name, scales in by_classifier.items()
    }

    squigglefilter = by_classifier["squigglefilter"]
    jetson = by_classifier["guppy_lite@jetson_xavier"]
    titan = by_classifier["guppy_lite@titan_xp"]

    # Shape checks mirroring the paper's conclusions:
    # SquiggleFilter sustains its full benefit across the projected range,
    assert squigglefilter[100.0].read_until_pore_fraction == 1.0
    assert squigglefilter[100.0].speedup >= 0.95 * squigglefilter[1.0].speedup
    # the edge GPU already cannot serve every pore today and loses the benefit,
    assert jetson[1.0].read_until_pore_fraction < 0.5
    assert jetson[100.0].speedup < 1.2
    # even the server GPU collapses at 10-100x,
    assert titan[10.0].speedup < 0.5 * squigglefilter[10.0].speedup
    # and SquiggleFilter is at least as good as the edge GPU everywhere. At
    # scale 1 a 250 W server GPU that still serves every pore may edge it out
    # slightly thanks to basecall+align's small accuracy advantage (the paper
    # concedes exactly this); from 10x onwards SquiggleFilter wins outright.
    for scale in (1.0, 10.0, 100.0):
        assert squigglefilter[scale].speedup >= jetson[scale].speedup
    assert squigglefilter[1.0].speedup >= 0.9 * titan[1.0].speedup
    for scale in (10.0, 100.0):
        assert squigglefilter[scale].speedup > titan[scale].speedup
