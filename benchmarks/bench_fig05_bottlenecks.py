"""Figure 5 — basecalling dominates compute in the Read Until assembly pipeline."""

from _bench_utils import print_rows

from repro.pipeline.profiling import profile_both_specimens


def test_fig05_pipeline_compute_breakdown(benchmark):
    profiles = benchmark(profile_both_specimens)
    rows = []
    for fraction, profile in sorted(profiles.items(), reverse=True):
        rows.extend(profile.as_rows())
    print_rows(
        "Figure 5: compute-time breakdown (1% and 0.1% viral specimens)",
        rows,
        columns=["viral_fraction", "stage", "seconds", "fraction"],
    )
    for fraction, profile in profiles.items():
        benchmark.extra_info[f"basecall_fraction_{fraction}"] = profile.basecall_fraction
    # Paper: ~96% of compute goes to basecalling, and the share grows as the
    # viral fraction shrinks (alignment/variant calling touch fewer reads).
    assert profiles[0.01].basecall_fraction > 0.9
    assert profiles[0.001].basecall_fraction > profiles[0.01].basecall_fraction
    assert profiles[0.001].variant_call_s < profiles[0.001].basecall_s / 10
