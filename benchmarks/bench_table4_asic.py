"""Table 4 — SquiggleFilter ASIC synthesis results (area and power)."""

import pytest
from _bench_utils import print_rows

from repro.hardware.asic import AsicModel, synthesis_table


def test_table4_asic_synthesis(benchmark):
    model = AsicModel(n_pes_per_tile=2000, n_tiles=5)
    rows = benchmark(synthesis_table, model)
    print_rows("Table 4: ASIC synthesis results", rows)
    by_element = {row["element"]: row for row in rows}
    benchmark.extra_info["total_area_mm2"] = by_element["Complete 5-Tile ASIC"]["area_mm2"]
    benchmark.extra_info["total_power_w"] = by_element["Complete 5-Tile ASIC"]["power_w"]
    # Paper headline: 13.25 mm^2 and 14.31 W for the 5-tile design.
    assert by_element["Complete 5-Tile ASIC"]["area_mm2"] == pytest.approx(13.25, abs=0.05)
    assert by_element["Complete 5-Tile ASIC"]["power_w"] == pytest.approx(14.31, abs=0.05)
    assert by_element["Tile (1x2000 PEs)"]["area_mm2"] == pytest.approx(2.423, abs=0.01)
    assert by_element["Complete 1-Tile ASIC"]["power_w"] == pytest.approx(2.86, abs=0.01)
