"""Design-choice ablation: accelerator provisioning (PE count, tile count).

DESIGN.md calls out the accelerator's provisioning decisions — 2000 PEs per
tile (one per query sample of the default prefix) and 5 tiles (sized for the
announced 100x sequencer throughput increase). This bench sweeps both knobs
through the area/power/latency model to show the provisioned point is the
smallest configuration that (a) covers the 2000-sample prefix in one pass and
(b) keeps 100x headroom over today's MinION.
"""

from _bench_utils import print_rows

from repro.basecall.performance import MINION_MAX_SAMPLES_PER_S
from repro.hardware.asic import AsicModel
from repro.hardware.performance import accelerator_performance

SARS_COV_2_BASES = 29_903


def test_accelerator_design_space(benchmark):
    def sweep():
        rows = []
        for n_pes in (1000, 2000, 4000):
            for n_tiles in (1, 2, 5, 10):
                model = AsicModel(n_pes_per_tile=n_pes, n_tiles=n_tiles)
                performance = accelerator_performance(
                    SARS_COV_2_BASES, query_samples=n_pes, model=model
                )
                rows.append(
                    {
                        "pes_per_tile": n_pes,
                        "tiles": n_tiles,
                        "area_mm2": model.total_area_mm2,
                        "power_w": model.total_power_w,
                        "latency_ms": performance.latency_ms,
                        "headroom_vs_minion": performance.total_throughput_samples_per_s
                        / MINION_MAX_SAMPLES_PER_S,
                    }
                )
        return rows

    rows = benchmark(sweep)
    print_rows("Accelerator design-space sweep (SARS-CoV-2 target)", rows)
    provisioned = next(row for row in rows if row["pes_per_tile"] == 2000 and row["tiles"] == 5)
    benchmark.extra_info["provisioned"] = provisioned

    # The provisioned design matches the paper's headline numbers...
    assert abs(provisioned["area_mm2"] - 13.25) < 0.1
    assert abs(provisioned["power_w"] - 14.31) < 0.1
    assert provisioned["headroom_vs_minion"] > 100
    # ...and is the cheapest 2000-PE configuration with >=100x headroom.
    cheaper = [
        row
        for row in rows
        if row["pes_per_tile"] == 2000
        and row["headroom_vs_minion"] >= 100
        and row["area_mm2"] < provisioned["area_mm2"]
    ]
    assert not cheaper
    # Doubling the PEs doubles area but does not improve per-read latency for
    # a fixed 2000-sample decision prefix beyond what the reference stream
    # already dictates, which is why the tile is sized to the prefix length.
    double = next(row for row in rows if row["pes_per_tile"] == 4000 and row["tiles"] == 5)
    assert double["area_mm2"] > 1.8 * provisioned["area_mm2"]
