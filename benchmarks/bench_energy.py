"""Supplementary benchmark: energy per Read Until decision.

The paper compares power (14.3 W ASIC vs a 30 W edge GPU vs a 250 W server
GPU); for a portable battery-powered detector the decisive metric is energy
per classified read, which also folds in the huge throughput gap. This bench
regenerates that comparison from the power and performance models.
"""

from _bench_utils import print_rows

from repro.hardware.energy import energy_advantage_over, energy_comparison


def test_energy_per_decision(benchmark):
    rows = benchmark(energy_comparison, 29_903)
    print_rows("Energy per Read Until decision (SARS-CoV-2 reference)", rows)
    by_name = {row["classifier"]: row for row in rows}
    advantage_edge = energy_advantage_over("guppy_lite@jetson_xavier")
    advantage_server = energy_advantage_over("guppy_lite@titan_xp")
    print(f"energy advantage vs edge GPU  : {advantage_edge:,.0f}x")
    print(f"energy advantage vs server GPU: {advantage_server:,.0f}x")
    benchmark.extra_info["advantage_vs_edge_gpu"] = advantage_edge
    benchmark.extra_info["advantage_vs_server_gpu"] = advantage_server

    squigglefilter = by_name["squigglefilter"]
    edge = by_name["guppy_lite@jetson_xavier"]
    # The ASIC draws less than half the edge GPU's board power...
    assert squigglefilter["power_w"] < 0.5 * edge["power_w"]
    # ...and classifies each read with orders of magnitude less energy.
    assert advantage_edge > 100
    assert advantage_server > 100
    assert squigglefilter["energy_per_decision_mj"] < 0.1
