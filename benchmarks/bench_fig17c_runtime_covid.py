"""Figure 17c — Read Until runtime on the SARS-CoV-2 dataset."""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.analysis.sweeps import accuracy_sweep
from repro.pipeline.runtime_model import (
    ReadUntilModelConfig,
    best_runtime,
    runtime_vs_threshold,
    sequencing_runtime_s,
)


def test_fig17c_read_until_runtime_covid(benchmark, covid_bench, covid_filter, lambda_bench, lambda_filter):
    target_signals = covid_bench.target_signals()
    nontarget_signals = covid_bench.nontarget_signals()
    config = ReadUntilModelConfig(
        genome_length_bases=len(covid_bench.target_genome),
        coverage=30.0,
        viral_fraction=0.01,
        mean_target_read_bases=400.0,
        mean_background_read_bases=1200.0,
        decision_latency_s=2.7e-5,
    )
    control = sequencing_runtime_s(config, use_read_until=False)

    # The paper transfers the optimal thresholds found on the lambda dataset
    # (Figure 17b) to the SARS-CoV-2 dataset; do the same here by picking the
    # per-prefix thresholds from the lambda sweep and evaluating them on the
    # covid reads.
    lambda_sweep = accuracy_sweep(
        lambda_filter,
        lambda_bench.target_signals(),
        lambda_bench.nontarget_signals(),
        PREFIX_LENGTHS,
        n_thresholds=61,
    )

    def regenerate():
        covid_sweep = accuracy_sweep(
            covid_filter, target_signals, nontarget_signals, PREFIX_LENGTHS, n_thresholds=61
        )
        rows = []
        for prefix_sweep in covid_sweep:
            prefix_config = config.with_(decision_prefix_samples=prefix_sweep.prefix_samples)
            curve = runtime_vs_threshold(prefix_sweep.sweep, prefix_config)
            best = best_runtime(curve)
            rows.append(
                {
                    "prefix_samples": prefix_sweep.prefix_samples,
                    "max_f1": prefix_sweep.max_f1,
                    "runtime_minutes": best["runtime_s"] / 60.0,
                    "recall": best["recall"],
                    "false_positive_rate": best["false_positive_rate"],
                    "speedup_vs_control": control / best["runtime_s"],
                }
            )
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_rows("Figure 17c: Read Until runtime vs threshold/prefix (SARS-CoV-2)", rows)
    print(f"runtime without Read Until: {control / 60:.1f} minutes")
    print(
        "lambda-derived optimal thresholds per prefix: "
        + ", ".join(
            f"{entry.prefix_samples}->{entry.best_threshold:,.0f}" for entry in lambda_sweep
        )
    )
    benchmark.extra_info["control_minutes"] = control / 60.0
    benchmark.extra_info["best_minutes"] = min(row["runtime_minutes"] for row in rows)

    for row in rows:
        assert row["runtime_minutes"] < control / 60.0
        assert row["max_f1"] >= 0.85
