"""Figure 17b — Read Until runtime on the lambda phage dataset."""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.analysis.sweeps import accuracy_sweep
from repro.core.filter import MultiStageSquiggleFilter
from repro.pipeline.runtime_model import (
    ReadUntilModelConfig,
    best_runtime,
    runtime_from_decisions,
    runtime_vs_threshold,
    sequencing_runtime_s,
)


def _runtime_config(genome_length: int) -> ReadUntilModelConfig:
    return ReadUntilModelConfig(
        genome_length_bases=genome_length,
        coverage=30.0,
        viral_fraction=0.01,
        mean_target_read_bases=400.0,
        mean_background_read_bases=1200.0,
        decision_latency_s=4.3e-5,
    )


def test_fig17b_read_until_runtime_lambda(benchmark, lambda_bench, lambda_filter, lambda_reference):
    target_signals = lambda_bench.target_signals()
    nontarget_signals = lambda_bench.nontarget_signals()
    config = _runtime_config(len(lambda_bench.target_genome))
    control = sequencing_runtime_s(config, use_read_until=False)

    def regenerate():
        sweep = accuracy_sweep(
            lambda_filter, target_signals, nontarget_signals, PREFIX_LENGTHS, n_thresholds=61
        )
        rows = []
        for prefix_sweep in sweep:
            prefix_config = config.with_(decision_prefix_samples=prefix_sweep.prefix_samples)
            curve = runtime_vs_threshold(prefix_sweep.sweep, prefix_config)
            best = best_runtime(curve)
            rows.append(
                {
                    "prefix_samples": prefix_sweep.prefix_samples,
                    "best_threshold": best["threshold"],
                    "recall": best["recall"],
                    "false_positive_rate": best["false_positive_rate"],
                    "runtime_minutes": best["runtime_s"] / 60.0,
                    "speedup_vs_control": control / best["runtime_s"],
                }
            )
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_rows("Figure 17b: Read Until runtime vs threshold/prefix (lambda)", rows)
    print(f"runtime without Read Until: {control / 60:.1f} minutes")

    best_single = min(rows, key=lambda row: row["runtime_minutes"])
    benchmark.extra_info["control_minutes"] = control / 60.0
    benchmark.extra_info["best_single_minutes"] = best_single["runtime_minutes"]

    # Multi-stage filtering (Section 4.6) on the same reads.
    multistage = MultiStageSquiggleFilter.calibrated(
        lambda_reference, target_signals, nontarget_signals, prefix_lengths=PREFIX_LENGTHS
    )
    decisions = multistage.classify_batch([read.signal_pa for read in lambda_bench.reads])
    multistage_runtime = runtime_from_decisions(
        decisions,
        [read.is_target for read in lambda_bench.reads],
        config.with_(decision_prefix_samples=max(PREFIX_LENGTHS)),
    )
    print(f"multi-stage runtime: {multistage_runtime / 60:.1f} minutes")
    benchmark.extra_info["multistage_minutes"] = multistage_runtime / 60.0

    # Shape checks: Read Until beats the control at every prefix length, and
    # the multi-stage filter is competitive with the best single threshold.
    for row in rows:
        assert row["runtime_minutes"] < control / 60.0
        assert row["speedup_vs_control"] > 1.2
    assert multistage_runtime / 60.0 < control / 60.0
    assert multistage_runtime <= best_single["runtime_minutes"] * 60.0 * 1.3
