"""Figure 6 — nanopore sequencing throughput is growing exponentially."""

from _bench_utils import print_rows

from repro.data.throughput_history import exponential_growth_rate, throughput_history_table


def test_fig06_sequencing_throughput_growth(benchmark):
    rows = benchmark(throughput_history_table)
    print_rows("Figure 6: sequencer throughput by release", rows)
    growth = exponential_growth_rate()
    print(f"fitted yearly throughput growth factor: {growth:.2f}x")
    benchmark.extra_info["yearly_growth_factor"] = growth
    values = [row["bases_per_second"] for row in rows]
    assert values[-1] > 50 * values[0]
    assert growth > 1.5
