"""Figure 10 — epidemic virus genome lengths and the filter's provisioning."""

from _bench_utils import print_rows

from repro.genomes.catalog import genome_length_table, supported_fraction


def test_fig10_epidemic_genome_lengths(benchmark):
    rows = benchmark(genome_length_table)
    print_rows("Figure 10: epidemic virus genome lengths", rows)
    fraction = supported_fraction()
    print(f"fraction of catalog viruses supported by the 100 KB reference buffer: {fraction:.1%}")
    benchmark.extra_info["supported_fraction"] = fraction
    unsupported = [row["virus"] for row in rows if not row["fits_filter"]]
    print(f"unsupported (large dsDNA) viruses: {unsupported}")
    # Paper: nearly every epidemic virus fits; smallpox/herpes are the exceptions.
    assert fraction > 0.85
    assert any("Smallpox" in name for name in unsupported)
    assert all(row["genome_length"] <= 100_000 for row in rows if row["fits_filter"])
