"""Supplementary benchmark: scalar per-read loop vs the batched sDTW backends.

The batch execution engine's argument is that one ``(channels, reference)``
matrix operation per wavefront step beats ``channels`` separate
``(reference,)`` operations issued from a Python loop — the same reason the
accelerator advances all alignments in lockstep. This benchmark replays an
identical chunk-round workload through the per-read scalar path and through
the engine on each requested execution backend, checks the costs are
bit-identical, and reports wavefront throughput (DP cells per second).

Two entry points:

* **pytest** (the CI smoke path) measures the default ``numpy`` backend on
  two deployment geometries: ``amplicon`` — a qPCR-assay-scale target across
  a large channel count, where the per-read Python loop is
  overhead-dominated and lockstep batching pays maximally (gated via
  ``BATCH_SDTW_MIN_SPEEDUP``, default 5x) — and ``genome`` — a
  lambda-phage-scale reference, where every kernel call is
  memory-bandwidth-bound and one core's bandwidth is the ceiling (reported,
  not gated).
* **script mode** (``python benchmarks/bench_batch_sdtw.py --backend sharded
  --backend colsharded --workers 2 4``) measures any registered backend on
  three workloads — ``flowcell``: by default 512 channels against a
  genome-scale reference, the configuration lane sharding exists for;
  ``genome_single_channel``: one channel against a larger genome, the
  configuration **column** sharding exists for (lane striping has nothing to
  distribute there; ``numpy`` vs ``sharded`` vs ``colsharded`` on that row is
  the reference-axis-tiling story); and ``flowcell_pruned``: a minority of
  channels stream reads sampled from the reference plus noise while the
  rest stream random signal, and every backend is measured brute-force
  **and** with the pruning layer on (kill bounds from a threshold placed
  between the two cost distributions) — the ``<backend>[pruned]`` entries
  carry ``cells_advanced`` / ``cells_pruned`` / ``pruned_fraction`` and
  ``speedup_vs_unpruned``, after asserting accept/eject decisions and every
  below-threshold cost are bit-identical to brute force; and ``flowcell_lb``:
  the same mixed construction but in the adaptive-sampling regime the gate
  targets: a full flowcell of mostly-off-target channels (one lane in 128
  on target by default), short chunks, and many decision rounds, measured
  brute-force, pruned, **and** pruned with the
  lower-bound lane gate on (``lb_cascade=True``) — the ``<backend>[lb]``
  entries add ``lanes_lb_skipped`` / ``cells_lb_skipped`` and
  ``speedup_vs_pruned``, the gate's win over column pruning alone, under the
  same in-bench bit-identity assertions — and emits
  per-backend JSON so throughput
  scaling with ``--workers`` is measurable. Every engine run is traced
  (:mod:`repro.obs`), so each backend entry carries a ``phases`` self-time
  breakdown whose sum matches the measured seconds, plus per-worker-track
  phase tables for the process-sharded backends. ``--config run.json`` loads a
  :class:`repro.runtime.RunConfig`: its backend/workers/tile_columns become
  the measured backend (when no ``--backend`` flags are given) and the
  serialized config is recorded under the report's ``run_config`` key, so a
  benchmark JSON documents exactly the configuration that produced it. The
  committed ``BENCH_batch_sdtw.json`` at the repository root records this
  script's output per PR, the performance trajectory baseline.

Every backend entry reports two cell rates. ``nominal_cells_per_s`` counts
every cell of the full DP problem per second — pruned cells retire for free,
so pruning raises it; it is the end-to-end throughput figure.
``effective_cells_per_s`` counts only the cells the kernel actually advanced
per second — the raw compute rate, roughly constant with or without pruning
(the multi-process column backend's figure includes halo recompute, so its
``cells_advanced`` can exceed the problem's ``dp_cells``). Without pruning
the two coincide up to that halo term.

Both emit a machine-readable JSON report (``BATCH_SDTW_JSON`` / ``--json``
choose the path; unset or ``-`` prints to stdout only). Pytest tunables:
``BATCH_SDTW_CHANNELS``, ``BATCH_SDTW_ROUNDS``, ``BATCH_SDTW_CHUNK``,
``BATCH_SDTW_MIN_SPEEDUP`` (the CI smoke invocation relaxes the gate —
shared runners vary too much for a hard 5x assertion there).
"""

import argparse
import json
import os
import time

import numpy as np
from _bench_utils import host_block, print_rows

from repro.batch import available_backends
from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import sdtw_resume
from repro.genomes.sequences import random_genome
from repro.obs.trace import Tracer

CHANNELS = int(os.environ.get("BATCH_SDTW_CHANNELS", "256"))
ROUNDS = int(os.environ.get("BATCH_SDTW_ROUNDS", "2"))
CHUNK_SAMPLES = int(os.environ.get("BATCH_SDTW_CHUNK", "250"))
MIN_SPEEDUP = float(os.environ.get("BATCH_SDTW_MIN_SPEEDUP", "5.0"))

_REPORTS = {}


def _chunk_rounds(rng, n_channels, n_rounds, chunk_samples):
    """Quantized query chunks per round per channel (ragged final round)."""
    rounds = []
    for round_index in range(n_rounds):
        chunks = []
        for _ in range(n_channels):
            length = chunk_samples
            if round_index == n_rounds - 1:
                length = int(rng.integers(1, chunk_samples + 1))
            chunks.append(rng.integers(-127, 128, size=length, dtype=np.int64))
        rounds.append(chunks)
    return rounds


def _pruned_chunk_rounds(rng, reference, n_channels, n_rounds, chunk_samples,
                         on_target_fraction=0.25):
    """Chunk rounds for the pruning workload, plus the on-target mask.

    The first ``on_target_fraction`` of the channels stream reads sampled
    from the reference itself plus small quantization noise (their costs land
    far below any sensible threshold — the match bonus drives them strongly
    negative); the rest stream random signal (costs far above). The gap is
    what the pruning layer exploits: off-target lanes blow through the kill
    bound early and freeze, on-target lanes stay fully alive.
    """
    total = n_rounds * chunk_samples
    on_target = np.zeros(n_channels, dtype=bool)
    on_target[: max(1, int(n_channels * on_target_fraction))] = True
    prefixes = []
    for channel in range(n_channels):
        if on_target[channel]:
            start = int(rng.integers(0, max(1, reference.size - total)))
            base = np.tile(reference, total // reference.size + 2)[start : start + total]
            noise = rng.integers(-2, 3, size=total)
            prefixes.append(np.clip(base + noise, -127, 127).astype(np.int64))
        else:
            prefixes.append(rng.integers(-127, 128, size=total, dtype=np.int64))
    rounds = [
        [prefix[index * chunk_samples : (index + 1) * chunk_samples] for prefix in prefixes]
        for index in range(n_rounds)
    ]
    return rounds, on_target


def _measure_scalar(rounds, reference, config):
    """The pipeline's per-read fallback: one sdtw_resume per channel per round."""
    start = time.perf_counter()
    states = {}
    for round_chunks in rounds:
        for channel, chunk in enumerate(round_chunks):
            states[channel] = sdtw_resume(chunk, reference, config, state=states.get(channel))
    return time.perf_counter() - start, states


def _measure_engine(rounds, reference, config, backend, backend_options,
                    prune_threshold=None, prune_lifetime=None, lb_cascade=False):
    """One engine step per round across all channels, on the given backend.

    Backend construction (worker-pool spawn for the sharded backend) happens
    outside the timed region: pools are persistent in deployment, paid once
    per run, not once per round. The run is traced so the report can
    attribute round time to execution phases; the tracer is one predicted
    branch plus a perf_counter pair per span, far below measurement noise.

    With ``prune_threshold`` set the engine runs its pruning layer the way
    the streaming classifier drives it: the threshold is the decision bound,
    ``prune_lifetime`` the most samples any lane will ever consume.
    ``lb_cascade`` additionally turns on the lower-bound lane gate in front
    of the backend dispatch.
    """
    tracer = Tracer(track="bench")
    prune = prune_threshold is not None
    engine = BatchSDTWEngine(
        reference, config, backend=backend, backend_options=backend_options,
        tracer=tracer,
        prune=prune,
        prune_margin=0.0,
        prune_lifetime_samples=prune_lifetime if prune else None,
        lb_cascade=lb_cascade,
    )
    if prune:
        engine.prune_bound = float(prune_threshold)
    try:
        start = time.perf_counter()
        for round_chunks in rounds:
            snapshots = engine.step(list(enumerate(round_chunks)))
        elapsed = time.perf_counter() - start
        return elapsed, snapshots, engine, tracer
    except BaseException:
        engine.close()
        raise


def _phase_breakdown(tracer):
    """Per-phase self-time tables: the parent track, then each worker track.

    The parent track's self times decompose the traced wall clock exactly
    (every root span's duration is distributed over its subtree), so
    ``sum(self_s) ~= seconds`` per backend entry. Worker tracks run on
    other processes and overlap the parent, so they are reported separately
    rather than summed in.
    """
    tracks = tracer.tracks()
    parent = {
        name: stat.as_dict()
        for name, stat in sorted(tracer.phase_totals(tracks[0]).items())
    }
    workers = {
        track: {
            name: stat.as_dict()
            for name, stat in sorted(tracer.phase_totals(track).items())
        }
        for track in tracks[1:]
    }
    return parent, workers


def _backend_entry(backend, options, dp_cells, scalar_s, batch_s, engine, tracer):
    """One report entry: timings, phase breakdown, and the cell counters."""
    phases, worker_phases = _phase_breakdown(tracer)
    advanced = engine.cells_advanced
    pruned = engine.cells_pruned
    entry = {
        "backend": backend,
        "options": dict(options or {}),
        "seconds": batch_s,
        "cells_advanced": int(advanced),
        "cells_pruned": int(pruned),
        "lanes_lb_skipped": int(engine.lanes_lb_skipped),
        "cells_lb_skipped": int(engine.cells_lb_skipped),
        "pruned_fraction": pruned / (advanced + pruned) if advanced + pruned else 0.0,
        "nominal_cells_per_s": dp_cells / batch_s,
        "effective_cells_per_s": advanced / batch_s,
        "speedup_vs_scalar": scalar_s / batch_s,
        "phases": phases,
        "phase_self_seconds": sum(stat["self_s"] for stat in phases.values()),
    }
    if worker_phases:
        entry["worker_phases"] = worker_phases
    return entry


def _measure(reference, n_channels, backend_specs=None, rounds=ROUNDS,
             chunk=CHUNK_SAMPLES, round_chunks=None, prune_on_target=None,
             lb_gate=False, threshold_position=0.5):
    """Measure scalar vs engine throughput; returns the per-workload report.

    ``backend_specs`` is a list of ``(label, backend_name, options)``; the
    default measures the in-process numpy backend only. Legacy top-level
    keys (``batched_seconds``, ``speedup``, ...) describe the first listed
    backend, keeping the CI gate stable; every backend gets an entry under
    ``"backends"``.

    With ``prune_on_target`` (a per-channel boolean mask; pair with
    ``round_chunks`` from :func:`_pruned_chunk_rounds`) every backend is
    measured a second time with the pruning layer on, against a threshold
    placed midway between the on- and off-target cost distributions; the
    extra ``<label>[pruned]`` entries carry ``speedup_vs_unpruned`` and the
    pruning counters, after asserting the decisions and every
    below-threshold cost match brute force bit for bit. ``lb_gate=True``
    adds a third measurement per backend with the lower-bound lane gate on
    (``<label>[lb]``, carrying ``speedup_vs_pruned`` and the gate counters)
    under the same bit-identity assertions.
    """
    if backend_specs is None:
        backend_specs = [("numpy", "numpy", None)]
    config = SDTWConfig.hardware()
    if round_chunks is None:
        rng = np.random.default_rng(20211025)
        round_chunks = _chunk_rounds(rng, n_channels, rounds, chunk)
    total_samples = sum(c.size for chunks in round_chunks for c in chunks)
    dp_cells = total_samples * reference.size

    scalar_s, states = _measure_scalar(round_chunks, reference, config)

    threshold = None
    lifetime = None
    if prune_on_target is not None:
        costs = np.array([states[ch].cost for ch in range(n_channels)], dtype=np.float64)
        on, off = costs[prune_on_target], costs[~prune_on_target]
        assert on.max() < off.min(), "pruning workload: cost distributions overlap"
        # threshold_position slides the threshold across the gap between the
        # two cost distributions: 0.5 is the midpoint, small values emulate a
        # tightly calibrated threshold (just above the accepted costs) — the
        # regime where kill bounds bite early and the lane gate pays.
        threshold = float(on.max() + (off.min() - on.max()) * threshold_position)
        per_channel = np.zeros(n_channels, dtype=np.int64)
        for chunks in round_chunks:
            for channel, piece in enumerate(chunks):
                per_channel[channel] += piece.size
        lifetime = int(per_channel.max())

    backends = {}
    for label, backend, options in backend_specs:
        batch_s, snapshots, engine, tracer = _measure_engine(
            round_chunks, reference, config, backend, options
        )
        try:
            # Same work, bit-identical outcome — whatever executed it.
            for channel, state in states.items():
                assert snapshots[channel].cost == state.cost, (label, channel)
                assert np.array_equal(engine.state_of(channel).row, state.row), (
                    label,
                    channel,
                )
            entry = _backend_entry(
                backend, options, dp_cells, scalar_s, batch_s, engine, tracer
            )
        finally:
            engine.close()
        backends[label] = entry

        if threshold is None:
            continue
        batch_s, snapshots, engine, tracer = _measure_engine(
            round_chunks, reference, config, backend, options,
            prune_threshold=threshold, prune_lifetime=lifetime,
        )
        try:
            # The pruning exactness contract: accept/eject decisions are
            # bit-identical, and every cost at or below the threshold is
            # bit-exact (value and end position). Costs above the bound may
            # be stale in either direction but can never falsely dip below.
            for channel, state in states.items():
                snapshot = snapshots[channel]
                accepted = state.cost <= threshold
                assert (snapshot.cost <= threshold) == accepted, (label, channel)
                if accepted:
                    assert snapshot.cost == state.cost, (label, channel)
                    assert snapshot.end_position == state.end_position, (label, channel)
            pruned_entry = _backend_entry(
                backend, options, dp_cells, scalar_s, batch_s, engine, tracer
            )
        finally:
            engine.close()
        pruned_entry["prune_threshold"] = threshold
        pruned_entry["prune_lifetime_samples"] = lifetime
        pruned_entry["speedup_vs_unpruned"] = entry["seconds"] / pruned_entry["seconds"]
        backends[f"{label}[pruned]"] = pruned_entry

        if not lb_gate:
            continue
        batch_s, snapshots, engine, tracer = _measure_engine(
            round_chunks, reference, config, backend, options,
            prune_threshold=threshold, prune_lifetime=lifetime, lb_cascade=True,
        )
        try:
            # The gate shares the pruning exactness contract: identical
            # decisions, bit-exact accepted costs — lanes it skipped are
            # provably above the bound, clamped costs included.
            for channel, state in states.items():
                snapshot = snapshots[channel]
                accepted = state.cost <= threshold
                assert (snapshot.cost <= threshold) == accepted, (label, channel)
                if accepted:
                    assert snapshot.cost == state.cost, (label, channel)
                    assert snapshot.end_position == state.end_position, (label, channel)
            lb_entry = _backend_entry(
                backend, options, dp_cells, scalar_s, batch_s, engine, tracer
            )
        finally:
            engine.close()
        lb_entry["prune_threshold"] = threshold
        lb_entry["prune_lifetime_samples"] = lifetime
        lb_entry["speedup_vs_unpruned"] = entry["seconds"] / lb_entry["seconds"]
        lb_entry["speedup_vs_pruned"] = (
            pruned_entry["seconds"] / lb_entry["seconds"]
        )
        backends[f"{label}[lb]"] = lb_entry

    first = backends[backend_specs[0][0]]
    report = {
        "channels": n_channels,
        "rounds": rounds,
        "chunk_samples": chunk,
        "reference_samples": int(reference.size),
        "dp_cells": int(dp_cells),
        "scalar_seconds": scalar_s,
        "scalar_cells_per_s": dp_cells / scalar_s,
        "batched_seconds": first["seconds"],
        "batched_cells_per_s": first["nominal_cells_per_s"],
        "speedup": first["speedup_vs_scalar"],
        "backends": backends,
    }
    if threshold is not None:
        report["prune_threshold"] = threshold
        report["on_target_channels"] = int(np.count_nonzero(prune_on_target))
    return report


def _emit(destination=None):
    _REPORTS.setdefault("host", host_block())
    payload = json.dumps(_REPORTS, indent=2, sort_keys=True)
    if destination is None:
        destination = os.environ.get("BATCH_SDTW_JSON", "-")
    if destination and destination != "-":
        with open(destination, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    print_rows(
        "Batched sDTW backends vs per-read scalar loop",
        [
            {
                "workload": name,
                "backend": label,
                "channels": report["channels"],
                "reference": report["reference_samples"],
                "scalar_Mcells_s": report["scalar_cells_per_s"] / 1e6,
                "nominal_Mcells_s": entry["nominal_cells_per_s"] / 1e6,
                "effective_Mcells_s": entry["effective_cells_per_s"] / 1e6,
                "speedup": entry["speedup_vs_scalar"],
                "pruned_%": 100.0 * entry["pruned_fraction"],
                "lb_lanes": entry.get("lanes_lb_skipped", 0),
            }
            for name, report in _REPORTS.items()
            if isinstance(report, dict) and "backends" in report
            for label, entry in report["backends"].items()
        ],
    )


# ------------------------------------------------------------------ pytest
def test_batch_wavefront_throughput_amplicon():
    """Gated workload: short amplicon target, full-flowcell channel count."""
    reference = ReferenceSquiggle.from_genome(random_genome(100, seed=3)).values(quantized=True)
    report = _measure(reference, CHANNELS)
    _REPORTS["amplicon"] = report
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"batched wavefront only {report['speedup']:.2f}x faster than the per-read "
        f"loop at {CHANNELS} channels x {reference.size}-sample reference "
        f"(expected >= {MIN_SPEEDUP}x)"
    )


def test_batch_wavefront_throughput_genome(lambda_reference):
    """Reported workload: lambda-scale reference (memory-bound regime)."""
    reference = lambda_reference.values(quantized=True)
    report = _measure(reference, min(CHANNELS, 64))
    _REPORTS["genome"] = report
    _emit()
    # In the bandwidth-bound regime the win is smaller; batching must still
    # never be slower than the loop it replaces.
    assert report["speedup"] >= 1.0


# ------------------------------------------------------------------ script
def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure batched-sDTW execution backends against the "
        "per-read scalar loop and emit per-backend throughput JSON."
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=available_backends(),
        default=None,
        help="execution backend to measure (repeatable; default: numpy; the "
        "numpy baseline is always included)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="load a repro.runtime.RunConfig (JSON/YAML): its backend, "
        "workers and tile_columns become the measured backend when no "
        "--backend flags are given, and the serialized config is recorded "
        "under the report's 'run_config' key for reproducibility",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2],
        help="worker-pool sizes to measure for the sharded backend (one "
        "measurement per value, so scaling is visible in the JSON)",
    )
    parser.add_argument(
        "--channels",
        type=int,
        default=512,
        help="concurrently sequencing channels (default: a full flowcell)",
    )
    parser.add_argument(
        "--genome-bases",
        type=int,
        default=2400,
        help="target genome length; the reference squiggle covers both "
        "strands (default: the lambda-phage-scale bench genome)",
    )
    parser.add_argument(
        "--single-channel-genome-bases",
        type=int,
        default=6000,
        help="genome length for the single-channel workload (0 skips it); "
        "this is the regime column sharding targets: one lane, a reference "
        "too long for one core's bandwidth",
    )
    parser.add_argument(
        "--single-channel-rounds",
        type=int,
        default=4,
        help="chunk rounds for the single-channel workload (more rounds = "
        "longer streamed prefix)",
    )
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--chunk-samples", type=int, default=CHUNK_SAMPLES)
    parser.add_argument(
        "--pruned-channels",
        type=int,
        default=128,
        help="channels for the flowcell_pruned workload, which measures "
        "every backend brute-force and with the pruning layer on "
        "(0 skips it)",
    )
    parser.add_argument(
        "--pruned-rounds",
        type=int,
        default=8,
        help="chunk rounds for the flowcell_pruned workload (off-target "
        "lanes freeze after round one, so more rounds mean a larger "
        "pruned fraction — mirroring longer streamed prefixes)",
    )
    parser.add_argument(
        "--on-target-fraction",
        type=float,
        default=0.25,
        help="fraction of flowcell_pruned channels streaming reference-"
        "derived (accepted) reads; the rest stream random signal the "
        "pruning layer abandons early",
    )
    parser.add_argument(
        "--require-pruning",
        action="store_true",
        help="fail unless the pruned entries actually pruned cells "
        "(cells_pruned > 0) — the CI smoke gate for the pruning layer",
    )
    parser.add_argument(
        "--lb-channels",
        type=int,
        default=512,
        help="channels for the flowcell_lb workload, which measures every "
        "backend brute-force, pruned, and pruned with the lower-bound lane "
        "gate on (0 skips it)",
    )
    parser.add_argument(
        "--lb-rounds",
        type=int,
        default=40,
        help="chunk rounds for the flowcell_lb workload (gated lanes skip "
        "dispatch entirely after the gate fires, so more rounds mean a "
        "larger skipped fraction)",
    )
    parser.add_argument(
        "--lb-chunk-samples",
        type=int,
        default=50,
        help="chunk size for the flowcell_lb workload; short chunks mean "
        "frequent decision rounds, the adaptive-sampling regime where "
        "skipping a dead lane's dispatch beats re-scanning its columns",
    )
    parser.add_argument(
        "--lb-on-target-fraction",
        type=float,
        default=0.0078125,
        help="fraction of flowcell_lb channels streaming reference-derived "
        "reads (default one in 128: enrichment targets are rare); "
        "mostly-off-target traffic is the regime the lane gate targets",
    )
    parser.add_argument(
        "--require-lb",
        action="store_true",
        help="fail unless the [lb] entries actually skipped lanes "
        "(lanes_lb_skipped > 0) — the CI smoke gate for the lane gate",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--json",
        default=None,
        help="write the report here ('-' or unset: stdout only; falls back "
        "to BATCH_SDTW_JSON)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless every measured backend beats the scalar loop by "
        "this factor (smoke-gate for CI)",
    )
    args = parser.parse_args(argv)

    run_config = None
    if args.config:
        from repro.runtime import RunConfig

        run_config = RunConfig.from_file(args.config)
        _REPORTS["run_config"] = run_config.to_dict()

    specs = [("numpy", "numpy", None)]
    if args.backend is None and run_config is not None:
        # The config names the backend under measurement; the numpy baseline
        # stays as the comparison row.
        options = run_config.resolved_backend_options()
        if run_config.backend != "numpy":
            specs.append((f"{run_config.backend}[config]", run_config.backend, options))
        elif options:
            specs.append(("numpy[config]", "numpy", options))
    else:
        for backend in args.backend or ["numpy"]:
            if backend == "numpy":
                continue
            if backend in ("sharded", "colsharded"):
                for workers in args.workers:
                    specs.append(
                        (f"{backend}[workers={workers}]", backend, {"workers": workers})
                    )
            else:
                # The in-process/device backends ("native", "gpu") take no
                # worker count; measure each once with default options.
                specs.append((backend, backend, None))

    reference = ReferenceSquiggle.from_genome(
        random_genome(args.genome_bases, seed=args.seed)
    ).values(quantized=True)
    report = _measure(
        reference, args.channels, specs, rounds=args.rounds, chunk=args.chunk_samples
    )
    _REPORTS["flowcell"] = report

    if args.single_channel_genome_bases:
        # One channel, genome-scale reference: the workload PR 2 measured as
        # single-core bandwidth-bound. Lane sharding cannot help (one lane);
        # column sharding stripes the reference axis instead.
        single_reference = ReferenceSquiggle.from_genome(
            random_genome(args.single_channel_genome_bases, seed=args.seed + 1)
        ).values(quantized=True)
        _REPORTS["genome_single_channel"] = _measure(
            single_reference,
            1,
            specs,
            rounds=args.single_channel_rounds,
            chunk=args.chunk_samples,
        )

    if args.pruned_channels:
        # The pruning workload: mixed on-/off-target traffic, every backend
        # measured brute-force and pruned against the same kill threshold.
        pruned_rng = np.random.default_rng(args.seed + 2)
        pruned_chunks, on_target = _pruned_chunk_rounds(
            pruned_rng,
            reference,
            args.pruned_channels,
            args.pruned_rounds,
            args.chunk_samples,
            on_target_fraction=args.on_target_fraction,
        )
        _REPORTS["flowcell_pruned"] = _measure(
            reference,
            args.pruned_channels,
            specs,
            rounds=args.pruned_rounds,
            chunk=args.chunk_samples,
            round_chunks=pruned_chunks,
            prune_on_target=on_target,
        )

    if args.lb_channels:
        # The lane-gate workload: mostly off-target traffic, every backend
        # measured brute-force, column-pruned, and column-pruned with the
        # lower-bound cascade skipping dead lanes before dispatch.
        lb_rng = np.random.default_rng(args.seed + 3)
        lb_chunks, lb_on_target = _pruned_chunk_rounds(
            lb_rng,
            reference,
            args.lb_channels,
            args.lb_rounds,
            args.lb_chunk_samples,
            on_target_fraction=args.lb_on_target_fraction,
        )
        _REPORTS["flowcell_lb"] = _measure(
            reference,
            args.lb_channels,
            specs,
            rounds=args.lb_rounds,
            chunk=args.lb_chunk_samples,
            round_chunks=lb_chunks,
            prune_on_target=lb_on_target,
            lb_gate=True,
            # Tightly calibrated threshold (just above the accepted reads):
            # off-target lanes blow through their kill bounds within a round
            # or two, which is exactly when skipping their dispatch matters.
            threshold_position=0.02,
        )
    _emit(args.json)

    if args.require_pruning:
        pruned_entries = {
            label: entry
            for measured in _REPORTS.values()
            if isinstance(measured, dict) and "backends" in measured
            for label, entry in measured["backends"].items()
            # [lb] entries may legitimately skip whole lanes before the
            # column-pruning layer sees them; the gate below covers those.
            if "prune_threshold" in entry and not label.endswith("[lb]")
        }
        if not pruned_entries:
            raise SystemExit(
                "--require-pruning: no pruned backend entries were measured "
                "(is --pruned-channels 0?)"
            )
        for label, entry in pruned_entries.items():
            if entry["cells_pruned"] <= 0:
                raise SystemExit(
                    f"--require-pruning: backend {label} advanced every cell "
                    f"(cells_pruned == 0); the pruning layer never engaged"
                )

    if args.require_lb:
        lb_entries = {
            label: entry
            for measured in _REPORTS.values()
            if isinstance(measured, dict) and "backends" in measured
            for label, entry in measured["backends"].items()
            if label.endswith("[lb]")
        }
        if not lb_entries:
            raise SystemExit(
                "--require-lb: no lane-gated backend entries were measured "
                "(is --lb-channels 0?)"
            )
        for label, entry in lb_entries.items():
            if entry["lanes_lb_skipped"] <= 0:
                raise SystemExit(
                    f"--require-lb: backend {label} dispatched every lane "
                    f"(lanes_lb_skipped == 0); the lane gate never fired"
                )

    if args.min_speedup is not None:
        for workload, measured in _REPORTS.items():
            if not (isinstance(measured, dict) and "backends" in measured):
                continue
            slowest = min(
                measured["backends"].items(),
                key=lambda item: item[1]["speedup_vs_scalar"],
            )
            if slowest[1]["speedup_vs_scalar"] < args.min_speedup:
                raise SystemExit(
                    f"{workload}: backend {slowest[0]} only reached "
                    f"{slowest[1]['speedup_vs_scalar']:.2f}x over the scalar loop "
                    f"(expected >= {args.min_speedup}x)"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
