"""Supplementary benchmark: scalar per-read loop vs the batched sDTW wavefront.

The batch execution engine's argument is that one ``(channels, reference)``
matrix operation per wavefront step beats ``channels`` separate
``(reference,)`` operations issued from a Python loop — the same reason the
accelerator advances all alignments in lockstep. This benchmark replays an
identical chunk-round workload through both paths, checks the costs are
bit-identical, and reports wavefront throughput (DP cells per second) for two
deployment geometries:

* ``amplicon`` — a qPCR-assay-scale target (~100 bp, both strands) across a
  large channel count. Here each scalar kernel call does little arithmetic,
  so the per-read Python loop is overhead-dominated and lockstep batching
  pays maximally. This is the gated workload (``BATCH_SDTW_MIN_SPEEDUP``,
  default 5x).
* ``genome`` — a lambda-phage-scale reference, where every kernel call is
  memory-bandwidth-bound and batching's win shrinks to the int32 data path
  and pass-count savings (reported, not gated).

Emits a machine-readable JSON report (``BATCH_SDTW_JSON`` chooses the path;
unset or ``-`` prints to stdout only). Tunables: ``BATCH_SDTW_CHANNELS``,
``BATCH_SDTW_ROUNDS``, ``BATCH_SDTW_CHUNK``, ``BATCH_SDTW_MIN_SPEEDUP``
(the CI smoke invocation relaxes the gate — shared runners vary too much for
a hard 5x assertion there).
"""

import json
import os
import time

import numpy as np
import pytest
from _bench_utils import print_rows

from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import sdtw_resume
from repro.genomes.sequences import random_genome

CHANNELS = int(os.environ.get("BATCH_SDTW_CHANNELS", "256"))
ROUNDS = int(os.environ.get("BATCH_SDTW_ROUNDS", "2"))
CHUNK_SAMPLES = int(os.environ.get("BATCH_SDTW_CHUNK", "250"))
MIN_SPEEDUP = float(os.environ.get("BATCH_SDTW_MIN_SPEEDUP", "5.0"))

_REPORTS = {}


def _chunk_rounds(rng, n_channels, n_rounds, chunk_samples):
    """Quantized query chunks per round per channel (ragged final round)."""
    rounds = []
    for round_index in range(n_rounds):
        chunks = []
        for _ in range(n_channels):
            length = chunk_samples
            if round_index == n_rounds - 1:
                length = int(rng.integers(1, chunk_samples + 1))
            chunks.append(rng.integers(-127, 128, size=length, dtype=np.int64))
        rounds.append(chunks)
    return rounds


def _measure(reference, n_channels):
    config = SDTWConfig.hardware()
    rng = np.random.default_rng(20211025)
    rounds = _chunk_rounds(rng, n_channels, ROUNDS, CHUNK_SAMPLES)
    total_samples = sum(chunk.size for round_chunks in rounds for chunk in round_chunks)
    dp_cells = total_samples * reference.size

    # Scalar path: what the pipeline's per-read fallback does — one
    # sdtw_resume call per channel per chunk round.
    start = time.perf_counter()
    states = {}
    for round_chunks in rounds:
        for channel, chunk in enumerate(round_chunks):
            states[channel] = sdtw_resume(chunk, reference, config, state=states.get(channel))
    scalar_s = time.perf_counter() - start

    # Batched path: one engine step per round across all channels.
    engine = BatchSDTWEngine(reference, config)
    start = time.perf_counter()
    for round_chunks in rounds:
        snapshots = engine.step(list(enumerate(round_chunks)))
    batch_s = time.perf_counter() - start

    # Same work, bit-identical outcome.
    for channel, state in states.items():
        assert snapshots[channel].cost == state.cost
        assert np.array_equal(engine.state_of(channel).row, state.row)

    return {
        "channels": n_channels,
        "rounds": ROUNDS,
        "chunk_samples": CHUNK_SAMPLES,
        "reference_samples": int(reference.size),
        "dp_cells": int(dp_cells),
        "scalar_seconds": scalar_s,
        "batched_seconds": batch_s,
        "scalar_cells_per_s": dp_cells / scalar_s,
        "batched_cells_per_s": dp_cells / batch_s,
        "speedup": scalar_s / batch_s,
    }


def _emit():
    payload = json.dumps(_REPORTS, indent=2, sort_keys=True)
    destination = os.environ.get("BATCH_SDTW_JSON", "-")
    if destination and destination != "-":
        with open(destination, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    print_rows(
        "Batched sDTW wavefront vs per-read scalar loop",
        [
            {
                "workload": name,
                "channels": report["channels"],
                "reference": report["reference_samples"],
                "scalar_Mcells_s": report["scalar_cells_per_s"] / 1e6,
                "batched_Mcells_s": report["batched_cells_per_s"] / 1e6,
                "speedup": report["speedup"],
            }
            for name, report in _REPORTS.items()
        ],
    )


def test_batch_wavefront_throughput_amplicon():
    """Gated workload: short amplicon target, full-flowcell channel count."""
    reference = ReferenceSquiggle.from_genome(random_genome(100, seed=3)).values(quantized=True)
    report = _measure(reference, CHANNELS)
    _REPORTS["amplicon"] = report
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"batched wavefront only {report['speedup']:.2f}x faster than the per-read "
        f"loop at {CHANNELS} channels x {reference.size}-sample reference "
        f"(expected >= {MIN_SPEEDUP}x)"
    )


def test_batch_wavefront_throughput_genome(lambda_reference):
    """Reported workload: lambda-scale reference (memory-bound regime)."""
    reference = lambda_reference.values(quantized=True)
    report = _measure(reference, min(CHANNELS, 64))
    _REPORTS["genome"] = report
    _emit()
    # In the bandwidth-bound regime the win is smaller; batching must still
    # never be slower than the loop it replaces.
    assert report["speedup"] >= 1.0
