"""Figure 19 — filter accuracy is robust to mutations in the sequenced strain."""

from _bench_utils import print_rows

from repro.analysis.sweeps import accuracy_sweep
from repro.core.filter import SquiggleFilter
from repro.genomes.mutate import mutated_reference_series
from repro.pore_model.synthesis import SquiggleSimulator
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture

PREFIX_SAMPLES = 1000
N_READS_PER_CLASS = 18
# Mutation counts as a fraction of the scaled genome, mirroring the paper's
# 0 to ~5000 mutations on the 48.5 kb lambda genome (0 to ~10 %).
MUTATION_COUNTS = (0, 5, 25, 60, 120, 240)


def test_fig19_reference_mutation_robustness(benchmark, lambda_bench, lambda_filter):
    """The filter keeps its reference; the sequenced strain drifts away."""
    reference_genome = lambda_bench.target_genome
    background_genome = lambda_bench.panel.background
    kmer_model = lambda_bench.kmer_model

    def regenerate():
        rows = []
        for count, mutated_genome in mutated_reference_series(
            reference_genome, MUTATION_COUNTS, seed=404
        ):
            mixture = SpecimenMixture.two_component(
                "strain", mutated_genome, "human", background_genome, target_fraction=0.5
            )
            generator = ReadGenerator(
                mixture,
                kmer_model=kmer_model,
                length_model=ReadLengthModel(mean_bases=400, sigma=0.2, min_bases=260, max_bases=800),
                seed=1000 + count,
            )
            reads = generator.generate_balanced(N_READS_PER_CLASS)
            sweep = accuracy_sweep(
                lambda_filter,
                [read.signal_pa for read in reads if read.is_target],
                [read.signal_pa for read in reads if not read.is_target],
                prefix_lengths=[PREFIX_SAMPLES],
                n_thresholds=41,
            )
            rows.append(
                {
                    "strain_mutations": count,
                    "mutation_fraction": count / len(reference_genome),
                    "max_f1": sweep.max_f1_by_prefix()[PREFIX_SAMPLES],
                }
            )
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_rows("Figure 19: accuracy vs mutations between strain and reference", rows)
    benchmark.extra_info["f1_by_mutations"] = {row["strain_mutations"]: row["max_f1"] for row in rows}

    baseline_f1 = rows[0]["max_f1"]
    # Paper: no significant accuracy loss until the strain differs by more
    # than ~1000 bases (~2% of the lambda genome). At the scaled equivalent
    # (up to ~2.5% here for the small counts) accuracy holds; only the largest
    # divergence (10%) may dip.
    assert baseline_f1 >= 0.9
    for row in rows:
        if row["mutation_fraction"] <= 0.025:
            assert row["max_f1"] >= baseline_f1 - 0.1
    assert rows[-1]["max_f1"] >= 0.5
