"""Table 3 — architectural specifications of the evaluated devices."""

from _bench_utils import print_rows

from repro.hardware.devices import DEVICES, device_table


def test_table3_device_specs(benchmark):
    rows = benchmark(device_table)
    print_rows("Table 3: evaluated device specifications", rows)
    names = {row["device"] for row in rows}
    benchmark.extra_info["devices"] = sorted(names)
    assert {"jetson_xavier", "arm_v8_2", "titan_xp", "xeon_e5_2697v3"} <= names
    assert len(rows) == len(DEVICES)
    titan = next(row for row in rows if row["device"] == "titan_xp")
    jetson = next(row for row in rows if row["device"] == "jetson_xavier")
    assert titan["cores"] == 3840 and jetson["cores"] == 512
