"""Table 2 — mutations between SARS-CoV-2 strains and the Wuhan reference."""

from _bench_utils import print_rows

from repro.genomes.references import build_reference_panel
from repro.genomes.strains import SARS_COV_2_CLADES, simulate_strain_panel, strain_mutation_table


def test_table2_strain_mutations(benchmark):
    panel = build_reference_panel(target="sars_cov_2", seed=7)
    reference = panel["sars_cov_2"]

    def regenerate():
        strains = simulate_strain_panel(reference, seed=11)
        return strain_mutation_table(reference, strains)

    rows = benchmark(regenerate)
    print_rows("Table 2: strain mutation counts vs reference", rows)
    benchmark.extra_info["max_mutations"] = max(row["mutations"] for row in rows)
    assert len(rows) == len(SARS_COV_2_CLADES)
    for row in rows:
        assert row["mutations"] == row["expected_mutations"]
    # The paper's takeaway: strains differ by only ~17-23 substitutions.
    assert max(row["mutations"] for row in rows) <= 23
