"""Figure 20 — flow cell health: Read Until pores recover after a nuclease wash."""

from _bench_utils import print_rows

from repro.sequencer.flowcell import FlowCell, FlowCellConfig, WashEvent

DURATION_HOURS = 12.0
WASH_HOURS = 6.0


def test_fig20_flowcell_wash_recovery(benchmark):
    flowcell = FlowCell(FlowCellConfig(blockage_rate_per_hour=0.15), seed=2021)

    def regenerate():
        traces = flowcell.simulate(
            DURATION_HOURS, washes=[WashEvent(time_hours=WASH_HOURS)], read_until_fraction=0.5
        )
        summary = flowcell.wash_recovery_gap(
            duration_hours=DURATION_HOURS, wash_time_hours=WASH_HOURS
        )
        return traces, summary

    traces, summary = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = []
    for hour in range(0, int(DURATION_HOURS) + 1, 2):
        rows.append(
            {
                "hours": hour,
                "control_active": traces["control"].at(float(hour)),
                "read_until_active": traces["read_until"].at(float(hour)),
            }
        )
    print_rows("Figure 20: active channels over time (wash at 6 h)", rows)
    print(f"normalized activity gap before wash: {summary['gap_before_wash']:+.3f}")
    print(f"normalized activity gap after wash : {summary['gap_after_wash']:+.3f}")
    benchmark.extra_info.update(summary)

    # Shape: pores degrade over time, the wash recovers them, and after the
    # wash the Read Until group is no worse off than the control group.
    assert traces["control"].at(5.75) < traces["control"].at(0.0)
    assert traces["control"].at(6.25) > traces["control"].at(5.75)
    assert abs(summary["gap_after_wash"]) < 0.12
