"""Related-work comparison (paper Section 8): UNCALLED-like raw-signal baseline.

The paper evaluates UNCALLED on 2000-sample chunks and reports that a
substantial fraction cannot be confidently aligned and that per-read latency
is orders of magnitude above the accelerator's. This bench reproduces the
comparison with the UNCALLED-like classifier (event segmentation + FM-index
seeding + seed clustering) against SquiggleFilter on the same reads.
"""

import time

from _bench_utils import print_rows

from repro.analysis.metrics import confusion_from_labels
from repro.baselines.uncalled import UncalledLikeClassifier
from repro.core.thresholds import choose_threshold

PREFIX_SAMPLES = 2000


def test_related_work_uncalled_comparison(benchmark, lambda_bench, lambda_filter):
    target_reads = lambda_bench.target_reads
    background_reads = lambda_bench.nontarget_reads
    all_reads = target_reads + background_reads
    classifier = UncalledLikeClassifier(
        lambda_bench.target_genome, kmer_model=lambda_bench.kmer_model
    )

    def evaluate():
        decisions = []
        per_read_seconds = []
        for read in all_reads:
            start = time.perf_counter()
            decisions.append(classifier.classify(read.signal_pa[:PREFIX_SAMPLES]))
            per_read_seconds.append(time.perf_counter() - start)
        return decisions, per_read_seconds

    decisions, per_read_seconds = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    truths = [read.is_target for read in all_reads]
    uncalled_confusion = confusion_from_labels(truths, [d.accept for d in decisions])
    unalignable = sum(1 for d in decisions if not d.confident) / len(decisions)

    # SquiggleFilter on the same reads with an F1-calibrated threshold.
    target_costs = [lambda_filter.cost(r.signal_pa, PREFIX_SAMPLES) for r in target_reads]
    background_costs = [lambda_filter.cost(r.signal_pa, PREFIX_SAMPLES) for r in background_reads]
    threshold = choose_threshold(target_costs, background_costs)
    sdtw_predictions = [cost <= threshold for cost in target_costs] + [
        cost <= threshold for cost in background_costs
    ]
    sdtw_confusion = confusion_from_labels(truths, sdtw_predictions)

    rows = [
        {
            "classifier": "uncalled_like",
            "f1": uncalled_confusion.f1,
            "recall": uncalled_confusion.recall,
            "fpr": uncalled_confusion.false_positive_rate,
            "unalignable_fraction": unalignable,
            "ms_per_read (python)": 1e3 * sum(per_read_seconds) / len(per_read_seconds),
        },
        {
            "classifier": "squigglefilter",
            "f1": sdtw_confusion.f1,
            "recall": sdtw_confusion.recall,
            "fpr": sdtw_confusion.false_positive_rate,
            "unalignable_fraction": 0.0,
            "ms_per_read (python)": float("nan"),
        },
    ]
    print_rows("Section 8: UNCALLED-like baseline vs SquiggleFilter (2000-sample chunks)", rows)
    benchmark.extra_info["uncalled_f1"] = uncalled_confusion.f1
    benchmark.extra_info["squigglefilter_f1"] = sdtw_confusion.f1
    benchmark.extra_info["unalignable_fraction"] = unalignable

    # Shape: SquiggleFilter classifies every chunk and is at least as accurate;
    # the event/FM-index baseline leaves some chunks undecided (the paper
    # measured 23.6% unalignable at this chunk size).
    assert sdtw_confusion.f1 >= uncalled_confusion.f1 - 0.02
    assert unalignable >= 0.0
    assert uncalled_confusion.recall <= 1.0
