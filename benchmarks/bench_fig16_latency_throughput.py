"""Figure 16 — classification latency and throughput: Guppy, Guppy-lite, SquiggleFilter."""

from _bench_utils import print_rows

from repro.basecall.performance import MINION_MAX_SAMPLES_PER_S
from repro.hardware.performance import (
    latency_comparison,
    speedup_over_baseline,
    throughput_comparison,
)

SARS_COV_2_BASES = 29_903
LAMBDA_BASES = 48_502


def test_fig16a_classification_latency(benchmark):
    rows = benchmark(latency_comparison, SARS_COV_2_BASES)
    print_rows("Figure 16a: Read Until classification latency", rows)
    by_name = {row["classifier"]: row for row in rows}
    benchmark.extra_info["squigglefilter_latency_ms"] = by_name["squigglefilter"]["latency_ms"]
    # Paper: Guppy > 1 s (>400 wasted bases), Guppy-lite 149 ms (~60 bases),
    # SquiggleFilter ~0.03 ms (not even one base).
    assert by_name["guppy@titan_xp"]["latency_ms"] > 1000
    assert by_name["guppy_lite@titan_xp"]["extra_bases_sequenced"] > 40
    assert by_name["squigglefilter"]["latency_ms"] < 0.05
    assert by_name["squigglefilter"]["extra_bases_sequenced"] < 1.0


def test_fig16b_classification_throughput(benchmark):
    rows = benchmark(throughput_comparison, LAMBDA_BASES)
    print_rows("Figure 16b: Read Until classification throughput", rows)
    by_name = {row["classifier"]: row for row in rows}
    speedup = speedup_over_baseline(LAMBDA_BASES)
    print(f"SquiggleFilter throughput vs edge-GPU Guppy-lite pipeline: {speedup:.0f}x "
          "(paper reports 274x)")
    benchmark.extra_info["speedup_vs_edge_gpu"] = speedup
    # Paper: the edge GPU covers only ~41.5% of a MinION; SquiggleFilter far
    # exceeds the sequencer's output.
    assert not by_name["guppy_lite@jetson_xavier"]["keeps_up_with_minion"]
    assert by_name["squigglefilter"]["keeps_up_with_minion"]
    assert by_name["squigglefilter"]["throughput_samples_per_s"] > 50 * MINION_MAX_SAMPLES_PER_S
    assert speedup > 100
