"""Figure 18 — accuracy ablation of the sDTW algorithm modifications."""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.analysis.sweeps import ablation_sweep
from repro.core.variants import ABLATION_VARIANTS, describe_variant


def test_fig18_sdtw_modification_ablation(benchmark, lambda_bench, lambda_reference):
    target_signals = lambda_bench.target_signals()
    nontarget_signals = lambda_bench.nontarget_signals()
    # Two prefix lengths keep the six-variant ablation affordable in pure Python.
    prefix_lengths = PREFIX_LENGTHS[:2]

    def regenerate():
        return ablation_sweep(
            lambda_reference,
            target_signals,
            nontarget_signals,
            prefix_lengths=prefix_lengths,
            variants=ABLATION_VARIANTS,
            n_thresholds=61,
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = []
    for name, scores in results.items():
        row = {"variant": name, "configuration": describe_variant(name)}
        for prefix, score in scores.items():
            row[f"max_f1@{prefix}"] = score
        rows.append(row)
    print_rows("Figure 18: maximal F1 per sDTW variant", rows)
    benchmark.extra_info["results"] = {
        name: {str(k): v for k, v in scores.items()} for name, scores in results.items()
    }

    longest = prefix_lengths[-1]
    vanilla = results["vanilla"][longest]
    squigglefilter = results["squigglefilter"][longest]
    all_approx = results["all_approximations"][longest]

    # Shape checks mirroring the paper's findings:
    # every variant is a usable classifier at the longer prefix,
    assert all(scores[longest] > 0.8 for scores in results.values())
    # the match bonus recovers the accuracy lost to the approximations,
    assert squigglefilter >= all_approx - 0.02
    # and the final configuration is competitive with vanilla sDTW.
    assert squigglefilter >= vanilla - 0.1
