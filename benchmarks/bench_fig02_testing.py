"""Figure 2 — progression of US COVID-19 testing capacity during 2020."""

from _bench_utils import print_rows

# `testing_history_table` is imported under an alias so pytest does not collect
# the library function (its name matches the test-discovery pattern).
from repro.data.testing_history import months_to_reach
from repro.data.testing_history import testing_history_table as us_testing_history_table


def test_fig02_testing_progression(benchmark):
    rows = benchmark(us_testing_history_table)
    print_rows("Figure 2: US daily COVID-19 tests per month (2020)", rows)
    ramp_months = months_to_reach(1_000_000)
    print(f"months from genome publication to 1M daily tests: {ramp_months}")
    benchmark.extra_info["months_to_1M_daily_tests"] = ramp_months
    assert rows[0]["daily_tests"] == 0
    assert rows[-1]["daily_tests"] > 1_000_000
    # The paper's motivation: mass testing took the better part of a year.
    assert ramp_months >= 9
