"""Design-choice ablation: single-stage vs multi-stage filtering (Section 4.6).

Not a numbered figure, but a design decision DESIGN.md calls out: the
multi-stage filter ejects clear non-targets after a short prefix and defers
only low-confidence reads, trading a little accuracy bookkeeping for less
wasted sequencing. This bench quantifies the effect on the scaled lambda
dataset with the analytical runtime model.
"""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.core.filter import MultiStageSquiggleFilter, SquiggleFilter
from repro.core.thresholds import choose_threshold
from repro.pipeline.runtime_model import ReadUntilModelConfig, runtime_from_decisions


def test_single_vs_multistage_filtering(benchmark, lambda_bench, lambda_reference):
    reads = lambda_bench.reads
    truths = [read.is_target for read in reads]
    target_signals = lambda_bench.target_signals()
    background_signals = lambda_bench.nontarget_signals()
    config = ReadUntilModelConfig(
        genome_length_bases=len(lambda_bench.target_genome),
        mean_target_read_bases=400.0,
        mean_background_read_bases=1200.0,
        decision_latency_s=4.3e-5,
    )

    def evaluate():
        rows = []
        # Single-stage filters, one per prefix length.
        for prefix in PREFIX_LENGTHS:
            squiggle_filter = SquiggleFilter(lambda_reference, prefix_samples=prefix)
            target_costs = [squiggle_filter.cost(s, prefix) for s in target_signals]
            background_costs = [squiggle_filter.cost(s, prefix) for s in background_signals]
            threshold = choose_threshold(target_costs, background_costs)
            squiggle_filter.threshold = threshold
            decisions = [squiggle_filter.classify(read.signal_pa) for read in reads]
            runtime = runtime_from_decisions(
                decisions, truths, config.with_(decision_prefix_samples=prefix)
            )
            ejected_early = sum(1 for d in decisions if not d.accept)
            rows.append(
                {
                    "filter": f"single-stage@{prefix}",
                    "runtime_minutes": runtime / 60.0,
                    "reads_ejected": ejected_early,
                    "mean_samples_to_eject": (
                        sum(d.samples_used for d in decisions if not d.accept) / max(ejected_early, 1)
                    ),
                }
            )
        # Multi-stage filter over the same prefix ladder.
        multistage = MultiStageSquiggleFilter.calibrated(
            lambda_reference, target_signals, background_signals, prefix_lengths=PREFIX_LENGTHS
        )
        decisions = multistage.classify_batch([read.signal_pa for read in reads])
        runtime = runtime_from_decisions(
            decisions, truths, config.with_(decision_prefix_samples=max(PREFIX_LENGTHS))
        )
        ejected = [d for d in decisions if not d.accept]
        rows.append(
            {
                "filter": "multi-stage",
                "runtime_minutes": runtime / 60.0,
                "reads_ejected": len(ejected),
                "mean_samples_to_eject": (
                    sum(d.samples_used for d in ejected) / max(len(ejected), 1)
                ),
            }
        )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_rows("Section 4.6 ablation: single-stage vs multi-stage filtering", rows)
    benchmark.extra_info["rows"] = rows

    multistage_row = rows[-1]
    longest_single = next(row for row in rows if row["filter"] == f"single-stage@{PREFIX_LENGTHS[-1]}")
    # The multi-stage filter ejects non-targets after less signal on average
    # than the longest single-stage filter, and its runtime is competitive
    # with the best single-stage configuration.
    assert multistage_row["mean_samples_to_eject"] <= longest_single["mean_samples_to_eject"]
    best_single_runtime = min(row["runtime_minutes"] for row in rows[:-1])
    assert multistage_row["runtime_minutes"] <= best_single_runtime * 1.3
