"""Figure 17a — Read Until classification accuracy across thresholds and prefixes."""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.analysis.sweeps import accuracy_sweep
from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.core.thresholds import sweep_thresholds


def test_fig17a_accuracy_sweep(benchmark, lambda_bench, lambda_filter):
    target_signals = lambda_bench.target_signals()
    nontarget_signals = lambda_bench.nontarget_signals()

    def regenerate():
        return accuracy_sweep(
            lambda_filter,
            target_signals,
            nontarget_signals,
            prefix_lengths=PREFIX_LENGTHS,
            n_thresholds=61,
        )

    sweep = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = [
        {
            "prefix_samples": entry.prefix_samples,
            "max_f1": entry.max_f1,
            "best_threshold": entry.best_threshold,
            "recall_at_best": entry.sweep.best_by_f1().recall,
            "fpr_at_best": entry.sweep.best_by_f1().false_positive_rate,
        }
        for entry in sweep
    ]

    # Baseline comparison: basecall + align on the same reads (the paper notes
    # it is slightly more accurate, which is expected from a mature aligner).
    baseline = BasecallAlignClassifier(lambda_bench.target_genome, prefix_samples=max(PREFIX_LENGTHS), seed=3)
    baseline_sweep = sweep_thresholds(
        baseline.accuracy_costs(lambda_bench.target_reads),
        baseline.accuracy_costs(lambda_bench.nontarget_reads),
        n_thresholds=61,
    )
    rows.append(
        {
            "prefix_samples": max(PREFIX_LENGTHS),
            "max_f1": baseline_sweep.max_f1(),
            "best_threshold": baseline_sweep.best_by_f1().threshold,
            "recall_at_best": baseline_sweep.best_by_f1().recall,
            "fpr_at_best": baseline_sweep.best_by_f1().false_positive_rate,
        }
    )
    rows[-1]["prefix_samples"] = f"{rows[-1]['prefix_samples']} (basecall+align)"
    print_rows("Figure 17a: accuracy by prefix length and classifier", rows)
    f1_by_prefix = sweep.max_f1_by_prefix()
    benchmark.extra_info["sdtw_max_f1"] = f1_by_prefix
    benchmark.extra_info["baseline_max_f1"] = baseline_sweep.max_f1()

    # Shape: accuracy is high and does not degrade with longer prefixes.
    assert f1_by_prefix[PREFIX_LENGTHS[-1]] >= 0.9
    assert f1_by_prefix[PREFIX_LENGTHS[-1]] >= f1_by_prefix[PREFIX_LENGTHS[0]] - 0.05
    # The basecall+align baseline is allowed to be at most marginally better.
    assert baseline_sweep.max_f1() <= f1_by_prefix[PREFIX_LENGTHS[-1]] + 0.1
