"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
import platform
from typing import Dict, List, Optional, Sequence


def host_block() -> Dict[str, object]:
    """The host description every benchmark report embeds.

    Committed ``BENCH_*.json`` files are only comparable against runs from
    the same machine class; this block records enough of the host (core
    count, platform, interpreter, numpy) to tell apart numbers that must
    not be compared.
    """
    import numpy as np

    return {
        "cpu_count": int(os.cpu_count() or 1),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def print_rows(
    title: str,
    rows: Sequence[Dict[str, object]],
    columns: Optional[List[str]] = None,
) -> None:
    """Render one regenerated table/figure as an aligned text table."""
    print(f"\n===== {title} =====")
    if not rows:
        print("(no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    header = " | ".join(f"{column:>22}" for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>22.4g}")
            else:
                cells.append(f"{str(value):>22}")
        print(" | ".join(cells))
