"""Streaming Read Until pipeline: registry classifiers through the chunk API.

Not a numbered figure, but the deployment mode the whole paper argues for:
every classifier plugged into the *same* chunk-driven Read Until session via
the ``repro.pipeline.api`` registry, so the comparison isolates what each
classifier does to pore time. SquiggleFilter decides at its prefix with ~43 us
latency, the multi-stage filter ejects clear non-targets on an early chunk,
and the basecall+align baseline pays its device decision latency in extra
sequenced samples per ejected read (the Section 7.2 latency argument).
"""

from _bench_utils import print_rows
from conftest import PREFIX_LENGTHS

from repro.core.filter import SquiggleFilter
from repro.core.thresholds import choose_threshold
from repro.pipeline.api import build_pipeline


def test_streaming_pipeline_by_registry(benchmark, lambda_bench, lambda_reference):
    reads = lambda_bench.reads
    target_signals = lambda_bench.target_signals()
    background_signals = lambda_bench.nontarget_signals()
    prefix = PREFIX_LENGTHS[1]
    early_prefix = PREFIX_LENGTHS[0]

    helper = SquiggleFilter(lambda_reference, prefix_samples=max(PREFIX_LENGTHS))

    def threshold_at(length, objective="f1"):
        return choose_threshold(
            [helper.cost(signal, length) for signal in target_signals],
            [helper.cost(signal, length) for signal in background_signals],
            objective=objective,
        )

    specs = {
        "squigglefilter": {
            "classifier": {
                "name": "squigglefilter",
                "reference": lambda_reference,
                "threshold": threshold_at(prefix),
                "prefix_samples": prefix,
            },
            "target_genome": lambda_bench.target_genome,
            "prefix_samples": prefix,
            "assemble": False,
        },
        "multistage": {
            "classifier": {
                "name": "multistage",
                "reference": lambda_reference,
                "stages": [
                    (early_prefix, threshold_at(early_prefix, "recall")),
                    (prefix, threshold_at(prefix)),
                ],
            },
            "target_genome": lambda_bench.target_genome,
            "assemble": False,
        },
        "basecall_align": {
            "classifier": {
                "name": "basecall_align",
                "params": {"prefix_samples": prefix, "seed": 9},
            },
            "target_genome": lambda_bench.target_genome,
            "prefix_samples": prefix,
            "assemble": False,
        },
    }

    def evaluate():
        rows = []
        for name, spec in specs.items():
            result = build_pipeline(spec).run(reads)
            rows.append(
                {
                    "classifier": name,
                    "recall": result.recall,
                    "false_positive_rate": result.false_positive_rate,
                    "decision_latency_ms": result.decision_latency_s * 1e3,
                    "mean_bg_samples": result.session.mean_nontarget_sequenced_samples,
                    "pore_minutes": result.runtime_s / 60.0,
                }
            )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print_rows("Streaming Read Until: registry classifiers, one chunk engine", rows)
    benchmark.extra_info["rows"] = rows

    by_name = {row["classifier"]: row for row in rows}
    # The latency argument must survive the simulation: SquiggleFilter's
    # ejected background reads consume no more pore samples than the
    # latency-burdened baseline's, and the multi-stage filter beats both.
    assert by_name["squigglefilter"]["mean_bg_samples"] <= by_name["basecall_align"]["mean_bg_samples"] + 1
    assert by_name["multistage"]["mean_bg_samples"] <= by_name["squigglefilter"]["mean_bg_samples"] + 1
    for row in rows:
        assert row["recall"] >= 0.7
