"""Asyncio load generator for the ``repro.serve`` classification service.

Replays seeded flowcells as ``N`` concurrent tenants, each an
:class:`~repro.serve.client.AsyncServeClient` driving its own closed-loop
Read Until replay (``repro.serve.workload.replay_flowcell_async``), and
reports throughput plus client-observed per-round latency percentiles
(p50/p95/p99) per client count.

Three correctness properties are asserted, not just measured:

* **Bit identity** — every tenant's served decision records must equal the
  decisions from replaying the same workload through a local
  :func:`~repro.runtime.open_session` (JSON floats round-trip float64
  exactly, so the wire adds nothing).
* **Backpressure, not loss** — a deliberately saturated pass (pool of one
  slot, tiny admission queue) must produce ``429`` retries **and** the same
  decisions with zero dropped rounds: saturation is admission control, not
  failure.
* **Clean service state** — ``/health`` stays green, the server's
  ``repro_serve_rounds_total`` counters account for every submitted round,
  and the per-phase ``repro_serve_round_phase_seconds`` series (fed by the
  sessions' flight recorders) is present; its per-phase totals land in the
  report under ``round_phases``.

Modes:

* default — spins up an in-process :class:`~repro.serve.BackgroundServer`
  (ephemeral port), sweeps ``--clients`` (default 1, 4, 8), then runs the
  saturation pass, and writes the committed ``BENCH_serve.json`` report when
  ``--json`` is given.
* ``--smoke`` — 2 clients, short reads, against an **external** server when
  ``--port`` is given (the CI job starts ``repro serve`` separately) or an
  in-process one otherwise; skips the saturation pass (pool geometry is the
  server's, not ours) but still asserts bit identity.

Example::

    PYTHONPATH=src python benchmarks/bench_serve.py --clients 1 4 8 \
        --json BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --port 8093
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import re
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from _bench_utils import host_block, print_rows

from repro.runtime import open_session
from repro.serve import BackgroundServer
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.workload import (
    TenantWorkload,
    build_tenant_workloads,
    replay_flowcell,
    replay_flowcell_async,
)


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (same convention as the server's /metrics)."""
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _baseline_decisions(workloads: Sequence[TenantWorkload]) -> List[Dict[str, Any]]:
    """Ground truth: replay every tenant through a local open_session."""
    baselines = []
    for workload in workloads:
        with open_session(workload.config) as session:
            decisions, rounds = replay_flowcell(session.submit, workload)
        baselines.append({"decisions": decisions, "rounds": rounds})
    return baselines


async def _run_tenant(
    host: str, port: int, workload: TenantWorkload
) -> Dict[str, Any]:
    """One tenant: create session, replay the flowcell, close, report."""
    client = AsyncServeClient(host, port)
    try:
        session_id = await client.create_session(workload.config)

        async def submit(chunks):
            actions, _meta = await client.submit_round(session_id, chunks)
            return actions

        decisions, rounds, latencies = await replay_flowcell_async(submit, workload)
        final = await client.close_session(session_id)
        return {
            "label": workload.label,
            "decisions": decisions,
            "rounds": rounds,
            "latencies": latencies,
            "backpressure_retries": client.backpressure_retries,
            "final_summary_label": final.get("label"),
        }
    finally:
        await client.close()


async def _run_fleet(
    host: str, port: int, workloads: Sequence[TenantWorkload]
) -> Dict[str, Any]:
    start = time.perf_counter()
    tenants = await asyncio.gather(
        *(_run_tenant(host, port, workload) for workload in workloads)
    )
    wall_s = time.perf_counter() - start
    return {"wall_s": wall_s, "tenants": list(tenants)}


def _check_identity(
    tenants: Sequence[Dict[str, Any]], baselines: Sequence[Dict[str, Any]]
) -> None:
    for tenant, baseline in zip(tenants, baselines):
        if tenant["decisions"] != baseline["decisions"]:
            raise AssertionError(
                f"served decisions diverge from local open_session for "
                f"tenant {tenant['label']!r}"
            )
        if tenant["rounds"] != baseline["rounds"]:
            raise AssertionError(
                f"tenant {tenant['label']!r} submitted {tenant['rounds']} "
                f"rounds but the local replay took {baseline['rounds']} — "
                "a round was dropped or duplicated"
            )


def _aggregate(
    clients: int, fleet: Dict[str, Any], baselines: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    tenants = fleet["tenants"]
    _check_identity(tenants, baselines)
    latencies = [value for tenant in tenants for value in tenant["latencies"]]
    rounds = sum(tenant["rounds"] for tenant in tenants)
    return {
        "clients": clients,
        "rounds": rounds,
        "wall_s": round(fleet["wall_s"], 4),
        "throughput_rounds_per_s": round(rounds / fleet["wall_s"], 3),
        "round_latency_p50_s": round(_percentile(latencies, 0.50), 5),
        "round_latency_p95_s": round(_percentile(latencies, 0.95), 5),
        "round_latency_p99_s": round(_percentile(latencies, 0.99), 5),
        "backpressure_retries": sum(
            tenant["backpressure_retries"] for tenant in tenants
        ),
        "bit_identical": True,  # _check_identity raised otherwise
    }


_PHASE_LABEL = re.compile(r'phase="([^"]*)"')


def _parse_phase_series(metrics: str) -> Dict[str, Dict[str, float]]:
    """Aggregate ``repro_serve_round_phase_seconds`` across sessions."""
    phases: Dict[str, Dict[str, float]] = {}
    for line in metrics.splitlines():
        if not line.startswith("repro_serve_round_phase_seconds_"):
            continue
        match = _PHASE_LABEL.search(line)
        if match is None:
            continue
        entry = phases.setdefault(match.group(1), {"seconds": 0.0, "observations": 0})
        value = float(line.rsplit(" ", 1)[1])
        if line.startswith("repro_serve_round_phase_seconds_sum{"):
            entry["seconds"] += value
        elif line.startswith("repro_serve_round_phase_seconds_count{"):
            entry["observations"] += int(value)
    return {
        phase: {
            "seconds": round(entry["seconds"], 6),
            "observations": int(entry["observations"]),
        }
        for phase, entry in sorted(phases.items())
    }


def _service_checks(host: str, port: int, expected_rounds: int) -> Dict[str, Any]:
    """Post-run /health and /metrics assertions (shared with --smoke)."""
    probe = ServeClient(host, port)
    try:
        health = probe.health()
        if health.get("status") not in ("ok", "draining"):
            raise AssertionError(f"/health not green: {health}")
        metrics = probe.metrics_text()
        served = 0
        for line in metrics.splitlines():
            if line.startswith("repro_serve_rounds_total{"):
                served += int(float(line.rsplit(" ", 1)[1]))
        if served < expected_rounds:
            raise AssertionError(
                f"/metrics accounts for {served} rounds, expected at least "
                f"{expected_rounds}"
            )
        phases = _parse_phase_series(metrics)
        if not phases:
            raise AssertionError(
                "/metrics exposes no repro_serve_round_phase_seconds series — "
                "served sessions should always run with the flight recorder on"
            )
        return {
            "health": health.get("status"),
            "metrics_rounds_total": served,
            "round_phases": phases,
        }
    finally:
        probe.close()


def _sweep(
    client_counts: Sequence[int],
    workload_kwargs: Dict[str, Any],
    max_concurrency: int,
    max_queue: int,
    external: Optional[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    all_workloads = build_tenant_workloads(max(client_counts), **workload_kwargs)
    baselines = _baseline_decisions(all_workloads)
    rows = []
    for clients in client_counts:
        workloads = all_workloads[:clients]
        if external is not None:
            host, port = external["host"], external["port"]
            fleet = asyncio.run(_run_fleet(host, port, workloads))
            row = _aggregate(clients, fleet, baselines[:clients])
            row.update(_service_checks(host, port, row["rounds"]))
        else:
            with BackgroundServer(
                max_concurrency=max_concurrency, max_queue=max_queue
            ) as server:
                fleet = asyncio.run(_run_fleet("127.0.0.1", server.port, workloads))
                row = _aggregate(clients, fleet, baselines[:clients])
                row.update(_service_checks("127.0.0.1", server.port, row["rounds"]))
        rows.append(row)
        print(
            f"  clients={clients}: {row['throughput_rounds_per_s']} rounds/s, "
            f"p50={row['round_latency_p50_s']}s p99={row['round_latency_p99_s']}s, "
            f"retries={row['backpressure_retries']}"
        )
    return rows


def _saturation_pass(
    clients: int, workload_kwargs: Dict[str, Any]
) -> Dict[str, Any]:
    """One slot, near-zero queue: saturation must retry, never drop."""
    workloads = build_tenant_workloads(clients, **workload_kwargs)
    baselines = _baseline_decisions(workloads)
    with BackgroundServer(max_concurrency=1, max_queue=2) as server:
        fleet = asyncio.run(_run_fleet("127.0.0.1", server.port, workloads))
        row = _aggregate(clients, fleet, baselines)
    row["max_concurrency"] = 1
    row["max_queue"] = 2
    if row["backpressure_retries"] == 0:
        raise AssertionError(
            "saturation pass produced zero 429 retries — the pool never "
            "pushed back (max_queue too large for this workload?)"
        )
    print(
        f"  saturation clients={clients}: {row['backpressure_retries']} "
        "backpressure retries, zero dropped rounds, decisions bit-identical"
    )
    return row


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=None,
        help="client counts to sweep (default: 1 4 8; --smoke: 2)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI run: 2 clients, small reads, no saturation pass",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="external server host (with --port)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="connect to an already-running server instead of spawning one",
    )
    parser.add_argument(
        "--reads", type=int, default=None, help="reads per tenant (default 6; smoke 3)"
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=2, help="in-process pool slots"
    )
    parser.add_argument(
        "--max-queue", type=int, default=32, help="in-process admission queue"
    )
    parser.add_argument(
        "--json", default=None, help="write the JSON report here (e.g. BENCH_serve.json)"
    )
    args = parser.parse_args(argv)

    client_counts = args.clients or ([2] if args.smoke else [1, 4, 8])
    reads = args.reads or (3 if args.smoke else 6)
    workload_kwargs = {"reads_per_tenant": reads, "n_channels": 4}
    external = {"host": args.host, "port": args.port} if args.port else None

    print(
        f"bench_serve: clients={client_counts} reads/tenant={reads} "
        + (f"external {args.host}:{args.port}" if external else "in-process server")
    )
    sweep_rows = _sweep(
        client_counts, workload_kwargs, args.max_concurrency, args.max_queue, external
    )

    report: Dict[str, Any] = {
        "host": host_block(),
        "workload": {
            "reads_per_tenant": reads,
            "n_channels": 4,
            "seed": 20210823,
            "smoke": bool(args.smoke),
        },
        "server": (
            {"mode": "external", "host": args.host, "port": args.port}
            if external
            else {
                "mode": "in-process",
                "max_concurrency": args.max_concurrency,
                "max_queue": args.max_queue,
            }
        ),
        "sweep": sweep_rows,
    }
    if not args.smoke and external is None:
        report["saturation"] = _saturation_pass(
            max(4, min(client_counts)), workload_kwargs
        )

    print_rows(
        "serve load sweep",
        sweep_rows,
        columns=[
            "clients",
            "rounds",
            "throughput_rounds_per_s",
            "round_latency_p50_s",
            "round_latency_p95_s",
            "round_latency_p99_s",
            "backpressure_retries",
            "bit_identical",
        ],
    )
    if args.json and args.json != "-":
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
