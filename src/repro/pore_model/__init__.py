"""Pore model substrate: 6-mer current table and squiggle synthesis."""

from repro.pore_model.kmer_model import KmerModel
from repro.pore_model.synthesis import SquiggleSimulator, SquiggleSynthesisConfig, synthesize_squiggle

__all__ = [
    "KmerModel",
    "SquiggleSimulator",
    "SquiggleSynthesisConfig",
    "synthesize_squiggle",
]
