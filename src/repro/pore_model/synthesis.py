"""Squiggle synthesis: generate raw nanopore current traces from sequences.

Real squiggles differ from the expected current profile in four ways the
paper calls out (Section 4.2, Figure 8):

* each base dwells in the pore for a variable number of samples (the MinION
  averages ~10 samples/base but the translocation rate varies per read and
  per base),
* thermal/electrical noise perturbs each sample,
* per-pore bias voltage differences shift and scale the whole read, and
* a stretch of open-pore / adapter signal precedes the genomic signal.

:class:`SquiggleSimulator` models each of these so the normalizer and sDTW
filter are exercised by the same effects they must be robust to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.pore_model.kmer_model import KmerModel


@dataclass
class SquiggleSynthesisConfig:
    """Parameters of the squiggle generator.

    ``samples_per_base`` is the mean dwell time; ``dwell_dispersion`` controls
    how much the per-base dwell varies around it (0 disables dwell jitter).
    ``translocation_rate_spread`` is the per-read multiplicative variation of
    the mean dwell, modelling slow and fast reads. ``noise_pa`` is the
    per-sample Gaussian noise. ``scale_spread``/``offset_spread_pa`` model
    per-pore gain and bias-voltage differences. ``adapter_samples`` prepends
    non-genomic stalling signal.
    """

    samples_per_base: float = 10.0
    dwell_dispersion: float = 0.35
    min_dwell: int = 4
    max_dwell: int = 25
    translocation_rate_spread: float = 0.15
    noise_pa: float = 2.0
    scale_spread: float = 0.08
    offset_spread_pa: float = 6.0
    adapter_samples: int = 0
    adapter_level_pa: float = 110.0

    def __post_init__(self) -> None:
        if self.samples_per_base <= 0:
            raise ValueError("samples_per_base must be positive")
        if self.min_dwell < 1:
            raise ValueError("min_dwell must be at least 1")
        if self.max_dwell < self.min_dwell:
            raise ValueError("max_dwell must be >= min_dwell")
        if self.noise_pa < 0:
            raise ValueError("noise_pa must be non-negative")
        if self.adapter_samples < 0:
            raise ValueError("adapter_samples must be non-negative")
        for name in ("dwell_dispersion", "translocation_rate_spread", "scale_spread"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class SynthesizedSquiggle:
    """A generated squiggle and the ground truth it was generated from."""

    current_pa: np.ndarray
    dwell_times: np.ndarray
    scale: float
    offset_pa: float
    translocation_factor: float
    sequence: str

    @property
    def samples_per_base(self) -> float:
        if self.dwell_times.size == 0:
            return 0.0
        return float(self.dwell_times.mean())

    def __len__(self) -> int:
        return int(self.current_pa.size)


class SquiggleSimulator:
    """Generate raw squiggles for sequences under a :class:`KmerModel`."""

    def __init__(
        self,
        kmer_model: Optional[KmerModel] = None,
        config: Optional[SquiggleSynthesisConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.kmer_model = kmer_model if kmer_model is not None else KmerModel()
        self.config = config if config is not None else SquiggleSynthesisConfig()
        self._rng = np.random.default_rng(seed)

    def simulate(
        self,
        sequence: str,
        rng: Optional[np.random.Generator] = None,
    ) -> SynthesizedSquiggle:
        """Generate one squiggle for ``sequence``.

        The sequence must be at least ``k`` bases long so there is at least
        one k-mer context.
        """
        generator = rng if rng is not None else self._rng
        config = self.config
        expected = self.kmer_model.expected_signal(sequence)

        translocation_factor = 1.0
        if config.translocation_rate_spread > 0:
            translocation_factor = float(
                np.exp(generator.normal(0.0, config.translocation_rate_spread))
            )
        mean_dwell = config.samples_per_base * translocation_factor

        dwell_times = self._draw_dwell_times(expected.size, mean_dwell, generator)
        levels = np.repeat(expected, dwell_times)

        if config.noise_pa > 0:
            levels = levels + generator.normal(0.0, config.noise_pa, size=levels.size)

        scale = 1.0
        if config.scale_spread > 0:
            scale = float(np.exp(generator.normal(0.0, config.scale_spread)))
        offset = 0.0
        if config.offset_spread_pa > 0:
            offset = float(generator.normal(0.0, config.offset_spread_pa))
        levels = levels * scale + offset

        if config.adapter_samples > 0:
            adapter = np.full(config.adapter_samples, config.adapter_level_pa, dtype=np.float64)
            if config.noise_pa > 0:
                adapter = adapter + generator.normal(0.0, config.noise_pa, size=adapter.size)
            levels = np.concatenate([adapter, levels])

        return SynthesizedSquiggle(
            current_pa=levels,
            dwell_times=dwell_times,
            scale=scale,
            offset_pa=offset,
            translocation_factor=translocation_factor,
            sequence=sequence,
        )

    def _draw_dwell_times(
        self,
        n_positions: int,
        mean_dwell: float,
        generator: np.random.Generator,
    ) -> np.ndarray:
        config = self.config
        if config.dwell_dispersion <= 0:
            dwell = np.full(n_positions, int(round(mean_dwell)), dtype=np.int64)
        else:
            # Log-normal dwell: strictly positive, right-skewed like real data.
            sigma = config.dwell_dispersion
            mu = np.log(mean_dwell) - 0.5 * sigma * sigma
            dwell = np.rint(np.exp(generator.normal(mu, sigma, size=n_positions))).astype(np.int64)
        return np.clip(dwell, config.min_dwell, config.max_dwell)


def synthesize_squiggle(
    sequence: str,
    kmer_model: Optional[KmerModel] = None,
    config: Optional[SquiggleSynthesisConfig] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Convenience wrapper returning only the raw current trace for ``sequence``."""
    simulator = SquiggleSimulator(kmer_model=kmer_model, config=config, seed=seed)
    return simulator.simulate(sequence).current_pa


def ideal_squiggle(
    sequence: str,
    kmer_model: Optional[KmerModel] = None,
    samples_per_base: int = 10,
) -> Tuple[np.ndarray, np.ndarray]:
    """Noise-free squiggle with constant dwell (used for unit tests and figures).

    Returns the repeated expected levels and the per-position dwell times.
    """
    if samples_per_base <= 0:
        raise ValueError("samples_per_base must be positive")
    model = kmer_model if kmer_model is not None else KmerModel()
    expected = model.expected_signal(sequence)
    dwell = np.full(expected.size, samples_per_base, dtype=np.int64)
    return np.repeat(expected, dwell), dwell
