"""k-mer pore model: expected nanopore current per k-mer context.

The MinION's measured current at any instant is determined by the 5-6 bases
inside the pore. ONT publishes a lookup table mapping each 6-mer to its
expected current in picoamps (the ``kmer_models`` repository cited by the
paper). That table is not available offline, so :class:`KmerModel` builds a
deterministic surrogate: every 6-mer maps to a reproducible pseudo-random
level drawn from a distribution with ONT-like statistics (mean ~90 pA,
standard deviation ~12 pA). The sDTW filter only depends on the *relative*
structure of the expected-current sequence, which this surrogate preserves.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.genomes.sequences import BASES, validate_sequence

_BASE_TO_INDEX = {base: index for index, base in enumerate(BASES)}


class KmerModel:
    """Deterministic k-mer to expected-current lookup table.

    Parameters
    ----------
    k:
        Context length (ONT R9.4.1 DNA models use 6).
    mean_current, current_spread:
        Target mean and standard deviation of the level distribution in pA.
    seed:
        Seed for the deterministic table. Two models built with the same
        ``(k, seed)`` are identical, mirroring a fixed published table.
    """

    def __init__(
        self,
        k: int = 6,
        mean_current: float = 90.0,
        current_spread: float = 12.0,
        seed: int = 941,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if k > 10:
            raise ValueError(f"k larger than 10 would require a {4 ** k}-entry table")
        if current_spread <= 0:
            raise ValueError(f"current_spread must be positive, got {current_spread}")
        self.k = k
        self.mean_current = float(mean_current)
        self.current_spread = float(current_spread)
        self.seed = seed
        generator = np.random.default_rng(seed)
        # Gaussian levels, clipped to a physical range, then exactly
        # standardized so the table statistics match the requested ones.
        raw = generator.normal(0.0, 1.0, size=4 ** k)
        raw = (raw - raw.mean()) / raw.std()
        self._levels = mean_current + current_spread * raw
        self._levels = np.clip(self._levels, 40.0, 160.0)

    @property
    def table_size(self) -> int:
        """Number of k-mers in the table."""
        return int(self._levels.size)

    def kmer_index(self, kmer: str) -> int:
        """Map a k-mer string to its table index (base-4 encoding)."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {kmer!r}")
        index = 0
        for base in kmer:
            if base not in _BASE_TO_INDEX:
                raise ValueError(f"k-mer contains invalid base {base!r}")
            index = index * 4 + _BASE_TO_INDEX[base]
        return index

    def level(self, kmer: str) -> float:
        """Expected current (pA) for a single k-mer."""
        return float(self._levels[self.kmer_index(kmer)])

    def levels(self) -> np.ndarray:
        """The full level table (copy)."""
        return self._levels.copy()

    def sequence_indices(self, sequence: str) -> np.ndarray:
        """Vectorized k-mer indices for every position of ``sequence``.

        Positions containing ``N`` are mapped to index 0 (their level is an
        arbitrary but deterministic placeholder, as in real pipelines where
        ambiguous bases are rare).
        """
        upper = validate_sequence(sequence)
        if len(upper) < self.k:
            raise ValueError(
                f"sequence of length {len(upper)} is shorter than k={self.k}"
            )
        codes = np.zeros(len(upper), dtype=np.int64)
        for base, value in _BASE_TO_INDEX.items():
            codes[np.frombuffer(upper.encode("ascii"), dtype=np.uint8) == ord(base)] = value
        n_kmers = len(upper) - self.k + 1
        indices = np.zeros(n_kmers, dtype=np.int64)
        for offset in range(self.k):
            indices = indices * 4 + codes[offset : offset + n_kmers]
        return indices

    def expected_signal(self, sequence: str) -> np.ndarray:
        """Expected current profile (one level per k-mer position) for a sequence.

        This is the "reference squiggle" construction of paper Section 4.1
        (Figure 7), before normalization.
        """
        return self._levels[self.sequence_indices(sequence)]

    def as_dict(self) -> Dict[str, float]:
        """Materialize the table as a k-mer -> level dictionary.

        Only practical for small ``k`` (tests use k=3); the default 6-mer
        table has 4096 entries which is still fine.
        """
        table: Dict[str, float] = {}
        for index in range(self.table_size):
            kmer = self._index_to_kmer(index)
            table[kmer] = float(self._levels[index])
        return table

    def _index_to_kmer(self, index: int) -> str:
        if not 0 <= index < self.table_size:
            raise ValueError(f"index {index} out of range for {self.table_size}-entry table")
        bases = []
        for _ in range(self.k):
            bases.append(BASES[index % 4])
            index //= 4
        return "".join(reversed(bases))

    def statistics(self) -> Dict[str, float]:
        """Summary statistics of the level table (used in tests and docs)."""
        return {
            "mean": float(self._levels.mean()),
            "std": float(self._levels.std()),
            "min": float(self._levels.min()),
            "max": float(self._levels.max()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"KmerModel(k={self.k}, mean_current={self.mean_current}, "
            f"current_spread={self.current_spread}, seed={self.seed})"
        )


def default_model(seed: Optional[int] = None) -> KmerModel:
    """The shared 6-mer model used across experiments unless overridden."""
    return KmerModel(k=6, seed=941 if seed is None else seed)
