"""Multi-target reference panels.

The paper's detector is programmed with a single virus, but nothing in the
design restricts it to one: the reference buffer simply holds whatever
expected-signal profile is loaded, and several small genomes fit in the same
100 KB budget that one SARS-CoV-2 genome occupies. :class:`ReferencePanelFilter`
aligns each read prefix against a panel of reference squiggles (e.g. a
respiratory panel of SARS-CoV-2 + influenza + RSV) and reports the best
match, enabling the "programmable detector" deployment scenario the paper's
introduction describes with several candidate viruses loaded at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.filter import SquiggleFilter
from repro.core.normalization import NormalizationConfig
from repro.core.reference import ReferenceSquiggle
from repro.pore_model.kmer_model import KmerModel


@dataclass
class PanelDecision:
    """Outcome of classifying one read against the whole panel."""

    accept: bool
    best_target: Optional[str]
    best_cost: float
    costs: Dict[str, float]
    samples_used: int

    def cost_margin(self) -> float:
        """Gap between the best and second-best target costs (confidence proxy)."""
        if len(self.costs) < 2:
            return float("inf")
        ordered = sorted(self.costs.values())
        return ordered[1] - ordered[0]


class ReferencePanelFilter:
    """Classify reads against several target genomes at once."""

    def __init__(
        self,
        genomes: Dict[str, str],
        kmer_model: Optional[KmerModel] = None,
        config: Optional[SDTWConfig] = None,
        normalization: NormalizationConfig = NormalizationConfig(),
        prefix_samples: int = 2000,
        reference_buffer_kb: float = 100.0,
    ) -> None:
        if not genomes:
            raise ValueError("panel requires at least one target genome")
        self.kmer_model = kmer_model if kmer_model is not None else KmerModel()
        self.config = config if config is not None else SDTWConfig.hardware()
        self.prefix_samples = prefix_samples
        self.thresholds: Dict[str, float] = {}
        self._filters: Dict[str, SquiggleFilter] = {}
        total_buffer_bytes = 0
        for name, genome in genomes.items():
            reference = ReferenceSquiggle.from_genome(
                genome, kmer_model=self.kmer_model, normalization=normalization
            )
            total_buffer_bytes += reference.buffer_bytes()
            self._filters[name] = SquiggleFilter(
                reference,
                config=self.config,
                normalization=normalization,
                prefix_samples=prefix_samples,
            )
        if total_buffer_bytes > reference_buffer_kb * 1024:
            raise ValueError(
                f"panel needs {total_buffer_bytes / 1024:.1f} KB of reference buffer, "
                f"more than the provisioned {reference_buffer_kb:.0f} KB"
            )

    @property
    def target_names(self) -> List[str]:
        return list(self._filters.keys())

    def filter_for(self, name: str) -> SquiggleFilter:
        return self._filters[name]

    # -------------------------------------------------------------- calibration
    def calibrate(
        self,
        target_signals: Dict[str, Sequence[np.ndarray]],
        background_signals: Sequence[np.ndarray],
        objective: str = "f1",
    ) -> Dict[str, float]:
        """Calibrate one ejection threshold per panel member.

        ``target_signals`` maps panel member names to reads known to come from
        that virus; every member is calibrated against the shared background.
        """
        for name, signals in target_signals.items():
            if name not in self._filters:
                raise KeyError(f"unknown panel member {name!r}")
            threshold = self._filters[name].calibrate(
                signals, background_signals, objective=objective
            )
            self.thresholds[name] = threshold
        return dict(self.thresholds)

    # -------------------------------------------------------------- classification
    def classify(self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None) -> PanelDecision:
        """Align one read prefix against every panel member.

        The read is accepted when its best-matching member's cost is at or
        below that member's threshold (all members must be calibrated first).
        """
        if not self.thresholds or set(self.thresholds) != set(self._filters):
            raise ValueError("panel is not fully calibrated; call calibrate() first")
        used = prefix_samples if prefix_samples is not None else self.prefix_samples
        costs: Dict[str, float] = {}
        for name, squiggle_filter in self._filters.items():
            costs[name] = squiggle_filter.cost(raw_signal, used)
        best_target = min(costs, key=costs.get)
        best_cost = costs[best_target]
        accept = best_cost <= self.thresholds[best_target]
        samples_used = min(int(np.asarray(raw_signal).size), used)
        return PanelDecision(
            accept=accept,
            best_target=best_target if accept else None,
            best_cost=best_cost,
            costs=costs,
            samples_used=samples_used,
        )

    def classify_batch(
        self, signals: Sequence[np.ndarray], prefix_samples: Optional[int] = None
    ) -> List[PanelDecision]:
        return [self.classify(signal, prefix_samples) for signal in signals]

    def identification_accuracy(
        self,
        labelled_signals: Sequence[tuple],
        prefix_samples: Optional[int] = None,
    ) -> float:
        """Fraction of reads attributed to their true panel member.

        ``labelled_signals`` holds (true_member_name_or_None, signal) pairs;
        ``None`` marks background reads, which are counted correct when the
        panel rejects them.
        """
        if not labelled_signals:
            return 0.0
        correct = 0
        for truth, signal in labelled_signals:
            decision = self.classify(signal, prefix_samples)
            if truth is None:
                correct += 0 if decision.accept else 1
            else:
                correct += 1 if decision.accept and decision.best_target == truth else 0
        return correct / len(labelled_signals)
