"""Multi-target reference panels.

The paper's detector is programmed with a single virus, but nothing in the
design restricts it to one: the reference buffer simply holds whatever
expected-signal profile is loaded, and several small genomes fit in the same
100 KB budget that one SARS-CoV-2 genome occupies.

:class:`TargetPanel` is the first-class representation of that buffer: N
named reference squiggles, each normalized and quantized **once** at
construction, laid out in one concatenated column space with per-target
offsets. Every layer of the stack consumes it — the sDTW kernels advance the
whole panel in one wavefront (block boundaries sever the diagonal, so each
target's columns are bit-identical to an independent single-reference run;
see ``block_starts`` in :func:`repro.core.sdtw.sdtw_resume_batch`), the
execution backends reduce costs per target, and the filters/classifiers
report which target a read matched. A single reference is just a 1-entry
panel (:meth:`TargetPanel.coerce`), so single-target call sites keep working
unchanged.

:class:`ReferencePanelFilter` is the per-target-threshold classifier built on
top: it calibrates one ejection threshold per panel member and attributes
each accepted read to its best-matching member, enabling the "programmable
detector" deployment scenario the paper's introduction describes with several
candidate viruses loaded at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.normalization import NormalizationConfig
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import lb_envelopes, reduce_block_minima
from repro.pore_model.kmer_model import KmerModel

if TYPE_CHECKING:  # repro.core.filter imports this module; keep the cycle type-only
    from repro.core.filter import SquiggleFilter


class TargetPanel:
    """N named reference squiggles in one concatenated column space.

    The panel is immutable after construction: normalization and quantization
    happen once per member (each member on its own, exactly as an independent
    :class:`~repro.core.filter.SquiggleFilter` would), and the concatenated
    kernel-scale arrays are cached. ``offsets`` are the per-target column
    starts — the ``block_starts`` every kernel and backend consumes.

    All members must share one :class:`NormalizationConfig`: query chunks are
    normalized once and aligned against every target, which is only
    meaningful when the targets live on the same signal scale.
    """

    def __init__(
        self,
        references: Union[Mapping[str, ReferenceSquiggle], Iterable[Tuple[str, ReferenceSquiggle]]],
    ) -> None:
        items = list(references.items()) if isinstance(references, Mapping) else list(references)
        if not items:
            raise ValueError("a panel requires at least one target reference")
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise ValueError(f"panel target names must be unique, got {names}")
        self._references: Dict[str, ReferenceSquiggle] = dict(items)
        self.names: Tuple[str, ...] = tuple(names)
        first = items[0][1]
        for name, reference in items:
            if reference.normalization != first.normalization:
                raise ValueError(
                    f"panel member {name!r} uses a different NormalizationConfig; "
                    "all targets must share one so queries normalize identically"
                )
        lengths = np.fromiter(
            (ref.n_positions for _, ref in items), dtype=np.int64, count=len(items)
        )
        self.lengths: np.ndarray = lengths
        self.offsets: np.ndarray = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
        self._values = {
            quantized: np.concatenate([ref.values(quantized=quantized) for _, ref in items])
            for quantized in (False, True)
        }
        # Per-member value envelopes for the sDTW lower-bound cascade, built
        # once like the concatenated buffers (the gate reads them every round).
        self._lb_envelopes = {
            quantized: lb_envelopes(self._values[quantized], self.offsets)
            for quantized in (False, True)
        }

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_genomes(
        cls,
        genomes: Mapping[str, str],
        kmer_model: Optional[KmerModel] = None,
        include_reverse_complement: bool = True,
        normalization: NormalizationConfig = NormalizationConfig(),
    ) -> "TargetPanel":
        """Build one reference squiggle per named genome and panel them."""
        model = kmer_model if kmer_model is not None else KmerModel()
        return cls(
            (
                name,
                ReferenceSquiggle.from_genome(
                    genome,
                    kmer_model=model,
                    include_reverse_complement=include_reverse_complement,
                    normalization=normalization,
                ),
            )
            for name, genome in genomes.items()
        )

    @classmethod
    def single(cls, reference: ReferenceSquiggle, name: str = "target") -> "TargetPanel":
        """The 1-entry panel a plain single-reference filter is a special case of."""
        return cls([(name, reference)])

    @classmethod
    def coerce(cls, reference: Union["TargetPanel", ReferenceSquiggle]) -> "TargetPanel":
        """Adapter for call sites that accept either a panel or one reference."""
        if isinstance(reference, TargetPanel):
            return reference
        if isinstance(reference, ReferenceSquiggle):
            return cls.single(reference)
        raise TypeError(
            f"expected a TargetPanel or ReferenceSquiggle, got {type(reference).__name__}"
        )

    # -------------------------------------------------------------- structure
    @property
    def n_targets(self) -> int:
        return len(self.names)

    @property
    def primary(self) -> ReferenceSquiggle:
        """The first member — what legacy ``.reference`` accessors see."""
        return self._references[self.names[0]]

    @property
    def normalization(self) -> NormalizationConfig:
        return self.primary.normalization

    def __len__(self) -> int:
        """Total columns of the concatenated reference space."""
        return int(self.lengths.sum())

    @property
    def n_positions(self) -> int:
        return len(self)

    def reference_for(self, name: str) -> ReferenceSquiggle:
        return self._references[name]

    def slices(self) -> List[Tuple[str, slice]]:
        """Per-target column ranges inside the concatenated space."""
        bounds = np.append(self.offsets, len(self))
        return [
            (name, slice(int(bounds[index]), int(bounds[index + 1])))
            for index, name in enumerate(self.names)
        ]

    def values(self, quantized: bool) -> np.ndarray:
        """Concatenated kernel-scale profile (cached; built once)."""
        return self._values[bool(quantized)]

    def lb_envelopes(self, quantized: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Per-member ``(mins, maxs)`` value envelopes (cached; built once).

        Ordered like :attr:`names` — the reference side of the lower-bound
        cascade (:func:`repro.core.sdtw.lb_keogh_bounds`).
        """
        return self._lb_envelopes[bool(quantized)]

    # -------------------------------------------------------------- reductions
    def reduce_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-target ``(costs, ends)`` of stacked DP rows over this panel.

        End positions are local to each target's own reference, matching what
        N independent single-reference runs would report.
        """
        return reduce_block_minima(rows, self.offsets)

    # ------------------------------------------------------------------ budget
    def buffer_bytes(self, bytes_per_sample: int = 2) -> int:
        """On-chip reference-buffer footprint of the whole panel."""
        return sum(
            self._references[name].buffer_bytes(bytes_per_sample) for name in self.names
        )

    def fits_buffer(self, buffer_kb: float = 100.0, bytes_per_sample: int = 2) -> bool:
        return self.buffer_bytes(bytes_per_sample) <= buffer_kb * 1024

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        members = ", ".join(
            f"{name}:{int(length)}" for name, length in zip(self.names, self.lengths)
        )
        return f"TargetPanel({members})"


@dataclass
class PanelDecision:
    """Outcome of classifying one read against the whole panel."""

    accept: bool
    best_target: Optional[str]
    best_cost: float
    costs: Dict[str, float]
    samples_used: int

    def cost_margin(self) -> float:
        """Gap between the best and second-best target costs (confidence proxy)."""
        if len(self.costs) < 2:
            return float("inf")
        ordered = sorted(self.costs.values())
        return ordered[1] - ordered[0]


class ReferencePanelFilter:
    """Classify reads against several target genomes at once.

    Built on one shared :class:`TargetPanel` (references normalized and
    quantized once); classification runs per member through single-reference
    :class:`SquiggleFilter` views so every member keeps its own calibrated
    ejection threshold.
    """

    def __init__(
        self,
        genomes: Dict[str, str],
        kmer_model: Optional[KmerModel] = None,
        config: Optional[SDTWConfig] = None,
        normalization: NormalizationConfig = NormalizationConfig(),
        prefix_samples: int = 2000,
        reference_buffer_kb: float = 100.0,
    ) -> None:
        from repro.core.filter import SquiggleFilter  # deferred: filter imports this module

        if not genomes:
            raise ValueError("panel requires at least one target genome")
        self.kmer_model = kmer_model if kmer_model is not None else KmerModel()
        self.config = config if config is not None else SDTWConfig.hardware()
        self.prefix_samples = prefix_samples
        self.thresholds: Dict[str, float] = {}
        self.panel = TargetPanel.from_genomes(
            genomes,
            kmer_model=self.kmer_model,
            normalization=normalization,
        )
        self._filters: Dict[str, SquiggleFilter] = {
            name: SquiggleFilter(
                self.panel.reference_for(name),
                config=self.config,
                normalization=normalization,
                prefix_samples=prefix_samples,
            )
            for name in self.panel.names
        }
        if not self.panel.fits_buffer(reference_buffer_kb):
            raise ValueError(
                f"panel needs {self.panel.buffer_bytes() / 1024:.1f} KB of reference buffer, "
                f"more than the provisioned {reference_buffer_kb:.0f} KB"
            )

    @property
    def target_names(self) -> List[str]:
        return list(self._filters.keys())

    def filter_for(self, name: str) -> SquiggleFilter:
        return self._filters[name]

    # -------------------------------------------------------------- calibration
    def calibrate(
        self,
        target_signals: Dict[str, Sequence[np.ndarray]],
        background_signals: Sequence[np.ndarray],
        objective: str = "f1",
    ) -> Dict[str, float]:
        """Calibrate one ejection threshold per panel member.

        ``target_signals`` maps panel member names to reads known to come from
        that virus; every member is calibrated against the shared background.
        """
        for name, signals in target_signals.items():
            if name not in self._filters:
                raise KeyError(f"unknown panel member {name!r}")
            threshold = self._filters[name].calibrate(
                signals, background_signals, objective=objective
            )
            self.thresholds[name] = threshold
        return dict(self.thresholds)

    # -------------------------------------------------------------- classification
    def classify(self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None) -> PanelDecision:
        """Align one read prefix against every panel member.

        The read is accepted when its best-matching member's cost is at or
        below that member's threshold (all members must be calibrated first).
        """
        if not self.thresholds or set(self.thresholds) != set(self._filters):
            raise ValueError("panel is not fully calibrated; call calibrate() first")
        used = prefix_samples if prefix_samples is not None else self.prefix_samples
        costs: Dict[str, float] = {}
        for name, squiggle_filter in self._filters.items():
            costs[name] = squiggle_filter.cost(raw_signal, used)
        best_target = min(costs, key=costs.get)
        best_cost = costs[best_target]
        accept = best_cost <= self.thresholds[best_target]
        samples_used = min(int(np.asarray(raw_signal).size), used)
        return PanelDecision(
            accept=accept,
            best_target=best_target if accept else None,
            best_cost=best_cost,
            costs=costs,
            samples_used=samples_used,
        )

    def classify_batch(
        self, signals: Sequence[np.ndarray], prefix_samples: Optional[int] = None
    ) -> List[PanelDecision]:
        return [self.classify(signal, prefix_samples) for signal in signals]

    def identification_accuracy(
        self,
        labelled_signals: Sequence[tuple],
        prefix_samples: Optional[int] = None,
    ) -> float:
        """Fraction of reads attributed to their true panel member.

        ``labelled_signals`` holds (true_member_name_or_None, signal) pairs;
        ``None`` marks background reads, which are counted correct when the
        panel rejects them.
        """
        if not labelled_signals:
            return 0.0
        correct = 0
        for truth, signal in labelled_signals:
            decision = self.classify(signal, prefix_samples)
            if truth is None:
                correct += 0 if decision.accept else 1
            else:
                correct += 1 if decision.accept and decision.best_target == truth else 0
        return correct / len(labelled_signals)
