"""Threshold selection for the sDTW classifier.

The filter ejects a read when its alignment cost exceeds a constant
threshold. The paper sweeps the threshold over its full range to produce the
accuracy curves of Figure 17a and then picks, per prefix length, the
threshold minimizing the modelled Read Until runtime (Figure 17b/c). This
module provides the sweep, the F-score-optimal choice and a simple
quantile-based heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import ClassificationCounts, f_score


@dataclass
class ThresholdPoint:
    """Metrics obtained at one candidate threshold."""

    threshold: float
    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def counts(self) -> ClassificationCounts:
        return ClassificationCounts(
            true_positive=self.true_positive,
            false_positive=self.false_positive,
            true_negative=self.true_negative,
            false_negative=self.false_negative,
        )

    @property
    def recall(self) -> float:
        return self.counts.recall

    @property
    def precision(self) -> float:
        return self.counts.precision

    @property
    def f1(self) -> float:
        return self.counts.f1

    @property
    def accuracy(self) -> float:
        return self.counts.accuracy

    @property
    def false_positive_rate(self) -> float:
        return self.counts.false_positive_rate


@dataclass
class ThresholdSweepResult:
    """All points of one threshold sweep (one curve of Figure 17a)."""

    points: List[ThresholdPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def best_by_f1(self, beta: float = 1.0) -> ThresholdPoint:
        """The point maximizing the F-beta score (Figure 18 reports F1)."""
        if not self.points:
            raise ValueError("empty threshold sweep")
        return max(
            self.points,
            key=lambda point: f_score(point.counts, beta=beta),
        )

    def max_f1(self, beta: float = 1.0) -> float:
        return f_score(self.best_by_f1(beta).counts, beta=beta)

    def as_rows(self) -> List[dict]:
        return [
            {
                "threshold": point.threshold,
                "recall": point.recall,
                "precision": point.precision,
                "f1": point.f1,
                "accuracy": point.accuracy,
                "false_positive_rate": point.false_positive_rate,
            }
            for point in self.points
        ]


def sweep_thresholds(
    target_costs: Sequence[float],
    nontarget_costs: Sequence[float],
    thresholds: Optional[Sequence[float]] = None,
    n_thresholds: int = 101,
) -> ThresholdSweepResult:
    """Evaluate classification at a range of alignment-cost thresholds.

    A read is *accepted* (classified as target) when its cost is at or below
    the threshold. ``target_costs`` are the costs of true target reads,
    ``nontarget_costs`` those of background reads.
    """
    target = np.asarray(target_costs, dtype=np.float64)
    nontarget = np.asarray(nontarget_costs, dtype=np.float64)
    if target.size == 0 or nontarget.size == 0:
        raise ValueError("both target and non-target cost sets must be non-empty")
    if thresholds is None:
        combined = np.concatenate([target, nontarget])
        low, high = float(combined.min()), float(combined.max())
        if low == high:
            thresholds = [low]
        else:
            thresholds = np.linspace(low, high, n_thresholds)
    result = ThresholdSweepResult()
    for threshold in thresholds:
        value = float(threshold)
        result.points.append(
            ThresholdPoint(
                threshold=value,
                true_positive=int(np.count_nonzero(target <= value)),
                false_negative=int(np.count_nonzero(target > value)),
                false_positive=int(np.count_nonzero(nontarget <= value)),
                true_negative=int(np.count_nonzero(nontarget > value)),
            )
        )
    return result


def choose_threshold(
    target_costs: Sequence[float],
    nontarget_costs: Sequence[float],
    objective: str = "f1",
    beta: float = 1.0,
    target_recall: float = 0.95,
) -> float:
    """Pick a single operating threshold.

    ``objective`` is one of:

    * ``"f1"`` — maximize the F-beta score over a sweep (default),
    * ``"recall"`` — the smallest threshold achieving ``target_recall`` on
      target reads (used by the permissive first stage of the multi-stage
      filter),
    * ``"midpoint"`` — halfway between the target and non-target cost means.
    """
    target = np.asarray(target_costs, dtype=np.float64)
    nontarget = np.asarray(nontarget_costs, dtype=np.float64)
    if objective == "f1":
        sweep = sweep_thresholds(target, nontarget)
        return sweep.best_by_f1(beta=beta).threshold
    if objective == "recall":
        if not 0.0 < target_recall <= 1.0:
            raise ValueError(f"target_recall must be in (0, 1], got {target_recall}")
        return float(np.quantile(target, target_recall))
    if objective == "midpoint":
        return float((target.mean() + nontarget.mean()) / 2.0)
    raise ValueError(f"unknown objective {objective!r}")
