"""Reference squiggle construction (paper Section 4.1, Figure 7).

The target virus's known genome is converted, base by base, to the expected
nanopore current using the k-mer pore model, then normalized. The filter
holds this "reference squiggle" in the accelerator's reference buffer and
aligns every incoming read prefix against it.

Because reads are sequenced from either strand, the reference squiggle covers
both the forward genome and its reverse complement (the paper's "~2R cycles,
forward and backward of reference strand").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.genomes.sequences import reverse_complement, validate_sequence
from repro.pore_model.kmer_model import KmerModel


@dataclass
class ReferenceSquiggle:
    """Precomputed expected-signal profile of a target genome.

    Attributes
    ----------
    genome:
        The target genome the squiggle was built from.
    expected_pa:
        Raw expected current (pA), one value per k-mer position, forward
        strand followed by reverse-complement strand when enabled.
    normalized:
        Mean-MAD normalized float profile.
    quantized:
        8-bit fixed point profile (the form stored in the hardware reference
        buffer).
    forward_length:
        Number of positions contributed by the forward strand (the reverse
        strand occupies the remainder).
    """

    genome: str
    expected_pa: np.ndarray
    normalized: np.ndarray
    quantized: np.ndarray
    forward_length: int
    include_reverse_complement: bool
    kmer_model: KmerModel = field(repr=False)
    normalization: NormalizationConfig = field(default_factory=NormalizationConfig)

    def __len__(self) -> int:
        return int(self.expected_pa.size)

    @property
    def n_positions(self) -> int:
        """Total reference positions the filter compares against."""
        return len(self)

    def values(self, quantized: bool) -> np.ndarray:
        """Return the profile in the representation the kernel expects."""
        return self.quantized if quantized else self.normalized

    @classmethod
    def from_genome(
        cls,
        genome: str,
        kmer_model: Optional[KmerModel] = None,
        include_reverse_complement: bool = True,
        normalization: NormalizationConfig = NormalizationConfig(),
    ) -> "ReferenceSquiggle":
        """Build the reference squiggle for ``genome``.

        The forward and reverse-complement expected signals are concatenated
        and normalized together so a single threshold applies to alignments on
        either strand.
        """
        sequence = validate_sequence(genome)
        model = kmer_model if kmer_model is not None else KmerModel()
        forward = model.expected_signal(sequence)
        if include_reverse_complement:
            reverse = model.expected_signal(reverse_complement(sequence))
            expected = np.concatenate([forward, reverse])
        else:
            expected = forward
        normalizer = SignalNormalizer(normalization)
        normalized = normalizer.normalize(expected)
        quantized = normalizer.quantize(normalized)
        return cls(
            genome=sequence,
            expected_pa=expected,
            normalized=normalized,
            quantized=quantized,
            forward_length=int(forward.size),
            include_reverse_complement=include_reverse_complement,
            kmer_model=model,
            normalization=normalization,
        )

    def buffer_bytes(self, bytes_per_sample: int = 2) -> int:
        """Size of the on-chip reference buffer needed to hold this profile.

        The paper provisions a 100 KB buffer per tile; with 10-bit raw /
        8-bit normalized samples stored in 2-byte words, a 50 kb genome fits.
        """
        if bytes_per_sample <= 0:
            raise ValueError("bytes_per_sample must be positive")
        return self.n_positions * bytes_per_sample

    def fits_buffer(self, buffer_kb: float = 100.0, bytes_per_sample: int = 2) -> bool:
        """Whether this reference fits the provisioned per-tile buffer."""
        return self.buffer_bytes(bytes_per_sample) <= buffer_kb * 1024
