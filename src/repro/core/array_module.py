"""Array-library indirection for the device-agnostic sDTW kernels.

The batched wavefront (:func:`repro.core.sdtw.sdtw_resume_batch` and the
column-tiled advance underneath it) is a sequence of ``(lanes, reference)``
matrix operations with no NumPy-specific semantics. :class:`ArrayModule`
("xp", after the SciPy convention) is the thin facade those kernels route
every array operation through, so the same code advances state held in host
memory (NumPy), in CUDA device memory (CuPy), or on any accelerator PyTorch
drives — the execution backend picks the module, the kernel never changes.

Three modules are built in:

* ``"numpy"`` — the default; delegation to :mod:`numpy` verbatim, so the
  host path is bit-identical to the pre-indirection kernels by construction.
* ``"cupy"`` — resolved lazily; CuPy mirrors the NumPy API, so the same
  delegation works with device arrays.
* ``"torch"`` — resolved lazily through :class:`_TorchNamespace`, a
  best-effort adapter mapping the kernel's operation surface onto
  :mod:`torch` equivalents (tensors are not NumPy-compatible, so unlike
  CuPy this path needs explicit translation).

:func:`gpu_array_module` resolves whichever accelerator library is
importable (CuPy preferred) — what the ``"gpu"`` execution backend in
:mod:`repro.batch.backends` runs on. Additional modules can be registered
with :func:`register_array_module` (e.g. a JAX adapter) without touching the
kernels.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayModule",
    "available_array_modules",
    "get_array_module",
    "gpu_array_module",
    "numpy_module",
    "register_array_module",
]


class ArrayModule:
    """A numpy-like array namespace plus the few helpers the kernels need.

    Attribute access falls through to the wrapped module, so ``xp.minimum``,
    ``xp.int64`` or ``xp.searchsorted`` resolve to the library's own
    implementations (NumPy and CuPy share that surface; the torch adapter
    provides it explicitly). The methods below cover the operations that are
    *not* uniform across libraries — dtype casts, host transfer, and stable
    ordering — so kernel code never calls array methods that only exist on
    ``numpy.ndarray``.
    """

    def __init__(
        self,
        module: Any,
        name: str,
        to_host: Optional[Callable[[Any], np.ndarray]] = None,
    ) -> None:
        self.module = module
        self.name = name
        self._to_host = to_host

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self.module, attribute)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArrayModule({self.name})"

    @property
    def is_numpy(self) -> bool:
        return self.module is np

    # ------------------------------------------------------------- helpers
    def astype(self, array: Any, dtype: Any) -> Any:
        """A *copying* dtype cast (``ndarray.astype`` / ``Tensor.to``)."""
        cast = getattr(self.module, "cast_copy", None)
        if cast is not None:  # torch adapter
            return cast(array, dtype)
        return array.astype(dtype, copy=True)

    def copy(self, array: Any) -> Any:
        clone = getattr(array, "clone", None)
        if clone is not None:  # torch tensors
            return clone()
        return array.copy()

    def to_numpy(self, array: Any) -> np.ndarray:
        """Transfer to host memory as a NumPy array (identity for NumPy)."""
        if self._to_host is not None:
            return self._to_host(array)
        return np.asarray(array)

    def stable_argsort_descending(self, values) -> list:
        """Host-side stable ordering of a small metadata sequence.

        Returns plain Python ints (the kernels use the order for view
        slicing and padding layout, never as device data), sorted by
        descending value with ties kept in input order — the semantics of
        ``np.argsort(-values, kind="stable")``.
        """
        values = [int(value) for value in values]
        return sorted(range(len(values)), key=lambda index: -values[index])


# ------------------------------------------------------------------- registry
_LOADERS: Dict[str, Callable[[], ArrayModule]] = {}
_CACHE: Dict[str, ArrayModule] = {}


def register_array_module(name: str, loader: Callable[[], ArrayModule]) -> None:
    """Register a lazy :class:`ArrayModule` loader under a string key.

    The loader runs at most once (the resolved module is cached) and should
    raise :class:`RuntimeError` with an install hint when the underlying
    library is not importable.
    """
    key = name.lower()
    if key in _LOADERS:
        raise ValueError(f"array module {name!r} is already registered")
    _LOADERS[key] = loader


def available_array_modules() -> Tuple[str, ...]:
    """The registered array-module names, sorted (not all need be importable)."""
    return tuple(sorted(_LOADERS))


def get_array_module(name: str = "numpy") -> ArrayModule:
    """Resolve a registered array module by name.

    Unknown names raise :class:`ValueError` listing the registry; known names
    whose library is missing raise :class:`RuntimeError` from the loader.
    """
    key = name.lower()
    if key in _CACHE:
        return _CACHE[key]
    try:
        loader = _LOADERS[key]
    except KeyError:
        known = ", ".join(available_array_modules()) or "(none)"
        raise ValueError(
            f"unknown array module {name!r}; registered modules: {known}"
        ) from None
    module = loader()
    _CACHE[key] = module
    return module


def numpy_module() -> ArrayModule:
    """The default host array module."""
    return get_array_module("numpy")


def gpu_array_module(required: bool = False) -> Optional[ArrayModule]:
    """The first importable GPU array library (CuPy, then PyTorch).

    Returns ``None`` when neither is installed, unless ``required`` — then a
    :class:`RuntimeError` with an install hint is raised (what the ``"gpu"``
    execution backend surfaces when selected on a host without a GPU stack).
    """
    for name in ("cupy", "torch"):
        try:
            return get_array_module(name)
        except RuntimeError:
            continue
    if required:
        raise RuntimeError(
            "no GPU array library is importable; install CuPy (preferred) or "
            "PyTorch to use the 'gpu' execution backend, or pass "
            "array_module='numpy' to run the device code path on the host"
        )
    return None


register_array_module("numpy", lambda: ArrayModule(np, "numpy"))


def _load_cupy() -> ArrayModule:
    try:
        import cupy  # noqa: PLC0415 - optional dependency, resolved lazily
    except ImportError as error:  # pragma: no cover - depends on environment
        raise RuntimeError(
            "the 'cupy' array module requires CuPy (pip install cupy-cuda12x "
            "matching your CUDA toolkit)"
        ) from error
    return ArrayModule(cupy, "cupy", to_host=cupy.asnumpy)


register_array_module("cupy", _load_cupy)


class _TorchNamespace:  # pragma: no cover - exercised only with torch installed
    """Best-effort numpy-surface adapter over :mod:`torch`.

    Implements exactly the operations the batched sDTW wavefront issues.
    Dtype attributes resolve to torch dtypes so ``xp.int64``-style kernel
    code works unchanged; ``cast_copy`` backs :meth:`ArrayModule.astype`.
    """

    def __init__(self, torch: Any) -> None:
        self._torch = torch
        self.int32 = torch.int32
        self.int64 = torch.int64
        self.float64 = torch.float64
        self.bool_ = torch.bool
        self.intp = torch.int64
        self.inf = float("inf")

    def __getattr__(self, attribute: str) -> Any:
        # subtract, abs, minimum, less, where, searchsorted, argmin, arange,
        # zeros, empty, empty_like, rint (via round below), any, max, ...
        if attribute == "rint":
            return self._torch.round
        return getattr(self._torch, attribute)

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        if isinstance(dtype, type) or isinstance(dtype, np.dtype):
            dtype = getattr(self, np.dtype(dtype).name, None)
        return self._torch.asarray(values, dtype=dtype)

    def _tensor_operand(self, value: Any, like: Any) -> Any:
        """Torch binary ops reject Python scalars; wrap them like numpy does."""
        if isinstance(value, self._torch.Tensor):
            return value
        return self._torch.as_tensor(value, dtype=like.dtype, device=like.device)

    def minimum(self, a: Any, b: Any, out: Any = None) -> Any:
        b = self._tensor_operand(b, a)
        if out is not None:
            return self._torch.minimum(a, b, out=out)
        return self._torch.minimum(a, b)

    def where(self, condition: Any, a: Any, b: Any) -> Any:
        # The kernels call where(cond, scalar, tensor); wrap the scalar arm.
        like = b if isinstance(b, self._torch.Tensor) else a
        return self._torch.where(
            condition, self._tensor_operand(a, like), self._tensor_operand(b, like)
        )

    def cast_copy(self, array: Any, dtype: Any) -> Any:
        if isinstance(dtype, type) or isinstance(dtype, np.dtype):
            dtype = getattr(self, np.dtype(dtype).name)
        return array.to(dtype=dtype, copy=True)

    def copyto(self, destination: Any, value: Any, where: Any = None) -> None:
        if where is None:
            destination.copy_(value)
        else:
            destination[where] = value

    def iinfo(self, dtype: Any) -> Any:
        return self._torch.iinfo(dtype)


def _load_torch() -> ArrayModule:  # pragma: no cover - depends on environment
    try:
        import torch  # noqa: PLC0415 - optional dependency, resolved lazily
    except ImportError as error:
        raise RuntimeError(
            "the 'torch' array module requires PyTorch (pip install torch)"
        ) from error
    return ArrayModule(
        _TorchNamespace(torch),
        "torch",
        to_host=lambda tensor: tensor.detach().cpu().numpy(),
    )


register_array_module("torch", _load_torch)
