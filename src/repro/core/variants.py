"""Named sDTW algorithm variants for the Figure 18 ablation.

Figure 18 of the paper reports the maximal F-score achieved by standard sDTW
and by each hardware-motivated modification, individually and combined. The
variants defined here map one-to-one to the bars in that figure.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import SDTWConfig

# Ordered as presented in the paper: the software baseline first, each
# individual modification, the combination, and the final configuration with
# the match bonus recovering the lost accuracy.
ABLATION_VARIANTS: Dict[str, SDTWConfig] = {
    "vanilla": SDTWConfig.vanilla(),
    "absolute_difference": SDTWConfig.vanilla().with_(distance="absolute"),
    "integer_normalization": SDTWConfig.vanilla().with_(quantize=True),
    "no_reference_deletions": SDTWConfig.vanilla().with_(allow_reference_deletions=False),
    "all_approximations": SDTWConfig(
        distance="absolute",
        allow_reference_deletions=False,
        quantize=True,
        match_bonus=0.0,
    ),
    "squigglefilter": SDTWConfig.hardware(),
}


def variant_config(name: str) -> SDTWConfig:
    """Look up one ablation variant by name."""
    try:
        return ABLATION_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; available: {', '.join(ABLATION_VARIANTS)}"
        ) from None


def variant_names() -> List[str]:
    """All ablation variant names in presentation order."""
    return list(ABLATION_VARIANTS.keys())


def describe_variant(name: str) -> str:
    """Human-readable description of one variant (used by the bench output)."""
    config = variant_config(name)
    parts = [
        f"distance={config.distance}",
        "ref-deletions" if config.allow_reference_deletions else "no-ref-deletions",
        "int8" if config.quantize else "float",
    ]
    if config.uses_bonus:
        parts.append(f"bonus={config.match_bonus:g}(cap {config.match_bonus_cap})")
    return ", ".join(parts)
