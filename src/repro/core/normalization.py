"""Signal normalization (paper Sections 4.2 and 5.3).

Per-pore bias voltage differences shift and scale the measured current, so
every read is normalized before sDTW. The hardware normalizer computes the
mean and Mean Absolute Deviation (MAD) of each 2000-sample chunk, applies
mean-MAD normalization, clips outliers to ``[-4, 4]`` and rescales to an
8-bit fixed-point integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class NormalizationConfig:
    """Parameters of mean-MAD normalization and fixed-point quantization."""

    method: str = "mean_mad"
    clip: float = 4.0
    quantize_bits: int = 8

    def __post_init__(self) -> None:
        if self.method not in ("mean_mad", "zscore"):
            raise ValueError(f"method must be 'mean_mad' or 'zscore', got {self.method!r}")
        if self.clip <= 0:
            raise ValueError(f"clip must be positive, got {self.clip}")
        if not 2 <= self.quantize_bits <= 16:
            raise ValueError(f"quantize_bits must be in [2, 16], got {self.quantize_bits}")

    @property
    def quantize_max(self) -> int:
        """Largest representable magnitude of the signed fixed-point value."""
        return 2 ** (self.quantize_bits - 1) - 1

    @property
    def quantize_scale(self) -> float:
        """Multiplier mapping the clipped float range to the integer range."""
        return self.quantize_max / self.clip


class SignalNormalizer:
    """Normalize raw current traces for sDTW.

    The same normalizer is applied to query squiggles and to the precomputed
    reference squiggle so that the two live on the same scale.
    """

    def __init__(self, config: NormalizationConfig = NormalizationConfig()) -> None:
        self.config = config

    def statistics(self, signal: np.ndarray) -> Tuple[float, float]:
        """Return (center, spread) for ``signal`` under the configured method."""
        values = np.asarray(signal, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot normalize an empty signal")
        center = float(values.mean())
        if self.config.method == "mean_mad":
            spread = float(np.abs(values - center).mean())
        else:
            spread = float(values.std())
        if spread <= 0:
            # A constant signal carries no information; avoid division by zero
            # and return it centered at 0.
            spread = 1.0
        return center, spread

    def normalize(self, signal: np.ndarray) -> np.ndarray:
        """Mean-MAD (or z-score) normalize and clip to ``[-clip, clip]``."""
        values = np.asarray(signal, dtype=np.float64)
        center, spread = self.statistics(values)
        normalized = (values - center) / spread
        return np.clip(normalized, -self.config.clip, self.config.clip)

    def quantize(self, normalized: np.ndarray) -> np.ndarray:
        """Rescale a normalized signal to signed fixed-point integers."""
        scaled = np.rint(np.asarray(normalized, dtype=np.float64) * self.config.quantize_scale)
        limit = self.config.quantize_max
        return np.clip(scaled, -limit, limit).astype(np.int32)

    def normalize_quantized(self, signal: np.ndarray) -> np.ndarray:
        """Normalize and quantize in one step (the hardware data path)."""
        return self.quantize(self.normalize(signal))

    def dequantize(self, quantized: np.ndarray) -> np.ndarray:
        """Map fixed-point integers back to the normalized float scale."""
        return np.asarray(quantized, dtype=np.float64) / self.config.quantize_scale
