"""Classic (end-to-end) dynamic time warping.

Subsequence DTW (``repro.core.sdtw``) is the algorithm the filter uses; the
classic end-to-end variant here serves as a well-understood reference point
for tests (sDTW of a query against a reference of equal length degenerates to
classic DTW when the best alignment spans the whole reference) and for the
background exposition in the examples.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _distance_matrix(query: np.ndarray, reference: np.ndarray, distance: str) -> np.ndarray:
    diff = query[:, None].astype(np.float64) - reference[None, :].astype(np.float64)
    if distance == "squared":
        return diff * diff
    if distance == "absolute":
        return np.abs(diff)
    raise ValueError(f"distance must be 'squared' or 'absolute', got {distance!r}")


def dtw_cost_matrix(
    query: np.ndarray,
    reference: np.ndarray,
    distance: str = "squared",
) -> np.ndarray:
    """Full end-to-end DTW cost matrix (query rows, reference columns)."""
    query = np.asarray(query, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if query.size == 0 or reference.size == 0:
        raise ValueError("query and reference must be non-empty")
    local = _distance_matrix(query, reference, distance)
    n, m = local.shape
    cost = np.full((n, m), np.inf, dtype=np.float64)
    cost[0, 0] = local[0, 0]
    for j in range(1, m):
        cost[0, j] = cost[0, j - 1] + local[0, j]
    for i in range(1, n):
        cost[i, 0] = cost[i - 1, 0] + local[i, 0]
        for j in range(1, m):
            cost[i, j] = local[i, j] + min(cost[i - 1, j - 1], cost[i - 1, j], cost[i, j - 1])
    return cost


def dtw_cost(query: np.ndarray, reference: np.ndarray, distance: str = "squared") -> float:
    """End-to-end DTW alignment cost between two signals."""
    return float(dtw_cost_matrix(query, reference, distance)[-1, -1])


def dtw_path(
    query: np.ndarray,
    reference: np.ndarray,
    distance: str = "squared",
) -> Tuple[float, List[Tuple[int, int]]]:
    """End-to-end DTW cost plus the optimal warping path.

    The path is a list of ``(query_index, reference_index)`` pairs from
    ``(0, 0)`` to ``(N-1, M-1)``.
    """
    cost = dtw_cost_matrix(query, reference, distance)
    i, j = cost.shape[0] - 1, cost.shape[1] - 1
    path = [(i, j)]
    while i > 0 or j > 0:
        if i == 0:
            j -= 1
        elif j == 0:
            i -= 1
        else:
            candidates = (
                (cost[i - 1, j - 1], i - 1, j - 1),
                (cost[i - 1, j], i - 1, j),
                (cost[i, j - 1], i, j - 1),
            )
            _, i, j = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return float(cost[-1, -1]), path
