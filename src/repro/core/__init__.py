"""Core SquiggleFilter algorithm: normalization, reference squiggles and sDTW."""

from repro.core.array_module import (
    ArrayModule,
    available_array_modules,
    get_array_module,
    gpu_array_module,
    register_array_module,
)
from repro.core.config import SDTWConfig
from repro.core.dtw import dtw_cost, dtw_path
from repro.core.filter import (
    FilterDecision,
    FilterStage,
    MultiStageSquiggleFilter,
    SquiggleFilter,
    build_default_filter,
)
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.core.panel import PanelDecision, ReferencePanelFilter, TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import (
    BatchSDTWState,
    SDTWState,
    normalize_block_starts,
    reduce_block_minima,
    sdtw_cost,
    sdtw_cost_matrix,
    sdtw_last_row,
    sdtw_resume,
    sdtw_resume_batch,
    sdtw_resume_batch_arrays,
)
from repro.core.thresholds import ThresholdSweepResult, choose_threshold, sweep_thresholds
from repro.core.variants import ABLATION_VARIANTS, variant_config

__all__ = [
    "ABLATION_VARIANTS",
    "ArrayModule",
    "BatchSDTWState",
    "FilterDecision",
    "FilterStage",
    "MultiStageSquiggleFilter",
    "NormalizationConfig",
    "PanelDecision",
    "ReferencePanelFilter",
    "ReferenceSquiggle",
    "SDTWConfig",
    "SDTWState",
    "SignalNormalizer",
    "SquiggleFilter",
    "TargetPanel",
    "ThresholdSweepResult",
    "available_array_modules",
    "build_default_filter",
    "choose_threshold",
    "get_array_module",
    "gpu_array_module",
    "normalize_block_starts",
    "reduce_block_minima",
    "register_array_module",
    "dtw_cost",
    "dtw_path",
    "sdtw_cost",
    "sdtw_cost_matrix",
    "sdtw_last_row",
    "sdtw_resume",
    "sdtw_resume_batch",
    "sdtw_resume_batch_arrays",
    "sweep_thresholds",
    "variant_config",
]
