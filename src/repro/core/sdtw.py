"""Subsequence dynamic time warping kernels (paper Sections 4.3 and 4.7).

Subsequence DTW (sDTW) aligns the whole query (a read prefix) against *any*
contiguous region of the reference squiggle: the first query sample may start
at any reference position for free, and the answer is the minimum value of
the last DP row.

Three kernels are provided, all computing identical costs for their
configuration:

* :func:`sdtw_cost_matrix` — a direct, loop-based implementation returning
  the full DP matrix (and optionally the alignment path). Used for tests and
  for visualizing small alignments; quadratic memory.
* :func:`sdtw_last_row` / :func:`sdtw_cost` — row-vectorized NumPy kernels
  holding only two rows. The vanilla recurrence's in-row dependency
  (``S[i, j-1]``) is resolved exactly with a prefix-minimum transformation,
  so both the vanilla and the hardware ("no reference deletions") recurrences
  are O(N) NumPy operations per query sample.

The hardware accelerator model in :mod:`repro.hardware` reuses the integer
kernel so the systolic array is bit-compatible with the software filter.

The resumable recurrence also comes in a **batched** form:
:func:`sdtw_resume_batch` stacks many lanes into a ``(lanes, reference)``
state (:class:`BatchSDTWState`) and advances all of them with one set of
matrix operations per wavefront step — the kernel every execution backend of
:class:`repro.batch.BatchSDTWEngine` runs (in-process for the ``numpy``
backend, once per shard inside each worker for the ``sharded`` backend; see
:mod:`repro.batch.backends`). Per-lane results are bit-identical to per-read
:func:`sdtw_resume` calls, which is what makes the backends interchangeable.

The batched wavefront is **device-agnostic**: every array operation on that
path is routed through an :class:`~repro.core.array_module.ArrayModule`
("xp") instead of calling NumPy directly, so the same kernel advances state
held in host memory or on an accelerator (CuPy / Torch — the ``"gpu"``
execution backend). :func:`sdtw_resume_batch` is the NumPy-facing wrapper;
:func:`sdtw_resume_batch_arrays` is the raw-array core device backends call
with their own ``xp``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.array_module import ArrayModule, numpy_module
from repro.core.config import SDTWConfig

__all__ = [
    "AdvanceStats",
    "BatchSDTWState",
    "SDTWResult",
    "SDTWState",
    "lb_envelopes",
    "lb_keogh_bounds",
    "lb_kim_bound",
    "normalize_block_starts",
    "reduce_block_minima",
    "sdtw_cost",
    "sdtw_cost_matrix",
    "sdtw_last_row",
    "sdtw_resume",
    "sdtw_resume_batch",
    "sdtw_resume_batch_arrays",
]


class AdvanceStats:
    """Mutable cell-work accounting a batched advance fills in.

    ``cells_advanced`` counts DP cells the wavefront actually swept (query
    samples x columns of every executed slice) and ``cells_pruned`` the cells
    the pruning layer skipped — frozen columns outside the active intervals
    plus whole rounds of early-abandoned lanes. Their sum is the nominal
    brute-force work ``sum(chunk lengths) x reference columns``. Execution
    backends accumulate one instance across rounds; workers ship per-round
    deltas back over their reply pipes.
    """

    __slots__ = ("cells_advanced", "cells_pruned")

    def __init__(self, cells_advanced: int = 0, cells_pruned: int = 0) -> None:
        self.cells_advanced = int(cells_advanced)
        self.cells_pruned = int(cells_pruned)

    @property
    def cells_nominal(self) -> int:
        """Brute-force cell count the advance would have swept unpruned."""
        return self.cells_advanced + self.cells_pruned

    def add(self, advanced: int, pruned: int) -> None:
        self.cells_advanced += int(advanced)
        self.cells_pruned += int(pruned)

    def merge(self, other: "AdvanceStats") -> None:
        self.add(other.cells_advanced, other.cells_pruned)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AdvanceStats(cells_advanced={self.cells_advanced}, "
            f"cells_pruned={self.cells_pruned})"
        )


def _as_kernel_arrays(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cast inputs to the dtype the configured kernel accumulates in."""
    dtype = np.int64 if config.quantize else np.float64
    query_values = np.asarray(query, dtype=dtype)
    reference_values = np.asarray(reference, dtype=dtype)
    if query_values.ndim != 1 or reference_values.ndim != 1:
        raise ValueError("query and reference must be 1-D arrays")
    if query_values.size == 0 or reference_values.size == 0:
        raise ValueError("query and reference must be non-empty")
    return query_values, reference_values


def _local_distance(value, reference: np.ndarray, config: SDTWConfig) -> np.ndarray:
    diff = value - reference
    if config.distance == "squared":
        return diff * diff
    return np.abs(diff)


class SDTWResult:
    """Outcome of one sDTW alignment: the optimal cost and where it ends."""

    __slots__ = ("cost", "end_position", "per_sample_cost", "query_length", "reference_length")

    def __init__(
        self,
        cost: float,
        end_position: int,
        query_length: int,
        reference_length: int,
    ) -> None:
        self.cost = float(cost)
        self.end_position = int(end_position)
        self.query_length = int(query_length)
        self.reference_length = int(reference_length)
        self.per_sample_cost = self.cost / self.query_length if self.query_length else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SDTWResult(cost={self.cost:.2f}, end_position={self.end_position}, "
            f"per_sample_cost={self.per_sample_cost:.3f})"
        )


def sdtw_last_row(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
) -> np.ndarray:
    """Return the final DP row ``S[N-1, :]`` of the configured sDTW recurrence.

    The minimum of this row is the subsequence alignment cost; its argmin is
    the reference position where the best alignment ends.
    """
    cfg = config if config is not None else SDTWConfig()
    query_values, reference_values = _as_kernel_arrays(query, reference, cfg)
    if cfg.allow_reference_deletions:
        return _last_row_with_deletions(query_values, reference_values, cfg)
    if cfg.uses_bonus:
        return _last_row_no_deletions_bonus(query_values, reference_values, cfg)
    return _last_row_no_deletions(query_values, reference_values, cfg)


def _state_dtype(config: SDTWConfig):
    """Dtype a resumable state row is stored in (int64 on the quantized path)."""
    return np.int64 if config.quantize else np.float64


def _accumulator_dtype(config: SDTWConfig):
    """Dtype the resumable recurrence accumulates in.

    The match bonus mixes the integer costs with a (possibly fractional)
    reward, so the bonus recurrence accumulates in float64 and rounds back to
    integers at the end of each call; without a bonus the quantized recurrence
    is exact integer arithmetic end-to-end.
    """
    return np.int64 if (config.quantize and not config.uses_bonus) else np.float64


def _big_for(dtype):
    """A shifted-in boundary cost that is never selected by the minimum."""
    return np.int64(2**40) if dtype is np.int64 else np.inf


def normalize_block_starts(block_starts, reference_length: int) -> np.ndarray:
    """Validate per-target column offsets over a concatenated reference.

    ``block_starts`` lists the column index where each target's reference
    begins inside the concatenated column space (a
    :class:`repro.core.panel.TargetPanel` layout). The result always starts
    at 0 and is strictly increasing; ``None`` means one block spanning every
    column.
    """
    if reference_length <= 0:
        raise ValueError("reference_length must be positive")
    if block_starts is None:
        return np.zeros(1, dtype=np.int64)
    starts = np.asarray(block_starts, dtype=np.int64).ravel()
    if starts.size == 0 or starts[0] != 0:
        raise ValueError("block_starts must begin with column 0")
    if np.any(np.diff(starts) <= 0):
        raise ValueError("block_starts must be strictly increasing")
    if int(starts[-1]) >= reference_length:
        raise ValueError(
            f"block start {int(starts[-1])} is beyond the {reference_length}-column reference"
        )
    return starts


def tile_halo_start(block_starts: np.ndarray, tile_start: int, halo_width: int) -> int:
    """Leftmost column a tile's halo must reach back to for an exact advance.

    Information moves at most one column rightward per query step, so
    ``halo_width`` (the longest chunk this round) columns suffice — and a
    block boundary severs the dependency entirely, so the halo never has to
    cross the nearest block start at or before the tile. This is the single
    definition of the tiling invariant; the in-process tiled kernel and the
    column-sharded workers must use the same one.
    """
    nearest_block = int(
        block_starts[np.searchsorted(block_starts, tile_start, side="right") - 1]
    )
    return max(tile_start - halo_width, nearest_block)


def tile_block_starts(
    block_starts: np.ndarray, halo_start: int, tile_end: int
) -> np.ndarray:
    """Block starts of the halo-extended tile ``[halo_start, tile_end)``.

    Offsets are shifted into extended-tile coordinates; column 0 is always a
    start (the kernel injects the boundary sentinel there regardless — when
    ``halo_start`` is mid-block, the corruption that sentinel introduces dies
    inside the discarded halo region).
    """
    inside = block_starts[
        (block_starts >= halo_start) & (block_starts < tile_end)
    ] - halo_start
    return inside if inside.size and inside[0] == 0 else np.append(0, inside)


def reduce_block_minima(
    rows: np.ndarray, block_starts: np.ndarray, xp: Optional[ArrayModule] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block (per-target) cost and end-position reduction of DP rows.

    ``rows`` is a ``(n_lanes, reference_length)`` stack of last DP rows over a
    concatenated column space and ``block_starts`` the per-target offsets.
    Returns ``(costs, ends)`` of shape ``(n_lanes, n_blocks)`` where
    ``costs[l, b]`` is the row minimum inside block ``b`` and ``ends[l, b]``
    its argmin *local to the block* — exactly the cost/end an independent
    single-reference run over that target would report. ``xp`` selects the
    array module the reduction runs on (the module holding ``rows``); the
    outputs stay in that module's memory space.
    """
    xp = xp if xp is not None else numpy_module()
    rows = xp.asarray(rows)
    n_lanes, n_columns = rows.shape
    starts = normalize_block_starts(block_starts, int(n_columns))
    bounds = [int(start) for start in starts] + [int(n_columns)]
    costs = xp.empty((n_lanes, starts.size), dtype=rows.dtype)
    ends = xp.empty((n_lanes, starts.size), dtype=xp.intp)
    lane_index = xp.arange(n_lanes)
    for block in range(starts.size):
        segment = rows[:, bounds[block] : bounds[block + 1]]
        block_ends = xp.argmin(segment, 1)
        ends[:, block] = block_ends
        costs[:, block] = segment[lane_index, block_ends]
    return costs, ends


# --------------------------------------------------------------------------
# Lower-bound cascade (UCRSuite LB_Kim / LB_Keogh adapted to streaming sDTW)
#
# Every alignment path of the no-deletion recurrence consumes every query
# sample exactly once, each step adding a non-negative local distance against
# *some* reference column. A lower bound on each sample's cheapest possible
# local distance therefore sums to a lower bound on the cost any path must add
# while consuming the chunk — regardless of where in the reference the path
# sits. Block boundaries sever the diagonal, so a path that ends inside block
# ``b`` also started inside block ``b`` and the per-block bounds compose with
# the engine's cached per-target row minima. The match bonus is budgeted by
# the caller's kill bound (``threshold + margin + bonus*(remaining+cap)``),
# which already credits every diagonal the lane could still harvest, so these
# bounds only need to never exceed the true *un-credited* local cost.


def _lb_gaps(values: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Distance from each value to the interval ``[low, high]`` (broadcast)."""
    return np.maximum(0.0, np.maximum(values - highs, lows - values))


def lb_envelopes(
    reference_values: np.ndarray, block_starts=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block ``(mins, maxs)`` value envelopes of a concatenated reference.

    The reference side of the lower-bound cascade: block ``b``'s envelope is
    the min/max of its column values, so a query sample ``v`` can never incur
    less than ``max(0, v - max_b, min_b - v)`` of local distance inside the
    block. Built once per reference (panels cache the result per quantization,
    see :meth:`repro.core.panel.TargetPanel.lb_envelopes`).
    """
    values = np.asarray(reference_values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("reference must be a non-empty 1-D array")
    starts = normalize_block_starts(block_starts, values.size)
    bounds = [int(start) for start in starts] + [values.size]
    mins = np.fromiter(
        (values[bounds[b] : bounds[b + 1]].min() for b in range(starts.size)),
        dtype=np.float64,
        count=starts.size,
    )
    maxs = np.fromiter(
        (values[bounds[b] : bounds[b + 1]].max() for b in range(starts.size)),
        dtype=np.float64,
        count=starts.size,
    )
    return mins, maxs


def lb_kim_bound(
    chunk: np.ndarray, reference_low: float, reference_high: float, config: SDTWConfig
) -> float:
    """O(1) LB_Kim-style bound: cost the chunk's first and last samples must add.

    Uses only the reference's global value extrema — the first and last chunk
    samples each contribute at least their distance to the nearest value in
    ``[reference_low, reference_high]`` (squared for the squared-distance
    kernel), and every other sample contributes at least zero.
    """
    chunk = np.asarray(chunk)
    if chunk.size == 0:
        return 0.0
    ends = np.array(
        [chunk[0], chunk[-1]] if chunk.size > 1 else [chunk[0]], dtype=np.float64
    )
    gaps = _lb_gaps(ends, float(reference_low), float(reference_high))
    if config.distance == "squared":
        gaps = gaps * gaps
    return float(gaps.sum())


def lb_keogh_bounds(
    chunk: np.ndarray, block_lows: np.ndarray, block_highs: np.ndarray, config: SDTWConfig
) -> np.ndarray:
    """O(chunk x blocks) LB_Keogh-style bound: per-block envelope cost sums.

    ``result[b]`` lower-bounds the cost any path confined to block ``b`` must
    add while consuming the whole chunk: each sample contributes at least its
    distance to the block's ``[min, max]`` value envelope. Tighter than
    :func:`lb_kim_bound` (every sample counts, per-block extrema), at the
    price of touching the full chunk.
    """
    lows = np.asarray(block_lows, dtype=np.float64)
    highs = np.asarray(block_highs, dtype=np.float64)
    chunk = np.asarray(chunk, dtype=np.float64)
    if chunk.size == 0:
        return np.zeros(lows.size, dtype=np.float64)
    gaps = _lb_gaps(chunk[:, None], lows[None, :], highs[None, :])
    if config.distance == "squared":
        gaps = gaps * gaps
    return gaps.sum(axis=0)


class SDTWState:
    """Resumable kernel state after processing a query prefix.

    The hardware's multi-stage filtering (paper Section 5.1, "Variable Query
    Length") stores the last PE's costs to DRAM so that alignment can continue
    when a longer prefix is requested. ``row`` is the last DP row and ``run``
    the per-column dwell counters the match bonus needs. Quantized-kernel rows
    are integer costs and stay ``int64`` end-to-end; float kernels store
    ``float64`` rows.
    """

    __slots__ = ("row", "run", "samples_processed")

    def __init__(self, row: np.ndarray, run: Optional[np.ndarray], samples_processed: int) -> None:
        row = np.asarray(row)
        self.row = row.astype(np.int64 if np.issubdtype(row.dtype, np.integer) else np.float64)
        self.run = None if run is None else np.asarray(run, dtype=np.int64)
        self.samples_processed = int(samples_processed)

    @property
    def cost(self) -> float:
        return float(self.row.min())

    @property
    def end_position(self) -> int:
        return int(np.argmin(self.row))


class BatchSDTWState:
    """Stacked resumable state: one lane per concurrent alignment.

    ``rows`` is the ``(n_lanes, reference_length)`` matrix of last DP rows,
    ``runs`` the matching dwell counters and ``samples_processed`` the
    per-lane query progress. A lane with ``samples_processed == 0`` has not
    consumed any signal yet; its row content is meaningless until the first
    call of :func:`sdtw_resume_batch` that feeds it samples.
    """

    __slots__ = ("rows", "runs", "samples_processed")

    def __init__(
        self,
        rows: np.ndarray,
        runs: np.ndarray,
        samples_processed: np.ndarray,
    ) -> None:
        rows = np.asarray(rows)
        self.rows = rows.astype(np.int64 if np.issubdtype(rows.dtype, np.integer) else np.float64)
        self.runs = np.asarray(runs, dtype=np.int64)
        self.samples_processed = np.asarray(samples_processed, dtype=np.int64)
        if self.rows.ndim != 2:
            raise ValueError("rows must be a (n_lanes, reference_length) matrix")
        if self.runs.shape != self.rows.shape:
            raise ValueError("runs must have the same shape as rows")
        if self.samples_processed.shape != (self.rows.shape[0],):
            raise ValueError("samples_processed must have one entry per lane")

    @classmethod
    def initial(
        cls,
        n_lanes: int,
        reference_length: int,
        config: Optional[SDTWConfig] = None,
    ) -> "BatchSDTWState":
        """A state of ``n_lanes`` lanes none of which has consumed samples."""
        cfg = config if config is not None else SDTWConfig()
        if n_lanes < 0:
            raise ValueError("n_lanes must be non-negative")
        if reference_length <= 0:
            raise ValueError("reference_length must be positive")
        return cls(
            rows=np.zeros((n_lanes, reference_length), dtype=_state_dtype(cfg)),
            runs=np.ones((n_lanes, reference_length), dtype=np.int64),
            samples_processed=np.zeros(n_lanes, dtype=np.int64),
        )

    @property
    def n_lanes(self) -> int:
        return int(self.rows.shape[0])

    @property
    def reference_length(self) -> int:
        return int(self.rows.shape[1])

    @property
    def costs(self) -> np.ndarray:
        """Per-lane optimal subsequence cost so far (the row minimum)."""
        return self.rows.min(axis=1)

    @property
    def end_positions(self) -> np.ndarray:
        """Per-lane reference position where the best alignment ends."""
        return np.argmin(self.rows, axis=1)

    def lane(self, index: int) -> SDTWState:
        """The scalar :class:`SDTWState` view of one lane."""
        return SDTWState(
            row=self.rows[index],
            run=self.runs[index],
            samples_processed=int(self.samples_processed[index]),
        )


def sdtw_resume(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
    state: Optional[SDTWState] = None,
) -> SDTWState:
    """Process (more of) a query through the no-reference-deletion recurrence.

    Called without ``state`` this is equivalent to :func:`sdtw_last_row` but
    additionally returns a resumable :class:`SDTWState`; called with a state
    it continues the alignment as if the new samples had been part of the
    original query. Only the hardware recurrences (no reference deletions)
    are resumable, mirroring the accelerator.
    """
    cfg = config if config is not None else SDTWConfig()
    if cfg.allow_reference_deletions:
        raise ValueError("sdtw_resume requires allow_reference_deletions=False")
    query_values, reference_values = _as_kernel_arrays(query, reference, cfg)
    if query_values.size == 0:
        raise ValueError("query must be non-empty")

    bonus = float(cfg.match_bonus)
    cap = cfg.match_bonus_cap
    accumulator = _accumulator_dtype(cfg)
    big = _big_for(accumulator)

    if state is None:
        previous = _local_distance(query_values[0], reference_values, cfg).astype(accumulator)
        run = np.ones(reference_values.size, dtype=np.int64)
        start_index = 1
        processed = 1
    else:
        if state.row.size != reference_values.size:
            raise ValueError(
                f"state row length {state.row.size} does not match reference length {reference_values.size}"
            )
        previous = state.row.astype(accumulator)
        run = (
            state.run.copy()
            if state.run is not None
            else np.ones(reference_values.size, dtype=np.int64)
        )
        start_index = 0
        processed = state.samples_processed

    cost_shift = np.empty_like(previous)
    run_shift = np.empty_like(run)
    for i in range(start_index, query_values.size):
        local = _local_distance(query_values[i], reference_values, cfg).astype(accumulator)
        cost_shift[0] = big
        cost_shift[1:] = previous[:-1]
        run_shift[0] = 0
        run_shift[1:] = run[:-1]
        diagonal = cost_shift - bonus * np.minimum(run_shift, cap) if bonus else cost_shift
        take_diagonal = diagonal < previous
        previous = local + np.where(take_diagonal, diagonal, previous)
        run = np.where(take_diagonal, 1, run + 1)
        processed += 1

    if cfg.quantize and cfg.uses_bonus:
        row = np.rint(previous).astype(np.int64)
    else:
        row = previous
    return SDTWState(row=row, run=run, samples_processed=processed)


def sdtw_resume_batch(
    queries: Sequence[np.ndarray],
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
    state: Optional[BatchSDTWState] = None,
    track_runs: bool = True,
    block_starts: Optional[np.ndarray] = None,
    tile_columns: Optional[int] = None,
    prune_bounds: Optional[np.ndarray] = None,
    stats: Optional[AdvanceStats] = None,
) -> BatchSDTWState:
    """Advance many resumable alignments with one vectorized wavefront.

    ``queries`` holds one (possibly ragged-length) array of new query samples
    per lane; lanes contributing no samples this round pass an empty array and
    their state flows through untouched. Each lane computes exactly the
    no-reference-deletion recurrence of :func:`sdtw_resume`, so per-lane rows,
    runs and costs are **bit-identical** to calling ``sdtw_resume`` once per
    lane — the batch kernel only restructures the Python-loop work into
    ``(lanes, reference)`` matrix operations, one set per wavefront step.

    A lane whose ``state.samples_processed`` is zero is initialized from its
    first sample, as a fresh ``sdtw_resume`` call would be. Returns a new
    :class:`BatchSDTWState`; the input state is not mutated.

    With ``track_runs=False`` the kernel skips maintaining the raw dwell
    counters and the returned state's ``runs`` hold the *capped* counters
    ``min(run, match_bonus_cap)`` instead (or pass through unchanged when no
    bonus is configured). The recurrence only ever consumes the capped value,
    so rows, costs and resumption stay bit-identical — this is the execution
    engine's hot-path mode, shaving the counter updates from every wavefront
    step.

    Execution notes: lanes are processed in descending order of remaining
    samples so the active set of every wavefront step is a contiguous row
    *prefix* of the stacked state (views, never masked copies), and the
    all-integer configurations (quantized, absolute distance, whole-number
    bonus — the hardware data path) run on an ``int32`` fast path that
    carries the saturating ``bonus * min(run, cap)`` table directly. All
    intermediate values are exact small integers on both paths, so the
    outputs remain bit-identical to the scalar kernel.

    ``block_starts`` declares a multi-target **panel** layout: the reference
    is N independent target references concatenated along the column axis,
    each beginning at one of the listed offsets. The recurrence's only
    cross-column dependency is the diagonal shift, so injecting the boundary
    sentinel at every block start makes each block's columns bit-identical to
    an independent single-reference run over that target — one wavefront
    advances the whole panel. Reduce per target afterwards with
    :func:`reduce_block_minima`.

    ``tile_columns`` advances the columns in blocks of (at most) that width
    instead of sweeping the whole row every wavefront step. Because
    information moves at most one column rightward per query step, each tile
    extended with a left *halo* of ``max(chunk length)`` columns of the
    pre-advance state computes its own columns exactly; the halo region is
    recomputed and discarded. Outputs are bit-identical to the untiled
    advance — tiling is purely an execution-locality knob (keep a hot tile in
    cache across all steps of a chunk; stripe tiles across workers).

    ``prune_bounds`` (one kill threshold per lane, ``inf`` = never prune the
    lane) turns on the pruning layer: columns whose stored cost exceeds the
    lane's bound are *frozen* at their exact pre-round value and only the
    per-block ``[lo, hi)`` spans of still-viable columns are advanced; a lane
    with no viable column anywhere skips the round outright (early
    abandoning). The bound must already include the maximum remaining
    ``match_bonus`` credit a path could still earn (see
    :class:`repro.batch.BatchSDTWEngine`, which derives it from the eject
    threshold and the lane's current panel winner) — then every output cost
    at or below the *decision* bound is bit-identical to the brute-force
    advance, and pruned costs above it only ever over-estimate, so
    accept/eject decisions and reported winners below the bound never change.
    ``stats`` accumulates the advanced/pruned cell counts of the call.
    """
    cfg = config if config is not None else SDTWConfig()
    if cfg.allow_reference_deletions:
        raise ValueError("sdtw_resume_batch requires allow_reference_deletions=False")

    xp = numpy_module()
    input_dtype = xp.int64 if cfg.quantize else xp.float64
    reference_values = xp.asarray(reference, dtype=input_dtype)
    if reference_values.ndim != 1 or reference_values.shape[0] == 0:
        raise ValueError("reference must be a non-empty 1-D array")

    lanes = [xp.asarray(q, dtype=input_dtype) for q in queries]
    if any(lane.ndim != 1 for lane in lanes):
        raise ValueError("every lane query must be a 1-D array")
    n_lanes = len(lanes)

    if state is None:
        state = BatchSDTWState.initial(n_lanes, int(reference_values.shape[0]), cfg)
    if state.n_lanes != n_lanes:
        raise ValueError(f"state has {state.n_lanes} lanes but {n_lanes} queries were given")
    if state.reference_length != int(reference_values.shape[0]):
        raise ValueError(
            f"state reference length {state.reference_length} does not match "
            f"reference length {int(reference_values.shape[0])}"
        )

    rows, runs, processed = sdtw_resume_batch_arrays(
        lanes,
        reference_values,
        cfg,
        state.rows,
        state.runs,
        state.samples_processed,
        track_runs=track_runs,
        block_starts=block_starts,
        tile_columns=tile_columns,
        prune_bounds=prune_bounds,
        stats=stats,
        xp=xp,
    )
    return BatchSDTWState(rows=rows, runs=runs, samples_processed=processed)


def sdtw_resume_batch_arrays(
    lanes: Sequence[np.ndarray],
    reference_values: np.ndarray,
    config: SDTWConfig,
    rows: np.ndarray,
    runs: np.ndarray,
    samples_processed: np.ndarray,
    track_runs: bool = True,
    block_starts: Optional[np.ndarray] = None,
    tile_columns: Optional[int] = None,
    prune_bounds: Optional[np.ndarray] = None,
    stats: Optional[AdvanceStats] = None,
    xp: Optional[ArrayModule] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The batched wavefront on raw, possibly device-resident, arrays.

    This is the device-agnostic core of :func:`sdtw_resume_batch`: every
    array operation is issued through the
    :class:`~repro.core.array_module.ArrayModule` ``xp`` (NumPy by default),
    so the identical kernel advances CuPy or Torch arrays when an
    accelerator backend supplies them — the ``"gpu"`` execution backend
    calls this function directly with its device state. ``lanes``,
    ``reference_values``, ``rows``, ``runs`` and ``samples_processed`` must
    already live in ``xp``'s memory space on the kernel scale (shaped as in
    :class:`BatchSDTWState`); the inputs are never mutated and three new
    arrays ``(rows, runs, samples_processed)`` come back in the same memory
    space. Ordering metadata (the lane sort, each wavefront step's active
    prefix width) is computed host-side with plain Python — it is control
    flow, not data, and keeping it off the device avoids a sync per step.
    """
    cfg = config
    xp = xp if xp is not None else numpy_module()
    n_lanes = len(lanes)
    reference_length = int(reference_values.shape[0])
    starts = normalize_block_starts(block_starts, reference_length)

    bonus = float(cfg.match_bonus)
    cap = cfg.match_bonus_cap
    lengths = [int(lane.shape[0]) for lane in lanes]
    processed = samples_processed + xp.asarray(lengths, dtype=xp.int64)
    if n_lanes == 0 or max(lengths, default=0) == 0:
        return xp.copy(rows), xp.copy(runs), processed

    if prune_bounds is not None:
        bounds_host = np.asarray(prune_bounds, dtype=np.float64).ravel()
        if bounds_host.shape[0] != n_lanes:
            raise ValueError(
                f"prune_bounds has {bounds_host.shape[0]} entries "
                f"but {n_lanes} lanes were given"
            )
        if not np.all(np.isinf(bounds_host)):
            return _resume_batch_pruned(
                lanes, reference_values, cfg, rows, runs, samples_processed,
                track_runs, starts, tile_columns, processed, bounds_host,
                stats, xp,
            )
    if stats is not None:
        stats.add(sum(lengths) * reference_length, 0)

    if tile_columns is not None and 0 < int(tile_columns) < reference_length:
        return _resume_batch_tiled(
            lanes, reference_values, cfg, rows, runs, samples_processed,
            track_runs, starts, int(tile_columns), processed, max(lengths), xp,
        )

    # A fresh lane consumes its first sample as the initial DP row and joins
    # the wavefront afterwards, so its effective step count is one shorter.
    samples_host = xp.to_numpy(samples_processed)
    fresh = [lengths[i] > 0 and int(samples_host[i]) == 0 for i in range(n_lanes)]
    effective = [lengths[i] - (1 if fresh[i] else 0) for i in range(n_lanes)]
    order = xp.stable_argsort_descending(effective)
    inverse = [0] * n_lanes
    for position, lane_index in enumerate(order):
        inverse[lane_index] = position
    neg_sorted = [-effective[i] for i in order]
    max_steps = effective[order[0]]

    input_dtype = xp.int64 if cfg.quantize else xp.float64
    padded = xp.zeros((n_lanes, max(max_steps, 1)), dtype=input_dtype)
    first_values = xp.zeros(n_lanes, dtype=input_dtype)
    for position, lane_index in enumerate(order):
        lane = lanes[lane_index]
        size = lengths[lane_index]
        if size == 0:
            continue
        if fresh[lane_index]:
            first_values[position] = lane[0]
            padded[position, : size - 1] = lane[1:]
        else:
            padded[position, :size] = lane
    fresh_sorted = xp.asarray([fresh[i] for i in order], dtype=xp.bool_)
    order_index = xp.asarray(order, dtype=xp.intp)
    inverse_index = xp.asarray(inverse, dtype=xp.intp)

    use_int_path = (
        cfg.quantize
        and cfg.distance == "absolute"
        and float(bonus).is_integer()
        and cap * bonus < 2**28
    )
    if use_int_path:
        # The int32 path needs every intermediate cost to stay far from the
        # sentinel; bound it by what this call can add to what the state holds.
        value_bound = max(
            int(xp.max(xp.abs(padded))),
            int(xp.max(xp.abs(first_values))),
            int(xp.max(xp.abs(reference_values))),
        )
        rows_bound = int(xp.max(xp.abs(rows)))
        growth = (2 * value_bound + int(bonus) + 1) * max(lengths)
        use_int_path = rows_bound + growth < 2**28

    # Non-zero panel block boundaries, as an index array in xp's space (None
    # for the single-block case so the kernels skip the sentinel writes).
    inner_index = (
        xp.asarray([int(start) for start in starts[1:]], dtype=xp.intp)
        if starts.size > 1
        else None
    )
    if use_int_path:
        out_rows, out_runs = _advance_batch_int32(
            padded,
            first_values,
            fresh_sorted,
            neg_sorted,
            max_steps,
            rows[order_index],
            runs[order_index],
            reference_values,
            int(bonus),
            cap,
            track_runs,
            inner_index,
            xp,
        )
        out_rows = xp.astype(out_rows, xp.int64)[inverse_index]
        out_runs = xp.astype(out_runs, xp.int64)[inverse_index]
    else:
        out_rows, out_runs = _advance_batch_generic(
            padded,
            first_values,
            fresh_sorted,
            neg_sorted,
            max_steps,
            rows[order_index],
            runs[order_index],
            reference_values,
            cfg,
            inner_index,
            xp,
        )
        if cfg.quantize and cfg.uses_bonus:
            out_rows = xp.astype(xp.rint(out_rows), xp.int64)
        out_rows = out_rows[inverse_index]
        out_runs = out_runs[inverse_index]
    return out_rows, out_runs, processed


def _resume_batch_tiled(
    lanes: List[np.ndarray],
    reference_values: np.ndarray,
    cfg: SDTWConfig,
    rows: np.ndarray,
    runs: np.ndarray,
    samples_processed: np.ndarray,
    track_runs: bool,
    starts: np.ndarray,
    tile_columns: int,
    processed: np.ndarray,
    halo_width: int,
    xp: ArrayModule,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-tiled advance: identical outputs, one cache-sized tile at a time.

    Each tile re-runs the wavefront over ``[tile_start - halo, tile_end)``
    using the *pre-advance* state; only the tile's own columns are kept. A
    halo of ``max(chunk length)`` columns is sufficient because the
    recurrence moves information at most one column rightward per query
    step, and a tile starting exactly at a block boundary needs no halo at
    all (the boundary sentinel cuts the dependency). On a device array
    module this is the micro-batching knob: each halo-extended tile is a
    bounded working set advanced end to end before the next tile streams in.
    """
    n_columns = int(reference_values.shape[0])
    out_rows = xp.empty_like(rows)
    out_runs = xp.empty_like(runs)
    edges = list(range(0, n_columns, tile_columns)) + [n_columns]
    for tile_start, tile_end in zip(edges[:-1], edges[1:]):
        halo_start = tile_halo_start(starts, tile_start, halo_width)
        sub_starts = tile_block_starts(starts, halo_start, tile_end)
        advanced_rows, advanced_runs, _ = sdtw_resume_batch_arrays(
            lanes,
            reference_values[halo_start:tile_end],
            cfg,
            rows[:, halo_start:tile_end],
            runs[:, halo_start:tile_end],
            samples_processed,
            track_runs=track_runs,
            block_starts=sub_starts,
            xp=xp,
        )
        keep = tile_start - halo_start
        out_rows[:, tile_start:tile_end] = advanced_rows[:, keep:]
        out_runs[:, tile_start:tile_end] = advanced_runs[:, keep:]
    return out_rows, out_runs, processed


def _resume_batch_pruned(
    lanes: List[np.ndarray],
    reference_values: np.ndarray,
    cfg: SDTWConfig,
    rows: np.ndarray,
    runs: np.ndarray,
    samples_processed: np.ndarray,
    track_runs: bool,
    starts: np.ndarray,
    tile_columns: Optional[int],
    processed: np.ndarray,
    bounds_host: np.ndarray,
    stats: Optional[AdvanceStats],
    xp: ArrayModule,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Prune-bounded advance: exact below the bound, frozen above it.

    Per lane, a column whose stored cost exceeds the lane's kill bound is
    *dead*: no alignment continuing through it can end at or below the
    decision bound the caller derived the kill bound from (the kill bound
    already includes the maximum remaining ``match_bonus`` credit). Dead
    columns keep their exact stored value — freezing, not sentinel-poisoning,
    which keeps the int32 fast path eligible and lets a column whose bound
    later relaxes resume from bit-exact state. A lane with no live column
    skips the round entirely (early abandoning); the survivors advance only
    the per-block ``[lo, last_live + 1 + steps)`` spans of the union live
    mask — information moves one column rightward per query step and never
    crosses a block boundary, so everything outside the spans would stay dead
    all round. The severed diagonal at each span's left edge only ever
    *raises* values that were already provably above the bound, so every
    output cost at or below the decision bound is bit-identical to the
    brute-force advance.
    """
    n_lanes = len(lanes)
    reference_length = int(reference_values.shape[0])
    lengths = [int(lane.shape[0]) for lane in lanes]
    nominal = sum(lengths) * reference_length
    samples_host = xp.to_numpy(samples_processed)
    rows_host = xp.to_numpy(rows)

    surviving: List[int] = []
    union = np.zeros(reference_length, dtype=bool)
    for index in range(n_lanes):
        if lengths[index] == 0:
            continue
        if int(samples_host[index]) == 0:
            # A fresh lane's first sample initializes every column, so it
            # joins the wavefront unpruned this round.
            surviving.append(index)
            union[:] = True
            continue
        alive = rows_host[index] <= bounds_host[index]
        if alive.any():
            surviving.append(index)
            union |= alive

    out_rows = xp.copy(rows)
    out_runs = xp.copy(runs)
    if not surviving:
        if stats is not None:
            stats.add(0, nominal)
        return out_rows, out_runs, processed

    max_steps = max(lengths[index] for index in surviving)
    block_bounds = [int(start) for start in starts] + [reference_length]
    spans: List[Tuple[int, int]] = []
    for block in range(len(block_bounds) - 1):
        start, end = block_bounds[block], block_bounds[block + 1]
        alive_columns = np.flatnonzero(union[start:end])
        if alive_columns.size == 0:
            continue
        lo = start + int(alive_columns[0])
        hi = min(start + int(alive_columns[-1]) + 1 + max_steps, end)
        if spans and spans[-1][1] == lo:
            spans[-1] = (spans[-1][0], hi)
        else:
            spans.append((lo, hi))

    surviving_index = xp.asarray(surviving, dtype=xp.intp)
    sub_lanes = [lanes[index] for index in surviving]
    sub_samples = samples_processed[surviving_index]
    advanced_width = 0
    for lo, hi in spans:
        sub_starts = tile_block_starts(starts, lo, hi)
        advanced_rows, advanced_runs, _ = sdtw_resume_batch_arrays(
            sub_lanes,
            reference_values[lo:hi],
            cfg,
            rows[surviving_index][:, lo:hi],
            runs[surviving_index][:, lo:hi],
            sub_samples,
            track_runs=track_runs,
            block_starts=sub_starts,
            tile_columns=tile_columns,
            xp=xp,
        )
        out_rows[:, lo:hi][surviving_index] = advanced_rows
        out_runs[:, lo:hi][surviving_index] = advanced_runs
        advanced_width += hi - lo
    if stats is not None:
        advanced = sum(lengths[index] for index in surviving) * advanced_width
        stats.add(advanced, nominal - advanced)
    return out_rows, out_runs, processed


def _advance_batch_int32(
    padded: np.ndarray,
    first_values: np.ndarray,
    fresh: np.ndarray,
    neg_sorted: List[int],
    max_steps: int,
    rows_in: np.ndarray,
    runs_in: np.ndarray,
    reference_values: np.ndarray,
    bonus: int,
    cap: int,
    track_runs: bool,
    inner_index: Optional[np.ndarray],
    xp: ArrayModule,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integer wavefront over lane-sorted state (the hardware data path).

    All quantities are exact small integers, so ``int32`` arithmetic matches
    the float64 scalar kernel bit for bit while halving memory traffic. The
    dwell counters enter the recurrence only through ``bonus * min(run,
    cap)``, which is carried directly as a saturating per-column table —
    turning the scalar kernel's shift/minimum/multiply/where cascade into
    in-place ``minimum``/``add`` passes over contiguous prefixes.
    ``inner_index`` holds the non-zero panel block boundaries; they receive
    the same sentinel as column 0, severing the diagonal between targets.
    Scalars stay plain Python ints: both NumPy and the device modules keep
    the array's ``int32`` dtype when combining with weak Python scalars.
    """
    n_lanes, reference_length = rows_in.shape
    big = 2**29
    cap_bonus = bonus * cap

    rows = xp.astype(rows_in, xp.int32)
    runs = xp.astype(runs_in, xp.int32)
    query = xp.astype(padded, xp.int32)
    reference32 = xp.astype(reference_values, xp.int32)
    if bool(xp.any(fresh)):
        firsts = xp.astype(first_values, xp.int32)
        rows[fresh] = xp.abs(firsts[fresh][:, None] - reference32[None, :])
        runs[fresh] = 1
    bonus_of = None
    if bonus:
        bonus_of = bonus * xp.minimum(runs, cap)

    local = xp.empty((n_lanes, reference_length), dtype=xp.int32)
    diagonal = xp.empty((n_lanes, reference_length), dtype=xp.int32)
    take = xp.empty((n_lanes, reference_length), dtype=xp.bool_)
    for step in range(max_steps):
        k = bisect_left(neg_sorted, -step)
        if k == 0:
            break
        row_view = rows[:k]
        local_view = local[:k]
        diagonal_view = diagonal[:k]
        take_view = take[:k]
        xp.subtract(query[:k, step][:, None], reference32[None, :], out=local_view)
        xp.abs(local_view, out=local_view)
        if bonus:
            xp.subtract(row_view[:, :-1], bonus_of[:k, :-1], out=diagonal_view[:, 1:])
        else:
            diagonal_view[:, 1:] = row_view[:, :-1]
        diagonal_view[:, 0] = big
        if inner_index is not None:
            diagonal_view[:, inner_index] = big
        if track_runs or bonus:
            xp.less(diagonal_view, row_view, out=take_view)
        xp.minimum(row_view, diagonal_view, out=row_view)
        row_view += local_view
        if track_runs:
            runs[:k] += 1
            xp.copyto(runs[:k], 1, where=take_view)
        if bonus:
            bonus_view = bonus_of[:k]
            bonus_view += bonus
            xp.minimum(bonus_view, cap_bonus, out=bonus_view)
            xp.copyto(bonus_view, bonus, where=take_view)
    if not track_runs and bonus:
        # Recover the capped counters the bonus table carries; resumption
        # only ever consumes min(run, cap), so this is lossless.
        runs = bonus_of // bonus
    return rows, runs


def _local_distance_xp(value, reference, config: SDTWConfig, xp: ArrayModule):
    """:func:`_local_distance` for the device-agnostic batched path."""
    diff = value - reference
    if config.distance == "squared":
        return diff * diff
    return xp.abs(diff)


def _advance_batch_generic(
    padded: np.ndarray,
    first_values: np.ndarray,
    fresh: np.ndarray,
    neg_sorted: List[int],
    max_steps: int,
    rows_in: np.ndarray,
    runs_in: np.ndarray,
    reference_values: np.ndarray,
    cfg: SDTWConfig,
    inner_index: Optional[np.ndarray],
    xp: ArrayModule,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference wavefront over lane-sorted state, any resumable config.

    Mirrors :func:`sdtw_resume` operation for operation (same accumulator
    dtype, same ``where`` selections), stacked over the active lane prefix.
    ``inner_index`` (non-zero panel block boundaries) gets the same boundary
    treatment as column 0.
    """
    n_lanes, reference_length = rows_in.shape
    bonus = float(cfg.match_bonus)
    cap = cfg.match_bonus_cap
    integer_accumulator = cfg.quantize and not cfg.uses_bonus
    accumulator = xp.int64 if integer_accumulator else xp.float64
    big = 2**40 if integer_accumulator else xp.inf

    rows = xp.astype(rows_in, accumulator)
    runs = xp.copy(runs_in)
    if bool(xp.any(fresh)):
        rows[fresh] = xp.astype(
            _local_distance_xp(
                first_values[fresh][:, None], reference_values[None, :], cfg, xp
            ),
            accumulator,
        )
        runs[fresh] = 1

    cost_shift = xp.empty((n_lanes, reference_length), dtype=accumulator)
    run_shift = xp.empty((n_lanes, reference_length), dtype=xp.int64)
    for step in range(max_steps):
        k = bisect_left(neg_sorted, -step)
        if k == 0:
            break
        previous = rows[:k]
        local = xp.astype(
            _local_distance_xp(
                padded[:k, step][:, None], reference_values[None, :], cfg, xp
            ),
            accumulator,
        )
        cost_shift[:k, 0] = big
        cost_shift[:k, 1:] = previous[:, :-1]
        if inner_index is not None:
            cost_shift[:k, inner_index] = big
        if bonus:
            run_shift[:k, 0] = 0
            run_shift[:k, 1:] = runs[:k, :-1]
            if inner_index is not None:
                run_shift[:k, inner_index] = 0
            diagonal = cost_shift[:k] - bonus * xp.minimum(run_shift[:k], cap)
        else:
            diagonal = cost_shift[:k]
        take_diagonal = diagonal < previous
        rows[:k] = local + xp.where(take_diagonal, diagonal, previous)
        runs[:k] = xp.where(take_diagonal, 1, runs[:k] + 1)
    return rows, runs


def sdtw_cost(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
) -> SDTWResult:
    """Optimal subsequence alignment cost of ``query`` against ``reference``."""
    cfg = config if config is not None else SDTWConfig()
    last_row = sdtw_last_row(query, reference, cfg)
    end_position = int(np.argmin(last_row))
    return SDTWResult(
        cost=float(last_row[end_position]),
        end_position=end_position,
        query_length=int(np.asarray(query).size),
        reference_length=int(np.asarray(reference).size),
    )


def _last_row_no_deletions(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> np.ndarray:
    """Hardware recurrence: ``S[i,j] = d + min(S[i-1,j-1], S[i-1,j])``."""
    big = _infinity_for(query, config)
    previous = _local_distance(query[0], reference, config).astype(previous_dtype(config))
    shifted = np.empty_like(previous)
    for i in range(1, query.size):
        local = _local_distance(query[i], reference, config)
        shifted[0] = big
        shifted[1:] = previous[:-1]
        previous = local + np.minimum(shifted, previous)
    return previous


def _last_row_no_deletions_bonus(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> np.ndarray:
    """Hardware recurrence with the translocation-rate match bonus.

    Alongside the cost row we carry ``run[j]``: the number of query samples
    the best path ending at ``(i, j)`` has aligned to reference position
    ``j``. Taking the diagonal move to a new reference base earns a bonus of
    ``match_bonus * min(run_on_previous_base, match_bonus_cap)``.
    """
    big = np.inf
    bonus = float(config.match_bonus)
    cap = config.match_bonus_cap

    # The bonus subtraction mixes the integer costs with a (possibly
    # fractional) reward, so this kernel accumulates in float64 and rounds at
    # the end when the quantized data path is selected. With an integer bonus
    # the intermediate values stay exactly integral.
    previous = _local_distance(query[0], reference, config).astype(np.float64)
    run = np.ones(reference.size, dtype=np.int64)

    cost_shift = np.empty_like(previous)
    run_shift = np.empty_like(run)
    for i in range(1, query.size):
        local = _local_distance(query[i], reference, config).astype(np.float64)

        cost_shift[0] = big
        cost_shift[1:] = previous[:-1]
        run_shift[0] = 0
        run_shift[1:] = run[:-1]

        diagonal = cost_shift - bonus * np.minimum(run_shift, cap)
        vertical = previous

        take_diagonal = diagonal < vertical
        best = np.where(take_diagonal, diagonal, vertical)
        previous = local + best
        run = np.where(take_diagonal, 1, run + 1)
    if config.quantize:
        return np.rint(previous)
    return previous


def _last_row_with_deletions(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> np.ndarray:
    """Vanilla recurrence: ``S[i,j] = d + min(S[i-1,j-1], S[i-1,j], S[i,j-1])``.

    The in-row dependency ``S[i, j-1]`` is eliminated exactly: with
    ``m[j] = min(S[i-1, j-1], S[i-1, j])`` the recurrence expands to
    ``S[i, j] = D[j] + min_{l <= j} (m[l] - D[l-1])`` where ``D`` is the
    prefix sum of the local distances along the row, so one cumulative
    minimum per row reproduces the loop result.
    """
    previous = _local_distance(query[0], reference, config).astype(np.float64)
    reference_float = reference.astype(np.float64)
    query_float = query.astype(np.float64)
    big = np.inf
    for i in range(1, query_float.size):
        local = _local_distance(query_float[i], reference_float, config)
        shifted = np.empty_like(previous)
        shifted[0] = big
        shifted[1:] = previous[:-1]
        m = np.minimum(shifted, previous)
        prefix = np.cumsum(local)
        offset = np.empty_like(prefix)
        offset[0] = 0.0
        offset[1:] = prefix[:-1]
        previous = prefix + np.minimum.accumulate(m - offset)
    if config.quantize:
        return np.rint(previous)
    return previous


def previous_dtype(config: SDTWConfig):
    """Accumulator dtype for the configured kernel."""
    return np.int64 if config.quantize else np.float64


def _infinity_for(query: np.ndarray, config: SDTWConfig):
    if config.quantize:
        # Large enough to never be selected, small enough to avoid overflow
        # after a full query of additions.
        return np.int64(2**40)
    return np.inf


def sdtw_cost_matrix(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
    return_path: bool = False,
) -> Tuple[np.ndarray, Optional[List[Tuple[int, int]]]]:
    """Direct (loop-based) sDTW returning the full DP matrix.

    Intended for small inputs: tests use it to validate the vectorized
    kernels, and examples use it to visualize alignment paths. When
    ``return_path`` is True the optimal subsequence alignment path is traced
    back from the best cell of the last row.
    """
    cfg = config if config is not None else SDTWConfig()
    query_values, reference_values = _as_kernel_arrays(query, reference, cfg)
    n, m = query_values.size, reference_values.size
    matrix = np.zeros((n, m), dtype=np.float64)
    run = np.ones((n, m), dtype=np.int64)
    matrix[0, :] = _local_distance(query_values[0], reference_values, cfg)

    use_bonus = cfg.uses_bonus
    for i in range(1, n):
        for j in range(m):
            local = float(_local_distance(query_values[i], reference_values[j : j + 1], cfg)[0])
            # Candidate order matters only for ties; vertical is listed first so
            # tie-breaking matches the vectorized kernels (which prefer the
            # vertical move when the bonus-adjusted diagonal is not strictly
            # smaller).
            candidates = [(matrix[i - 1, j], "vertical")]
            if j > 0:
                diagonal = matrix[i - 1, j - 1]
                if use_bonus:
                    diagonal = diagonal - cfg.match_bonus * min(run[i - 1, j - 1], cfg.match_bonus_cap)
                candidates.append((diagonal, "diagonal"))
            if cfg.allow_reference_deletions and j > 0:
                candidates.append((matrix[i, j - 1], "horizontal"))
            best_value, best_move = min(candidates, key=lambda item: item[0])
            matrix[i, j] = local + best_value
            if use_bonus:
                run[i, j] = 1 if best_move == "diagonal" else run[i - 1, j] + 1

    path: Optional[List[Tuple[int, int]]] = None
    if return_path:
        path = _traceback(matrix, query_values, reference_values, cfg, run)
    return matrix, path


def _traceback(
    matrix: np.ndarray,
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
    run: np.ndarray,
) -> List[Tuple[int, int]]:
    n, m = matrix.shape
    i = n - 1
    j = int(np.argmin(matrix[-1]))
    path = [(i, j)]
    while i > 0:
        local = float(_local_distance(query[i], reference[j : j + 1], config)[0])
        remaining = matrix[i, j] - local
        candidates = []
        if j > 0:
            diagonal = matrix[i - 1, j - 1]
            if config.uses_bonus:
                diagonal = diagonal - config.match_bonus * min(run[i - 1, j - 1], config.match_bonus_cap)
            candidates.append((abs(diagonal - remaining), i - 1, j - 1))
        candidates.append((abs(matrix[i - 1, j] - remaining), i - 1, j))
        if config.allow_reference_deletions and j > 0:
            candidates.append((abs(matrix[i, j - 1] - remaining), i, j - 1))
        _, i, j = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return path
