"""Subsequence dynamic time warping kernels (paper Sections 4.3 and 4.7).

Subsequence DTW (sDTW) aligns the whole query (a read prefix) against *any*
contiguous region of the reference squiggle: the first query sample may start
at any reference position for free, and the answer is the minimum value of
the last DP row.

Three kernels are provided, all computing identical costs for their
configuration:

* :func:`sdtw_cost_matrix` — a direct, loop-based implementation returning
  the full DP matrix (and optionally the alignment path). Used for tests and
  for visualizing small alignments; quadratic memory.
* :func:`sdtw_last_row` / :func:`sdtw_cost` — row-vectorized NumPy kernels
  holding only two rows. The vanilla recurrence's in-row dependency
  (``S[i, j-1]``) is resolved exactly with a prefix-minimum transformation,
  so both the vanilla and the hardware ("no reference deletions") recurrences
  are O(N) NumPy operations per query sample.

The hardware accelerator model in :mod:`repro.hardware` reuses the integer
kernel so the systolic array is bit-compatible with the software filter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import SDTWConfig

__all__ = [
    "SDTWResult",
    "SDTWState",
    "sdtw_cost",
    "sdtw_cost_matrix",
    "sdtw_last_row",
    "sdtw_resume",
]


def _as_kernel_arrays(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cast inputs to the dtype the configured kernel accumulates in."""
    dtype = np.int64 if config.quantize else np.float64
    query_values = np.asarray(query, dtype=dtype)
    reference_values = np.asarray(reference, dtype=dtype)
    if query_values.ndim != 1 or reference_values.ndim != 1:
        raise ValueError("query and reference must be 1-D arrays")
    if query_values.size == 0 or reference_values.size == 0:
        raise ValueError("query and reference must be non-empty")
    return query_values, reference_values


def _local_distance(value, reference: np.ndarray, config: SDTWConfig) -> np.ndarray:
    diff = value - reference
    if config.distance == "squared":
        return diff * diff
    return np.abs(diff)


class SDTWResult:
    """Outcome of one sDTW alignment: the optimal cost and where it ends."""

    __slots__ = ("cost", "end_position", "per_sample_cost", "query_length", "reference_length")

    def __init__(
        self,
        cost: float,
        end_position: int,
        query_length: int,
        reference_length: int,
    ) -> None:
        self.cost = float(cost)
        self.end_position = int(end_position)
        self.query_length = int(query_length)
        self.reference_length = int(reference_length)
        self.per_sample_cost = self.cost / self.query_length if self.query_length else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SDTWResult(cost={self.cost:.2f}, end_position={self.end_position}, "
            f"per_sample_cost={self.per_sample_cost:.3f})"
        )


def sdtw_last_row(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
) -> np.ndarray:
    """Return the final DP row ``S[N-1, :]`` of the configured sDTW recurrence.

    The minimum of this row is the subsequence alignment cost; its argmin is
    the reference position where the best alignment ends.
    """
    cfg = config if config is not None else SDTWConfig()
    query_values, reference_values = _as_kernel_arrays(query, reference, cfg)
    if cfg.allow_reference_deletions:
        return _last_row_with_deletions(query_values, reference_values, cfg)
    if cfg.uses_bonus:
        return _last_row_no_deletions_bonus(query_values, reference_values, cfg)
    return _last_row_no_deletions(query_values, reference_values, cfg)


class SDTWState:
    """Resumable kernel state after processing a query prefix.

    The hardware's multi-stage filtering (paper Section 5.1, "Variable Query
    Length") stores the last PE's costs to DRAM so that alignment can continue
    when a longer prefix is requested. ``row`` is the last DP row and ``run``
    the per-column dwell counters the match bonus needs.
    """

    __slots__ = ("row", "run", "samples_processed")

    def __init__(self, row: np.ndarray, run: Optional[np.ndarray], samples_processed: int) -> None:
        self.row = np.asarray(row, dtype=np.float64)
        self.run = None if run is None else np.asarray(run, dtype=np.int64)
        self.samples_processed = int(samples_processed)

    @property
    def cost(self) -> float:
        return float(self.row.min())

    @property
    def end_position(self) -> int:
        return int(np.argmin(self.row))


def sdtw_resume(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
    state: Optional[SDTWState] = None,
) -> SDTWState:
    """Process (more of) a query through the no-reference-deletion recurrence.

    Called without ``state`` this is equivalent to :func:`sdtw_last_row` but
    additionally returns a resumable :class:`SDTWState`; called with a state
    it continues the alignment as if the new samples had been part of the
    original query. Only the hardware recurrences (no reference deletions)
    are resumable, mirroring the accelerator.
    """
    cfg = config if config is not None else SDTWConfig()
    if cfg.allow_reference_deletions:
        raise ValueError("sdtw_resume requires allow_reference_deletions=False")
    query_values, reference_values = _as_kernel_arrays(query, reference, cfg)
    if query_values.size == 0:
        raise ValueError("query must be non-empty")

    bonus = float(cfg.match_bonus)
    cap = cfg.match_bonus_cap
    big = np.inf

    if state is None:
        previous = _local_distance(query_values[0], reference_values, cfg).astype(np.float64)
        run = np.ones(reference_values.size, dtype=np.int64)
        start_index = 1
        processed = 1
    else:
        if state.row.size != reference_values.size:
            raise ValueError(
                f"state row length {state.row.size} does not match reference length {reference_values.size}"
            )
        previous = state.row.astype(np.float64).copy()
        run = (
            state.run.copy()
            if state.run is not None
            else np.ones(reference_values.size, dtype=np.int64)
        )
        start_index = 0
        processed = state.samples_processed

    cost_shift = np.empty_like(previous)
    run_shift = np.empty_like(run)
    for i in range(start_index, query_values.size):
        local = _local_distance(query_values[i], reference_values, cfg).astype(np.float64)
        cost_shift[0] = big
        cost_shift[1:] = previous[:-1]
        run_shift[0] = 0
        run_shift[1:] = run[:-1]
        diagonal = cost_shift - bonus * np.minimum(run_shift, cap) if bonus else cost_shift
        take_diagonal = diagonal < previous
        previous = local + np.where(take_diagonal, diagonal, previous)
        run = np.where(take_diagonal, 1, run + 1)
        processed += 1

    row = np.rint(previous) if cfg.quantize and bonus else previous
    return SDTWState(row=row, run=run, samples_processed=processed)


def sdtw_cost(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
) -> SDTWResult:
    """Optimal subsequence alignment cost of ``query`` against ``reference``."""
    cfg = config if config is not None else SDTWConfig()
    last_row = sdtw_last_row(query, reference, cfg)
    end_position = int(np.argmin(last_row))
    return SDTWResult(
        cost=float(last_row[end_position]),
        end_position=end_position,
        query_length=int(np.asarray(query).size),
        reference_length=int(np.asarray(reference).size),
    )


def _last_row_no_deletions(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> np.ndarray:
    """Hardware recurrence: ``S[i,j] = d + min(S[i-1,j-1], S[i-1,j])``."""
    big = _infinity_for(query, config)
    previous = _local_distance(query[0], reference, config).astype(previous_dtype(config))
    shifted = np.empty_like(previous)
    for i in range(1, query.size):
        local = _local_distance(query[i], reference, config)
        shifted[0] = big
        shifted[1:] = previous[:-1]
        previous = local + np.minimum(shifted, previous)
    return previous


def _last_row_no_deletions_bonus(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> np.ndarray:
    """Hardware recurrence with the translocation-rate match bonus.

    Alongside the cost row we carry ``run[j]``: the number of query samples
    the best path ending at ``(i, j)`` has aligned to reference position
    ``j``. Taking the diagonal move to a new reference base earns a bonus of
    ``match_bonus * min(run_on_previous_base, match_bonus_cap)``.
    """
    big = np.inf
    bonus = float(config.match_bonus)
    cap = config.match_bonus_cap

    # The bonus subtraction mixes the integer costs with a (possibly
    # fractional) reward, so this kernel accumulates in float64 and rounds at
    # the end when the quantized data path is selected. With an integer bonus
    # the intermediate values stay exactly integral.
    previous = _local_distance(query[0], reference, config).astype(np.float64)
    run = np.ones(reference.size, dtype=np.int64)

    cost_shift = np.empty_like(previous)
    run_shift = np.empty_like(run)
    for i in range(1, query.size):
        local = _local_distance(query[i], reference, config).astype(np.float64)

        cost_shift[0] = big
        cost_shift[1:] = previous[:-1]
        run_shift[0] = 0
        run_shift[1:] = run[:-1]

        diagonal = cost_shift - bonus * np.minimum(run_shift, cap)
        vertical = previous

        take_diagonal = diagonal < vertical
        best = np.where(take_diagonal, diagonal, vertical)
        previous = local + best
        run = np.where(take_diagonal, 1, run + 1)
    if config.quantize:
        return np.rint(previous)
    return previous


def _last_row_with_deletions(
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
) -> np.ndarray:
    """Vanilla recurrence: ``S[i,j] = d + min(S[i-1,j-1], S[i-1,j], S[i,j-1])``.

    The in-row dependency ``S[i, j-1]`` is eliminated exactly: with
    ``m[j] = min(S[i-1, j-1], S[i-1, j])`` the recurrence expands to
    ``S[i, j] = D[j] + min_{l <= j} (m[l] - D[l-1])`` where ``D`` is the
    prefix sum of the local distances along the row, so one cumulative
    minimum per row reproduces the loop result.
    """
    previous = _local_distance(query[0], reference, config).astype(np.float64)
    reference_float = reference.astype(np.float64)
    query_float = query.astype(np.float64)
    big = np.inf
    for i in range(1, query_float.size):
        local = _local_distance(query_float[i], reference_float, config)
        shifted = np.empty_like(previous)
        shifted[0] = big
        shifted[1:] = previous[:-1]
        m = np.minimum(shifted, previous)
        prefix = np.cumsum(local)
        offset = np.empty_like(prefix)
        offset[0] = 0.0
        offset[1:] = prefix[:-1]
        previous = prefix + np.minimum.accumulate(m - offset)
    if config.quantize:
        return np.rint(previous)
    return previous


def previous_dtype(config: SDTWConfig):
    """Accumulator dtype for the configured kernel."""
    return np.int64 if config.quantize else np.float64


def _infinity_for(query: np.ndarray, config: SDTWConfig):
    if config.quantize:
        # Large enough to never be selected, small enough to avoid overflow
        # after a full query of additions.
        return np.int64(2**40)
    return np.inf


def sdtw_cost_matrix(
    query: np.ndarray,
    reference: np.ndarray,
    config: Optional[SDTWConfig] = None,
    return_path: bool = False,
) -> Tuple[np.ndarray, Optional[List[Tuple[int, int]]]]:
    """Direct (loop-based) sDTW returning the full DP matrix.

    Intended for small inputs: tests use it to validate the vectorized
    kernels, and examples use it to visualize alignment paths. When
    ``return_path`` is True the optimal subsequence alignment path is traced
    back from the best cell of the last row.
    """
    cfg = config if config is not None else SDTWConfig()
    query_values, reference_values = _as_kernel_arrays(query, reference, cfg)
    n, m = query_values.size, reference_values.size
    matrix = np.zeros((n, m), dtype=np.float64)
    run = np.ones((n, m), dtype=np.int64)
    matrix[0, :] = _local_distance(query_values[0], reference_values, cfg)

    use_bonus = cfg.uses_bonus
    for i in range(1, n):
        for j in range(m):
            local = float(_local_distance(query_values[i], reference_values[j : j + 1], cfg)[0])
            # Candidate order matters only for ties; vertical is listed first so
            # tie-breaking matches the vectorized kernels (which prefer the
            # vertical move when the bonus-adjusted diagonal is not strictly
            # smaller).
            candidates = [(matrix[i - 1, j], "vertical")]
            if j > 0:
                diagonal = matrix[i - 1, j - 1]
                if use_bonus:
                    diagonal = diagonal - cfg.match_bonus * min(run[i - 1, j - 1], cfg.match_bonus_cap)
                candidates.append((diagonal, "diagonal"))
            if cfg.allow_reference_deletions and j > 0:
                candidates.append((matrix[i, j - 1], "horizontal"))
            best_value, best_move = min(candidates, key=lambda item: item[0])
            matrix[i, j] = local + best_value
            if use_bonus:
                run[i, j] = 1 if best_move == "diagonal" else run[i - 1, j] + 1

    path: Optional[List[Tuple[int, int]]] = None
    if return_path:
        path = _traceback(matrix, query_values, reference_values, cfg, run)
    return matrix, path


def _traceback(
    matrix: np.ndarray,
    query: np.ndarray,
    reference: np.ndarray,
    config: SDTWConfig,
    run: np.ndarray,
) -> List[Tuple[int, int]]:
    n, m = matrix.shape
    i = n - 1
    j = int(np.argmin(matrix[-1]))
    path = [(i, j)]
    while i > 0:
        local = float(_local_distance(query[i], reference[j : j + 1], config)[0])
        remaining = matrix[i, j] - local
        candidates = []
        if j > 0:
            diagonal = matrix[i - 1, j - 1]
            if config.uses_bonus:
                diagonal = diagonal - config.match_bonus * min(run[i - 1, j - 1], config.match_bonus_cap)
            candidates.append((abs(diagonal - remaining), i - 1, j - 1))
        candidates.append((abs(matrix[i - 1, j] - remaining), i - 1, j))
        if config.allow_reference_deletions and j > 0:
            candidates.append((abs(matrix[i, j - 1] - remaining), i, j - 1))
        _, i, j = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return path
