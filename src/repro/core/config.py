"""Configuration of the subsequence-DTW kernel.

The paper starts from vanilla sDTW (squared distance, floating point, all
three DP moves) and applies four modifications to make the hardware efficient
and accurate (Section 4.7):

* **absolute difference** instead of squared difference (no multipliers),
* **integer normalization** — 8-bit fixed-point signals,
* **no reference deletions** — drop the horizontal DP move, valid because the
  pore produces ~10 samples per base so a single sample never needs to span
  multiple reference positions,
* **match bonus** — reward aligning to a new reference base, scaled by the
  dwell on the previous base (capped), to decouple cost from translocation
  rate.

:class:`SDTWConfig` selects any combination so the Figure 18 ablation can be
run from a single kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SDTWConfig:
    """Knobs of the sDTW kernel.

    Parameters
    ----------
    distance:
        ``"squared"`` (vanilla) or ``"absolute"`` (hardware variant).
    allow_reference_deletions:
        When True the DP includes the horizontal move ``S[i, j-1]`` (vanilla);
        when False it is removed (hardware variant).
    quantize:
        When True the kernel consumes 8-bit integer normalized signals and
        accumulates in integers; when False it runs in floating point.
    match_bonus:
        Bonus subtracted from the running cost each time the alignment path
        advances to a new reference position. The bonus for one transition is
        ``match_bonus * min(dwell_on_previous_base, match_bonus_cap)``.
        0 disables the bonus. Only supported with
        ``allow_reference_deletions=False`` (the hardware recurrence).
    match_bonus_cap:
        Dwell cap in the bonus formula (the paper thresholds at 10 samples).
    """

    distance: str = "absolute"
    allow_reference_deletions: bool = False
    quantize: bool = True
    match_bonus: float = 10.0
    match_bonus_cap: int = 10

    def __post_init__(self) -> None:
        if self.distance not in ("squared", "absolute"):
            raise ValueError(f"distance must be 'squared' or 'absolute', got {self.distance!r}")
        if self.match_bonus < 0:
            raise ValueError(f"match_bonus must be non-negative, got {self.match_bonus}")
        if self.match_bonus_cap < 1:
            raise ValueError(f"match_bonus_cap must be >= 1, got {self.match_bonus_cap}")
        if self.match_bonus > 0 and self.allow_reference_deletions:
            raise ValueError(
                "match_bonus requires allow_reference_deletions=False "
                "(it is defined on the hardware recurrence)"
            )

    @classmethod
    def vanilla(cls) -> "SDTWConfig":
        """The textbook sDTW configuration the paper starts from."""
        return cls(
            distance="squared",
            allow_reference_deletions=True,
            quantize=False,
            match_bonus=0.0,
        )

    @classmethod
    def hardware(cls) -> "SDTWConfig":
        """The full SquiggleFilter configuration (all four modifications)."""
        return cls(
            distance="absolute",
            allow_reference_deletions=False,
            quantize=True,
            match_bonus=10.0,
            match_bonus_cap=10,
        )

    def with_(self, **changes) -> "SDTWConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def uses_bonus(self) -> bool:
        return self.match_bonus > 0
