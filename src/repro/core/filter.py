"""The SquiggleFilter classifier (paper Sections 4.5 and 4.6).

:class:`SquiggleFilter` is the single-stage classifier: normalize a read
prefix, align it against the precomputed reference squiggle with sDTW, and
accept (keep sequencing) or reject (eject via Read Until) by comparing the
alignment cost to a constant threshold.

:class:`MultiStageSquiggleFilter` implements the optional multi-stage scheme
of Section 4.6: an early, permissive stage examines a short prefix and ejects
only clear non-targets, and later stages re-examine longer prefixes with more
aggressive thresholds, so most non-target reads are ejected after very little
sequencing while low-confidence reads get more signal before the decision.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.batch.backends import ExecutionBackend, create_backend
from repro.batch.engine import BatchSDTWEngine
from repro.core.config import SDTWConfig
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.core.panel import TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import SDTWResult, sdtw_cost
from repro.core.thresholds import choose_threshold
from repro.pore_model.kmer_model import KmerModel

if TYPE_CHECKING:  # duck-typed at runtime; avoids a hard runtime dependency
    from repro.runtime.config import RunConfig

# The paper's default operating point: one stage examining 2000 samples.
DEFAULT_PREFIX_SAMPLES = 2000


def _resolve_batch_backend(
    backend: Union[None, str, ExecutionBackend],
    backend_options: Optional[Mapping[str, Any]],
    run_config: Optional["RunConfig"],
    method: str,
) -> Tuple[Union[str, ExecutionBackend], Optional[Mapping[str, Any]]]:
    """Shared shim resolving the execution backend of a batch method.

    The modern spelling is ``run_config=RunConfig(...)``; the pre-``RunConfig``
    ``backend=``/``backend_options=`` kwargs still work but emit a
    :class:`DeprecationWarning` (decisions are identical either way).
    """
    if run_config is not None:
        if backend is not None or backend_options is not None:
            raise ValueError(
                f"{method}: pass either run_config or the legacy "
                "backend/backend_options kwargs, not both"
            )
        return run_config.backend, run_config.resolved_backend_options()
    if backend is None and backend_options is None:
        return "numpy", None
    warnings.warn(
        f"{method}(backend=..., backend_options=...) is deprecated; describe "
        "the run with a repro.runtime.RunConfig and pass run_config= (or "
        "drive it through repro.runtime.open_session)",
        DeprecationWarning,
        stacklevel=3,
    )
    return (backend if backend is not None else "numpy"), backend_options


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of classifying one read prefix.

    ``accept`` is True when the read is kept (classified as target).
    ``samples_used`` is how much signal was examined before the decision,
    which drives the Read Until runtime model. ``stage`` is the index of the
    multi-stage filter stage that made the decision (0 for a single-stage
    filter). With a multi-target :class:`~repro.core.panel.TargetPanel`,
    ``target`` names the best-matching panel member (the per-target argmin;
    ties go to the first member in panel order) and ``target_costs`` carries
    every member's cost in panel order; ``cost``/``end_position`` describe
    the best member, the end position local to that member's own reference.
    """

    accept: bool
    cost: float
    per_sample_cost: float
    samples_used: int
    threshold: float
    end_position: int
    stage: int = 0
    target: Optional[str] = None
    target_costs: Tuple[float, ...] = ()


@dataclass(frozen=True)
class FilterStage:
    """One stage of the multi-stage filter: a prefix length and a threshold."""

    prefix_samples: int
    threshold: float

    def __post_init__(self) -> None:
        if self.prefix_samples <= 0:
            raise ValueError(f"prefix_samples must be positive, got {self.prefix_samples}")


class SquiggleFilter:
    """Single-stage squiggle-level Read Until classifier.

    ``reference`` may be one :class:`ReferenceSquiggle` or a multi-target
    :class:`TargetPanel`; a single reference is coerced to a 1-entry panel,
    so the panel path *is* the single-target path. With N targets, one
    alignment pass scores every member and the decision carries the
    per-target argmin (:attr:`FilterDecision.target`).
    """

    def __init__(
        self,
        reference: Union[ReferenceSquiggle, TargetPanel],
        config: Optional[SDTWConfig] = None,
        normalization: Optional[NormalizationConfig] = None,
        threshold: Optional[float] = None,
        prefix_samples: int = DEFAULT_PREFIX_SAMPLES,
    ) -> None:
        if prefix_samples <= 0:
            raise ValueError(f"prefix_samples must be positive, got {prefix_samples}")
        self.panel = TargetPanel.coerce(reference)
        # Legacy accessor: the (first) reference squiggle.
        self.reference = self.panel.primary
        self.config = config if config is not None else SDTWConfig.hardware()
        self.normalization = (
            normalization if normalization is not None else self.panel.normalization
        )
        self.normalizer = SignalNormalizer(self.normalization)
        self.threshold = threshold
        self.prefix_samples = prefix_samples
        # The panel profile never changes after construction; resolving the
        # concatenated column space and the per-target views once keeps
        # classify_batch and calibration sweeps off the attribute lookup in
        # every alignment() call.
        self._reference_values = self.panel.values(quantized=self.config.quantize)
        self._target_values = [
            self.panel.reference_for(name).values(quantized=self.config.quantize)
            for name in self.panel.names
        ]

    # ------------------------------------------------------------------ costs
    def prepare_query(self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None) -> np.ndarray:
        """Trim to the prefix, normalize, and quantize if the config asks for it."""
        signal = np.asarray(raw_signal, dtype=np.float64)
        if signal.size == 0:
            raise ValueError("cannot classify an empty signal")
        limit = prefix_samples if prefix_samples is not None else self.prefix_samples
        prefix = signal[:limit]
        normalized = self.normalizer.normalize(prefix)
        if self.config.quantize:
            return self.normalizer.quantize(normalized)
        return normalized

    def target_alignments(
        self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None
    ) -> Dict[str, SDTWResult]:
        """Align one read prefix against every panel member independently.

        This is the scalar reference semantics of panel mode: each member is
        scored exactly as a standalone single-reference filter would score it
        (the batched engine reproduces these values bit for bit through the
        concatenated column space).
        """
        query = self.prepare_query(raw_signal, prefix_samples)
        return {
            name: sdtw_cost(query, values, self.config)
            for name, values in zip(self.panel.names, self._target_values)
        }

    def alignment(self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None) -> SDTWResult:
        """Align a read prefix; with a panel, the best-matching member's result."""
        if self.panel.n_targets == 1:
            query = self.prepare_query(raw_signal, prefix_samples)
            return sdtw_cost(query, self._reference_values, self.config)
        alignments = self.target_alignments(raw_signal, prefix_samples)
        # min() keeps the first minimal entry; dict order is panel order, so
        # ties break like the engine's per-target argmin.
        return alignments[min(alignments, key=lambda name: alignments[name].cost)]

    def cost(self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None) -> float:
        """Alignment cost only (convenience for sweeps and distributions)."""
        return self.alignment(raw_signal, prefix_samples).cost

    def per_sample_cost(self, raw_signal: np.ndarray, prefix_samples: Optional[int] = None) -> float:
        """Alignment cost divided by the number of samples examined."""
        return self.alignment(raw_signal, prefix_samples).per_sample_cost

    # --------------------------------------------------------------- decisions
    def classify(
        self,
        raw_signal: np.ndarray,
        threshold: Optional[float] = None,
        prefix_samples: Optional[int] = None,
    ) -> FilterDecision:
        """Accept or reject one read prefix.

        A threshold must either be passed here, set on the filter, or
        calibrated beforehand with :meth:`calibrate`.
        """
        effective_threshold = threshold if threshold is not None else self.threshold
        if effective_threshold is None:
            raise ValueError(
                "no threshold configured; call calibrate() or pass threshold explicitly"
            )
        used = prefix_samples if prefix_samples is not None else self.prefix_samples
        alignments = self.target_alignments(raw_signal, used)
        best = min(alignments, key=lambda name: alignments[name].cost)
        result = alignments[best]
        samples_used = min(int(np.asarray(raw_signal).size), used)
        return FilterDecision(
            accept=result.cost <= effective_threshold,
            cost=result.cost,
            per_sample_cost=result.per_sample_cost,
            samples_used=samples_used,
            threshold=float(effective_threshold),
            end_position=result.end_position,
            target=best,
            target_costs=tuple(alignments[name].cost for name in self.panel.names),
        )

    def _batch_states(
        self,
        raw_signals: Sequence[np.ndarray],
        prefix_samples: Optional[int],
        backend: Union[str, ExecutionBackend] = "numpy",
        backend_options: Optional[Mapping[str, Any]] = None,
    ):
        """Align many prepared prefixes with one batched wavefront.

        Returns ``(queries, snapshots)`` where snapshot ``i`` carries the same
        cost/end-position :meth:`alignment` computes for signal ``i``. Only
        the resumable (no-reference-deletion) recurrences batch; callers fall
        back to the per-read loop for the vanilla recurrence. ``backend``
        picks the execution backend the one-shot engine advances on: a name
        spins the backend up and tears it down inside this call (a whole
        worker pool for ``"sharded"``), a prebuilt
        :class:`~repro.batch.backends.ExecutionBackend` instance is borrowed
        and survives the call — pass an instance when classifying repeatedly.
        """
        queries = [self.prepare_query(signal, prefix_samples) for signal in raw_signals]
        with BatchSDTWEngine(
            self.panel,
            self.config,
            backend=backend,
            backend_options=backend_options,
        ) as engine:
            snapshots = engine.step(list(enumerate(queries)))
        return queries, [snapshots[index] for index in range(len(queries))]

    def cost_batch(
        self,
        raw_signals: Sequence[np.ndarray],
        prefix_samples: Optional[int] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        run_config: Optional["RunConfig"] = None,
    ) -> List[float]:
        """Alignment costs for many reads via one batched wavefront.

        Identical values to calling :meth:`cost` per read — whatever
        execution backend runs the wavefront; the calibration and sweep
        helpers use this so experiments stop looping the kernel in Python.
        ``run_config`` (a :class:`repro.runtime.RunConfig`) names the
        backend; the legacy ``backend=`` kwarg still works behind a
        :class:`DeprecationWarning`.
        """
        backend, backend_options = _resolve_batch_backend(
            backend, backend_options, run_config, "SquiggleFilter.cost_batch"
        )
        return self._cost_batch(raw_signals, prefix_samples, backend, backend_options)

    def _cost_batch(
        self,
        raw_signals: Sequence[np.ndarray],
        prefix_samples: Optional[int] = None,
        backend: Union[str, ExecutionBackend] = "numpy",
        backend_options: Optional[Mapping[str, Any]] = None,
    ) -> List[float]:
        """:meth:`cost_batch` minus the shim (internal call sites)."""
        if not raw_signals:
            return []
        if self.config.allow_reference_deletions:
            # The vanilla recurrence is not resumable, hence not batchable.
            return [self.cost(signal, prefix_samples) for signal in raw_signals]
        _, snapshots = self._batch_states(
            raw_signals, prefix_samples, backend, backend_options
        )
        return [float(snapshot.cost) for snapshot in snapshots]

    def classify_batch(
        self,
        raw_signals: Sequence[np.ndarray],
        threshold: Optional[float] = None,
        prefix_samples: Optional[int] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        run_config: Optional["RunConfig"] = None,
    ) -> List[FilterDecision]:
        """Classify a batch of reads with one batched sDTW wavefront.

        Decisions are identical to per-read :meth:`classify` calls; the work
        runs through :class:`~repro.batch.BatchSDTWEngine` (one set of matrix
        ops per wavefront step across all reads) instead of a Python loop.
        ``run_config`` (a :class:`repro.runtime.RunConfig`) selects the
        execution backend without changing any decision; the legacy
        ``backend=`` kwarg still works behind a :class:`DeprecationWarning`.
        """
        backend, backend_options = _resolve_batch_backend(
            backend, backend_options, run_config, "SquiggleFilter.classify_batch"
        )
        return self._classify_batch(
            raw_signals, threshold, prefix_samples, backend, backend_options
        )

    def _classify_batch(
        self,
        raw_signals: Sequence[np.ndarray],
        threshold: Optional[float] = None,
        prefix_samples: Optional[int] = None,
        backend: Union[str, ExecutionBackend] = "numpy",
        backend_options: Optional[Mapping[str, Any]] = None,
    ) -> List[FilterDecision]:
        """:meth:`classify_batch` minus the shim (internal call sites)."""
        effective_threshold = threshold if threshold is not None else self.threshold
        if effective_threshold is None:
            raise ValueError(
                "no threshold configured; call calibrate() or pass threshold explicitly"
            )
        if not raw_signals:
            return []
        if self.config.allow_reference_deletions:
            return [self.classify(signal, threshold, prefix_samples) for signal in raw_signals]
        used = prefix_samples if prefix_samples is not None else self.prefix_samples
        queries, snapshots = self._batch_states(
            raw_signals, prefix_samples, backend, backend_options
        )
        decisions: List[FilterDecision] = []
        for signal, query, snapshot in zip(raw_signals, queries, snapshots):
            samples_used = min(int(np.asarray(signal).size), used)
            decisions.append(
                FilterDecision(
                    accept=snapshot.cost <= effective_threshold,
                    cost=float(snapshot.cost),
                    per_sample_cost=float(snapshot.cost) / max(int(query.size), 1),
                    samples_used=samples_used,
                    threshold=float(effective_threshold),
                    end_position=int(snapshot.end_position),
                    target=snapshot.target,
                    target_costs=snapshot.target_costs,
                )
            )
        return decisions

    # -------------------------------------------------------------- calibration
    def calibrate(
        self,
        target_signals: Sequence[np.ndarray],
        nontarget_signals: Sequence[np.ndarray],
        objective: str = "f1",
        target_recall: float = 0.95,
        prefix_samples: Optional[int] = None,
    ) -> float:
        """Choose and store a threshold from labelled calibration reads."""
        self.threshold = choose_threshold(
            self._cost_batch(target_signals, prefix_samples),
            self._cost_batch(nontarget_signals, prefix_samples),
            objective=objective,
            target_recall=target_recall,
        )
        return self.threshold


class MultiStageSquiggleFilter:
    """Multi-stage Read Until filter (paper Section 4.6)."""

    def __init__(
        self,
        reference: Union[ReferenceSquiggle, TargetPanel],
        stages: Sequence[FilterStage],
        config: Optional[SDTWConfig] = None,
        normalization: Optional[NormalizationConfig] = None,
    ) -> None:
        if not stages:
            raise ValueError("at least one stage is required")
        ordered = sorted(stages, key=lambda stage: stage.prefix_samples)
        if [stage.prefix_samples for stage in ordered] != [stage.prefix_samples for stage in stages]:
            raise ValueError("stages must be ordered by increasing prefix_samples")
        if len({stage.prefix_samples for stage in stages}) != len(stages):
            raise ValueError("stage prefix lengths must be distinct")
        self.stages = list(stages)
        self._filter = SquiggleFilter(
            reference,
            config=config,
            normalization=normalization,
            prefix_samples=self.stages[-1].prefix_samples,
        )

    @property
    def reference(self) -> ReferenceSquiggle:
        return self._filter.reference

    @property
    def panel(self) -> TargetPanel:
        return self._filter.panel

    @property
    def config(self) -> SDTWConfig:
        return self._filter.config

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def prefix_lengths(self) -> List[int]:
        """The stage decision points, in samples, in firing order."""
        return [stage.prefix_samples for stage in self.stages]

    def classify_stage(self, raw_signal: np.ndarray, index: int) -> FilterDecision:
        """Run exactly one stage over the signal prefix it examines.

        This is the unit of work the streaming Read Until adapter schedules:
        stage ``index`` fires as soon as ``stages[index].prefix_samples`` of
        signal have arrived, without waiting for the later stages' prefixes.
        """
        stage = self.stages[index]
        decision = self._filter.classify(
            raw_signal, threshold=stage.threshold, prefix_samples=stage.prefix_samples
        )
        return replace(decision, stage=index)

    def classify(self, raw_signal: np.ndarray) -> FilterDecision:
        """Run the read through stages until one rejects it or all accept.

        A read rejected at stage *s* only consumed that stage's prefix; a read
        accepted by every stage consumed the final stage's prefix, exactly the
        accounting the Read Until runtime model needs.
        """
        signal = np.asarray(raw_signal, dtype=np.float64)
        last_decision: Optional[FilterDecision] = None
        for index in range(len(self.stages)):
            decision = self.classify_stage(signal, index)
            if not decision.accept:
                return decision
            last_decision = decision
        assert last_decision is not None
        return last_decision

    def classify_batch(
        self,
        raw_signals: Sequence[np.ndarray],
        backend: Union[None, str, ExecutionBackend] = None,
        backend_options: Optional[Mapping[str, Any]] = None,
        run_config: Optional["RunConfig"] = None,
    ) -> List[FilterDecision]:
        """Stage-by-stage batched classification.

        Each stage advances every still-undecided read with one batched
        wavefront (:meth:`SquiggleFilter.classify_batch`), so a calibration
        sweep over N reads costs ``n_stages`` kernel launches instead of up
        to ``N * n_stages``. Decisions are identical to per-read
        :meth:`classify` calls, on whichever execution backend —
        ``run_config`` names it; the legacy ``backend=`` kwarg still works
        behind a :class:`DeprecationWarning`. A backend named by string is
        instantiated **once** and reused across every stage (one worker-pool
        spawn per call for ``"sharded"``, not one per stage), then released.
        """
        backend, backend_options = _resolve_batch_backend(
            backend, backend_options, run_config, "MultiStageSquiggleFilter.classify_batch"
        )
        signals = [np.asarray(signal, dtype=np.float64) for signal in raw_signals]
        owned: Optional[ExecutionBackend] = None
        if isinstance(backend, str) and backend != "numpy" and signals:
            options = dict(backend_options or {})
            options.setdefault("block_starts", self._filter.panel.offsets)
            owned = create_backend(
                backend,
                self._filter._reference_values,
                self.config,
                max(len(signals), 1),
                **options,
            )
            backend, backend_options = owned, None
        try:
            decisions: List[Optional[FilterDecision]] = [None] * len(signals)
            pending = list(range(len(signals)))
            for index, stage in enumerate(self.stages):
                if not pending:
                    break
                staged = self._filter._classify_batch(
                    [signals[i] for i in pending],
                    threshold=stage.threshold,
                    prefix_samples=stage.prefix_samples,
                    backend=backend,
                    backend_options=backend_options,
                )
                is_last = index == len(self.stages) - 1
                survivors: List[int] = []
                for i, decision in zip(pending, staged):
                    decision = replace(decision, stage=index)
                    if not decision.accept or is_last:
                        decisions[i] = decision
                    else:
                        survivors.append(i)
                pending = survivors
        finally:
            if owned is not None:
                owned.close()
        assert all(decision is not None for decision in decisions)
        return decisions  # type: ignore[return-value]

    @classmethod
    def calibrated(
        cls,
        reference: ReferenceSquiggle,
        target_signals: Sequence[np.ndarray],
        nontarget_signals: Sequence[np.ndarray],
        prefix_lengths: Sequence[int] = (1000, 2000, 4000),
        early_stage_recall: float = 0.995,
        config: Optional[SDTWConfig] = None,
        normalization: Optional[NormalizationConfig] = None,
    ) -> "MultiStageSquiggleFilter":
        """Build a multi-stage filter with thresholds calibrated per stage.

        Early stages use a permissive recall-targeting threshold so that
        almost no target read is lost; the final stage uses the F1-optimal
        threshold.
        """
        prefix_lengths = sorted(prefix_lengths)
        helper = SquiggleFilter(reference, config=config, normalization=normalization)
        stages: List[FilterStage] = []
        for index, prefix in enumerate(prefix_lengths):
            target_costs = helper._cost_batch(target_signals, prefix)
            nontarget_costs = helper._cost_batch(nontarget_signals, prefix)
            is_last = index == len(prefix_lengths) - 1
            threshold = choose_threshold(
                target_costs,
                nontarget_costs,
                objective="f1" if is_last else "recall",
                target_recall=early_stage_recall,
            )
            stages.append(FilterStage(prefix_samples=prefix, threshold=threshold))
        return cls(reference, stages, config=config, normalization=normalization)


def build_default_filter(
    genome: Union[str, Mapping[str, str]],
    kmer_model: Optional[KmerModel] = None,
    config: Optional[SDTWConfig] = None,
    prefix_samples: int = DEFAULT_PREFIX_SAMPLES,
    include_reverse_complement: bool = True,
) -> SquiggleFilter:
    """Convenience constructor: build reference squiggle(s) and wrap them in a filter.

    ``genome`` is either one genome string (a single-target filter) or a
    mapping of target names to genomes — a whole :class:`TargetPanel`
    classified in one pass.
    """
    normalization = NormalizationConfig()
    if isinstance(genome, Mapping):
        reference: Union[ReferenceSquiggle, TargetPanel] = TargetPanel.from_genomes(
            genome,
            kmer_model=kmer_model,
            include_reverse_complement=include_reverse_complement,
            normalization=normalization,
        )
    else:
        reference = ReferenceSquiggle.from_genome(
            genome,
            kmer_model=kmer_model,
            include_reverse_complement=include_reverse_complement,
            normalization=normalization,
        )
    return SquiggleFilter(
        reference,
        config=config,
        normalization=normalization,
        prefix_samples=prefix_samples,
    )
