"""The persistent tuning cache: probe once per (host, shape), reuse forever.

µ-cuDNN's micro-batch optimizer caches its per-layer benchmark verdicts so a
second run of the same network pays nothing; this module is the same idea
for the Read Until runtime. A tuning decision is valid exactly as long as
the *host* (core count, interpreter, BLAS) and the *workload shape*
(reference columns, channel count, chunk length, panel blocks, kernel data
path) stay the same, so the cache key is a fingerprint of both — with the
size axes bucketed to powers of two, because a 4790-column reference and a
4801-column one tune identically.

The cache is one JSON file (default ``~/.cache/repro/tune.json``,
overridable via ``$REPRO_TUNE_CACHE`` or a ``cache_path`` tuner option) and
is deliberately paranoid about its own state: a missing, corrupted,
truncated or schema-stale file loads as *empty* — the tuner falls back to
probing, never raises — and writes are atomic (tempfile + rename) so a
crashed process cannot leave a half-written cache behind. ``ignore_cache``
callers skip the lookup but still record their verdict for the next run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "TunedDecision",
    "TuningCache",
    "cache_key",
    "default_cache_path",
    "host_fingerprint",
    "size_bucket",
]

# Bump when the cached decision payload or key derivation changes shape;
# entries from any other version load as empty (stale schemas never crash).
SCHEMA_VERSION = 1


def default_cache_path() -> Path:
    """Where the tuning cache lives unless a caller says otherwise.

    ``$REPRO_TUNE_CACHE`` wins (tests and hermetic deployments point it at a
    scratch file), then ``$XDG_CACHE_HOME/repro/tune.json``, then
    ``~/.cache/repro/tune.json``.
    """
    override = os.environ.get("REPRO_TUNE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "tune.json"


def _blas_signature() -> str:
    """A best-effort name for the BLAS numpy was built against.

    Part of the host fingerprint because backend throughput ordering can
    flip with the BLAS (threaded MKL vs reference). Every numpy version
    spells its build config differently, so any failure degrades to
    ``"unknown"`` rather than poisoning the fingerprint.
    """
    try:
        config = np.__config__.show(mode="dicts")  # numpy >= 1.25
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        return str(name) if name else "unknown"
    except Exception:
        return "unknown"


def host_fingerprint() -> Dict[str, Any]:
    """The host-side half of the cache key, as a stable mapping.

    Everything here is cheap to read and deterministic across processes on
    one machine: logical core count (sizes the worker-pool candidates),
    platform triple, interpreter version (major.minor — patch releases do
    not move kernels), numpy version and BLAS name.
    """
    return {
        "cpu_count": int(os.cpu_count() or 1),
        "platform": f"{platform.system()}-{platform.machine()}",
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "numpy": np.__version__,
        "blas": _blas_signature(),
    }


def size_bucket(value: int) -> int:
    """The power-of-two bucket a size axis falls in (``0`` stays ``0``).

    Tuning decisions transfer between nearby sizes; bucketing keeps the
    cache small and makes the key stable under estimate-vs-exact column
    counts (a genome's estimated squiggle length and the built reference's
    real one land in the same bucket).
    """
    value = int(value)
    if value <= 0:
        return 0
    return 1 << (value - 1).bit_length()


def cache_key(shape: Any, fingerprint: Optional[Mapping[str, Any]] = None) -> str:
    """One stable string key for a (host, workload shape) pair.

    ``shape`` is a :class:`repro.tune.probe.WorkloadShape` (duck-typed: the
    key reads ``reference_columns`` / ``n_blocks`` / ``n_channels`` /
    ``chunk_samples`` / ``dtype_path``). Stable across processes by
    construction — every component is derived, none is randomized.
    """
    host = dict(fingerprint) if fingerprint is not None else host_fingerprint()
    parts = [
        f"v{SCHEMA_VERSION}",
        f"cpu={host['cpu_count']}",
        f"os={host['platform']}",
        f"py={host['python']}",
        f"np={host['numpy']}",
        f"blas={host['blas']}",
        f"cols={size_bucket(shape.reference_columns)}",
        f"blocks={size_bucket(shape.n_blocks)}",
        f"ch={size_bucket(shape.n_channels)}",
        f"chunk={size_bucket(shape.chunk_samples)}",
        f"dtype={shape.dtype_path}",
    ]
    return "|".join(parts)


@dataclass(frozen=True)
class TunedDecision:
    """The point the tuner picked, plus how it was reached.

    ``cache_hit`` distinguishes a decision replayed from the cache (file or
    the serving layer's per-template memo) from one freshly probed;
    ``cell_rate`` is the winning probe's nominal DP cells per second (0.0
    for a cache hit replay, which re-measures nothing).
    """

    backend: str
    workers: Optional[int] = None
    tile_columns: Optional[int] = None
    prune: bool = False
    lb_cascade: bool = False
    cell_rate: float = 0.0
    probed_s: float = 0.0
    n_probes: int = 0
    cache_hit: bool = False
    key: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], **overrides: Any) -> "TunedDecision":
        known = {field.name for field in dataclasses.fields(cls)}
        kept = {key: value for key, value in data.items() if key in known}
        kept.update(overrides)
        return cls(**kept)

    def apply(self, config: Any) -> Any:
        """Pin this decision into a :class:`~repro.runtime.RunConfig`.

        Returns a re-validated copy with the concrete backend and sizing
        fields; a user's explicit ``prune``/``lb_cascade`` are never turned
        *off* (the tuner only adds the layers, both of which preserve
        decisions bit for bit).
        """
        return config.with_(
            backend=self.backend,
            workers=self.workers,
            tile_columns=self.tile_columns,
            prune=bool(self.prune or config.prune),
            lb_cascade=bool(self.lb_cascade or config.lb_cascade),
        )


class TuningCache:
    """Corruption-tolerant JSON store of :class:`TunedDecision` payloads."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.load()

    def load(self) -> None:
        """(Re)read the cache file; anything unreadable loads as empty."""
        self._entries = {}
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return  # missing, unreadable or corrupted: probe instead
        if not isinstance(raw, dict) or raw.get("schema") != SCHEMA_VERSION:
            return  # stale or foreign schema: probe instead
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                key: dict(value)
                for key, value in entries.items()
                if isinstance(key, str) and isinstance(value, dict)
            }

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(key)
        return dict(entry) if entry is not None else None

    def put(self, key: str, decision: Mapping[str, Any]) -> None:
        self._entries[key] = dict(decision)

    def save(self) -> bool:
        """Atomically persist the entries; an unwritable path is non-fatal.

        Returns whether the write landed — tuning must keep working on
        read-only filesystems, it just re-probes next run.
        """
        payload = json.dumps(
            {"schema": SCHEMA_VERSION, "entries": self._entries},
            indent=2,
            sort_keys=True,
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload + "\n")
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def clear(self) -> None:
        """Drop every entry and delete the file (the CLI's escape hatch)."""
        self._entries = {}
        try:
            self.path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
