"""Calibration probes: replay a shaped synthetic workload through one candidate.

The tuner never benchmarks the user's real signal — at tuning time none has
arrived yet. Instead it derives the *workload shape* the session is about to
run (reference columns, panel blocks, channel count, chunk length, kernel
data path) from the :class:`~repro.runtime.RunConfig`, synthesizes a small
deterministic workload of that shape (capped so the whole probe sweep stays
inside ``tune_budget_s``), and replays it through each candidate
``(backend, workers, tile_columns, prune, lb_cascade)`` point via a
throwaway in-process :class:`~repro.batch.engine.BatchSDTWEngine` — the same
"spend a bounded slice of compute up front to pick the operating point"
idiom as :meth:`repro.runtime.ReadUntilSession.calibrate`.

The probe workload mirrors the benchmark suite's mixed construction: a
minority of channels stream reads sampled from the synthetic reference plus
small noise (on-target), the rest stream random signal (off-target), and an
unpruned pre-pass places a kill threshold in the gap between the two cost
distributions — so the ``prune``/``lb_cascade`` candidates are measured in
the regime where they can actually pay. Probe timing comes from the obs
tracer's phase totals (the same accounting every benchmark entry reports),
and the score is the *nominal* cell rate — full-problem DP cells per second,
the end-to-end figure under which pruned cells retire for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SDTWConfig

__all__ = [
    "ProbeResult",
    "ProbeWorkload",
    "WorkloadShape",
    "run_probe",
    "synthesize_workload",
]

# Probe-side caps: the synthetic workload matches the requested shape up to
# these bounds, which keep a full candidate sweep in the hundreds of
# milliseconds on one core. Relative backend ordering is what the probe
# measures, and it is stable under proportional shrinking of the axes.
PROBE_MAX_CHANNELS = 32
PROBE_MAX_COLUMNS = 16384
PROBE_MAX_CHUNK = 200
PROBE_MAX_BLOCKS = 4
PROBE_MIN_COLUMNS = 256
PROBE_ROUNDS = 2
PROBE_SEED = 20211025
_KMER_OVERHANG = 5  # a genome of L bases yields L-5 expected-signal positions (6-mers)


@dataclass(frozen=True)
class WorkloadShape:
    """The tuning-relevant axes of a classification run.

    Derived once per resolution from the config (and the resolved panel when
    the caller already built one); both the cache key and the synthetic
    probe workload are functions of this shape alone.
    """

    reference_columns: int
    n_blocks: int = 1
    n_channels: int = 1
    chunk_samples: int = 400
    hardware: SDTWConfig = field(default_factory=SDTWConfig.hardware)

    @property
    def dtype_path(self) -> str:
        """Which kernel data path this shape runs: ``int32`` or ``float64``.

        Mirrors the backends' resident-state dtype predicate (quantized,
        absolute distance, whole-number bonus — the int32 fast path); the
        two paths have different arithmetic throughput and footprint, so
        tuning decisions do not transfer between them.
        """
        hw = self.hardware
        if hw.quantize and hw.distance == "absolute" and float(hw.match_bonus).is_integer():
            return "int32"
        return "float64"

    @classmethod
    def from_config(cls, config: Any, panel: Optional[Any] = None) -> "WorkloadShape":
        """The shape a :class:`~repro.runtime.RunConfig` is about to run.

        When the caller already resolved the panel (session spawn does), the
        column/block counts are exact. Otherwise they are *estimated* from
        the genome lengths — ``(L - 5)`` squiggle positions per strand —
        without building any reference: the cache key buckets sizes to
        powers of two, so the estimate and the built reference land on the
        same key, and estimating keeps ``repro tune`` / ``config-dump
        --resolve`` cheap.
        """
        chunk = int(config.chunk_samples or config.prefix_samples)
        strands = 2 if config.include_reverse_complement else 1
        if panel is None and config.reference is not None:
            from repro.core.panel import TargetPanel  # deferred: import cycle via filter

            panel = TargetPanel.coerce(config.reference)
        if panel is not None:
            columns = int(panel.n_positions)
            blocks = int(len(panel.names))
        elif config.targets is not None:
            lengths = [len(genome) for genome in config.targets.values()]
            columns = sum(max(1, length - _KMER_OVERHANG) * strands for length in lengths)
            blocks = len(lengths)
        elif config.genome is not None:
            columns = max(1, len(config.genome) - _KMER_OVERHANG) * strands
            blocks = 1
        else:
            # No target named yet (config-dump on a template): assume the
            # paper's qPCR-assay scale so tuning still returns something.
            columns = max(1, 2400 - _KMER_OVERHANG) * strands
            blocks = 1
        return cls(
            reference_columns=columns,
            n_blocks=blocks,
            n_channels=int(config.n_channels),
            chunk_samples=chunk,
            hardware=config.hardware,
        )


@dataclass(frozen=True)
class ProbeWorkload:
    """One synthesized workload, shared by every candidate probe.

    ``panel`` is a real :class:`~repro.core.panel.TargetPanel` built from
    seeded random genomes (so multi-block shapes exercise the true
    concatenated-column/block-offset path), ``rounds`` the per-round
    per-channel query chunks, and ``threshold``/``lifetime_samples`` the
    kill bound the pruned candidates run under — placed by an unpruned
    pre-pass, exactly how the streaming classifier derives its bounds.
    """

    panel: Any
    rounds: Tuple[Tuple[np.ndarray, ...], ...]
    threshold: float
    lifetime_samples: int
    dp_cells: int
    n_channels: int
    hardware: SDTWConfig

    @property
    def reference_columns(self) -> int:
        return int(self.panel.n_positions)


def _probe_axes(shape: WorkloadShape) -> Tuple[int, int, int, int]:
    """(columns, blocks, channels, chunk) after the probe-side caps."""
    columns = min(max(int(shape.reference_columns), PROBE_MIN_COLUMNS), PROBE_MAX_COLUMNS)
    blocks = min(max(int(shape.n_blocks), 1), PROBE_MAX_BLOCKS)
    channels = min(max(int(shape.n_channels), 1), PROBE_MAX_CHANNELS)
    chunk = min(max(int(shape.chunk_samples), 16), PROBE_MAX_CHUNK)
    return columns, blocks, channels, chunk


def _probe_panel(columns: int, blocks: int, seed: int) -> Any:
    """A panel of ``blocks`` seeded random genomes totalling ~``columns``."""
    from repro.core.panel import TargetPanel  # deferred: import cycle via filter
    from repro.genomes.sequences import random_genome

    per_block = max(1, columns // blocks)
    # Both strands are always included: probe squiggles only need the right
    # total column count, and 2R columns per L-base genome is the default
    # deployment geometry (paper Section 4.1).
    length = max(_KMER_OVERHANG + 1, per_block // 2 + _KMER_OVERHANG)
    return TargetPanel.from_genomes(
        {
            f"probe{index}": random_genome(length, seed=seed + index)
            for index in range(blocks)
        }
    )


def _probe_rounds(
    rng: np.random.Generator,
    reference: np.ndarray,
    n_channels: int,
    n_rounds: int,
    chunk_samples: int,
    quantize: bool,
) -> Tuple[List[List[np.ndarray]], np.ndarray]:
    """Mixed on/off-target chunk rounds (the benchmark suite's construction).

    The first quarter of the channels (at least one) stream reads sampled
    from the reference plus small noise, the rest stream random signal; the
    cost gap between the two populations is what the pruned candidates'
    kill bound sits in.
    """
    total = n_rounds * chunk_samples
    on_target = np.zeros(n_channels, dtype=bool)
    on_target[: max(1, n_channels // 4)] = True
    prefixes: List[np.ndarray] = []
    for channel in range(n_channels):
        if on_target[channel]:
            start = int(rng.integers(0, max(1, reference.size - total)))
            base = np.tile(reference, total // reference.size + 2)[start : start + total]
            if quantize:
                noise = rng.integers(-2, 3, size=total)
                prefix = np.clip(base + noise, -127, 127).astype(np.int64)
            else:
                scale = 0.02 * (float(reference.max() - reference.min()) or 1.0)
                prefix = (base + rng.normal(0.0, scale, size=total)).astype(np.float64)
        elif quantize:
            prefix = rng.integers(-127, 128, size=total, dtype=np.int64)
        else:
            prefix = rng.uniform(
                float(reference.min()), float(reference.max()), size=total
            ).astype(np.float64)
        prefixes.append(prefix)
    rounds = [
        [prefix[index * chunk_samples : (index + 1) * chunk_samples] for prefix in prefixes]
        for index in range(n_rounds)
    ]
    return rounds, on_target


def synthesize_workload(
    shape: WorkloadShape,
    n_rounds: int = PROBE_ROUNDS,
    seed: int = PROBE_SEED,
) -> ProbeWorkload:
    """Build the deterministic probe workload for ``shape``.

    Runs one unpruned numpy pre-pass over the synthesized chunks to place
    the pruning threshold between the on- and off-target cost populations
    (midpoint of the gap; falls back to the cost median if a degenerate
    shape makes the populations overlap) and to size the per-lane sample
    lifetime — the two inputs the pruning layer needs.
    """
    from repro.batch.engine import BatchSDTWEngine  # deferred: keeps tune importable early

    columns, blocks, channels, chunk = _probe_axes(shape)
    panel = _probe_panel(columns, blocks, seed)
    hardware = shape.hardware
    reference_values = panel.values(quantized=hardware.quantize)
    rng = np.random.default_rng(seed)
    rounds, on_target = _probe_rounds(
        rng, reference_values, channels, n_rounds, chunk, hardware.quantize
    )

    engine = BatchSDTWEngine(panel, hardware)
    try:
        for round_chunks in rounds:
            snapshots = engine.step(list(enumerate(round_chunks)))
    finally:
        engine.close()
    costs = np.array([snapshots[ch].cost for ch in range(channels)], dtype=np.float64)
    on, off = costs[on_target], costs[~on_target]
    if off.size and on.size and on.max() < off.min():
        threshold = float(on.max() + (off.min() - on.max()) * 0.5)
    else:
        threshold = float(np.median(costs))
    lifetime = n_rounds * chunk
    dp_cells = sum(c.size for chunks in rounds for c in chunks) * int(panel.n_positions)
    return ProbeWorkload(
        panel=panel,
        rounds=tuple(tuple(chunks) for chunks in rounds),
        threshold=threshold,
        lifetime_samples=int(lifetime),
        dp_cells=int(dp_cells),
        n_channels=channels,
        hardware=hardware,
    )


@dataclass(frozen=True)
class ProbeResult:
    """One candidate's measured probe: the point, the rate, or the failure."""

    backend: str
    workers: Optional[int] = None
    tile_columns: Optional[int] = None
    prune: bool = False
    lb_cascade: bool = False
    seconds: float = 0.0
    cell_rate: float = 0.0
    effective_cell_rate: float = 0.0
    cells_advanced: int = 0
    cells_pruned: int = 0
    error: Optional[str] = None

    @property
    def label(self) -> str:
        parts = [self.backend]
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        if self.tile_columns is not None:
            parts.append(f"tile={self.tile_columns}")
        if self.prune:
            parts.append("lb" if self.lb_cascade else "pruned")
        if len(parts) == 1:
            return self.backend
        return f"{self.backend}[{','.join(parts[1:])}]"

    def as_row(self) -> Dict[str, Any]:
        """One probe-table row (the CLI and the example walkthrough print these)."""
        return {
            "candidate": self.label,
            "seconds": round(self.seconds, 6),
            "cells_per_s": int(self.cell_rate),
            "effective_cells_per_s": int(self.effective_cell_rate),
            "error": self.error or "",
        }


def run_probe(
    workload: ProbeWorkload,
    backend: str,
    workers: Optional[int] = None,
    tile_columns: Optional[int] = None,
    prune: bool = False,
    lb_cascade: bool = False,
) -> ProbeResult:
    """Replay the workload through one candidate point and measure it.

    Engine construction (worker-pool spawn for the process backends) stays
    outside the timed region — pools are persistent in deployment, paid
    once per run, not once per round. Timing comes from the obs tracer's
    phase totals (parent-track self times decompose the traced wall clock
    exactly), the same accounting the benchmark reports use. A candidate
    that raises — a backend whose import probe passed but whose runtime
    dependency is broken — returns an error result instead of propagating:
    tuning degrades, it never takes the session down.
    """
    from repro.batch.engine import BatchSDTWEngine  # deferred: keeps tune importable early
    from repro.obs.trace import Tracer

    options: Dict[str, Any] = {}
    if workers is not None:
        options["workers"] = int(workers)
    if tile_columns is not None:
        options["tile_columns"] = int(tile_columns)
    tracer = Tracer(track="tune")
    point = dict(
        backend=backend,
        workers=workers,
        tile_columns=tile_columns,
        prune=prune,
        lb_cascade=lb_cascade,
    )
    try:
        engine = BatchSDTWEngine(
            workload.panel,
            workload.hardware,
            backend=backend,
            backend_options=options or None,
            tracer=tracer,
            prune=prune,
            prune_margin=0.0,
            prune_lifetime_samples=workload.lifetime_samples if prune else None,
            lb_cascade=lb_cascade,
        )
    except Exception as exc:
        return ProbeResult(**point, error=f"{type(exc).__name__}: {exc}")
    try:
        if prune:
            engine.prune_bound = float(workload.threshold)
        start = time.perf_counter()
        for round_chunks in workload.rounds:
            engine.step(list(enumerate(round_chunks)))
        elapsed = time.perf_counter() - start
        tracks = tracer.tracks()
        phase_s = sum(
            stat.self_s for stat in tracer.phase_totals(tracks[0]).values()
        ) if tracks else 0.0
        seconds = max(phase_s or elapsed, 1e-9)
        advanced = int(engine.cells_advanced)
        pruned = int(engine.cells_pruned)
    except Exception as exc:
        return ProbeResult(**point, error=f"{type(exc).__name__}: {exc}")
    finally:
        engine.close()
    return ProbeResult(
        **point,
        seconds=seconds,
        cell_rate=workload.dp_cells / seconds,
        effective_cell_rate=advanced / seconds,
        cells_advanced=advanced,
        cells_pruned=pruned,
    )
