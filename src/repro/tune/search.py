"""Candidate generation and the budgeted probe search.

µ-cuDNN's optimizer enumerates only the convolution algorithms the library
actually installed, benchmarks them on the real layer shape, and stops as
soon as a winner is clear; this module is the same search for the sDTW
runtime. Candidates are ``(backend, workers, tile_columns, prune,
lb_cascade)`` points drawn from:

* **installed backends only** — the registry
  (:func:`repro.batch.available_backends`) filtered by the native and GPU
  import probes, so a candidate list never names an engine this host cannot
  construct;
* **hardware seeds** — ``tile_columns`` candidates from the detected L2
  size (the reason column tiling exists: keep the per-step column working
  set cache-resident) and ``workers`` candidates from ``os.cpu_count()``
  (multi-process backends are only candidates when there is more than one
  core to shard across);
* **the exactness-preserving layers** — ``prune`` and ``prune+lb_cascade``
  variants of the in-process backends; both preserve accept/eject decisions
  bit for bit, so the tuner is free to turn them on whenever the probe says
  they pay.

The search itself is budgeted (``tune_budget_s`` bounds probe wall clock;
the first candidate always runs so resolution cannot come back empty) and
early-stops once the incumbent leads the runner-up by a configurable margin
after a minimum number of probes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Mapping, Optional, Tuple

from repro.tune.cache import TunedDecision, TuningCache, cache_key
from repro.tune.probe import (
    PROBE_ROUNDS,
    PROBE_SEED,
    ProbeResult,
    WorkloadShape,
    run_probe,
    synthesize_workload,
)

__all__ = [
    "TuneOutcome",
    "detect_l2_bytes",
    "generate_candidates",
    "installed_backends",
    "resolve_auto",
    "tune_config",
]

# Search defaults; override per run via RunConfig.tune = {"margin": ..., ...}.
DEFAULT_MARGIN = 1.25  # incumbent must lead runner-up by 25% to stop early
DEFAULT_MIN_PROBES = 3
_L2_FALLBACK_BYTES = 1 << 20  # sysfs unavailable (macOS, containers): assume 1 MiB


def installed_backends() -> List[str]:
    """Registry backends this host can actually construct.

    ``available_backends()`` lists every *registered* name; the native and
    GPU entries additionally need an importable kernel (Numba or the AOT
    Cython extension) or a device array module. Filtering here means a
    candidate never fails for a reason the probe could have known up front.
    """
    from repro.batch.backends import available_backends
    from repro.batch.native import cython_kernel_available, numba_available
    from repro.core.array_module import gpu_array_module

    names: List[str] = []
    for name in available_backends():
        if name == "native" and not (numba_available() or cython_kernel_available()):
            continue
        if name == "gpu" and gpu_array_module() is None:
            continue
        names.append(name)
    return names


def detect_l2_bytes() -> Optional[int]:
    """Per-core L2 size from sysfs; ``None`` where Linux sysfs is absent."""
    base = Path("/sys/devices/system/cpu/cpu0/cache")
    try:
        indexes = sorted(base.glob("index*"))
    except OSError:
        return None
    for index in indexes:
        try:
            if index.joinpath("level").read_text().strip() != "2":
                continue
            size = index.joinpath("size").read_text().strip().upper()
        except OSError:
            continue
        try:
            if size.endswith("K"):
                return int(size[:-1]) * 1024
            if size.endswith("M"):
                return int(size[:-1]) * 1024 * 1024
            return int(size)
        except ValueError:
            continue
    return None


def _tile_seed(shape: WorkloadShape) -> Optional[int]:
    """An L2-resident ``tile_columns`` candidate, or ``None`` when tiling
    cannot help (the whole working set already fits).

    The per-column working set of one wavefront step is a handful of
    row/run lanes per channel; sizing the tile so
    ``channels * bytes_per_cell * tile`` stays inside L2 is the heuristic
    the manual ``tile_columns`` guidance uses, here seeded automatically.
    """
    l2 = detect_l2_bytes() or _L2_FALLBACK_BYTES
    bytes_per_cell = 4 if shape.dtype_path == "int32" else 8
    # ~4 resident arrays touch each column per step (rows, runs, bounds, reference).
    per_column = max(1, shape.n_channels) * bytes_per_cell * 4
    tile = l2 // per_column
    tile = max(1024, min(int(tile), int(shape.reference_columns)))
    if tile >= shape.reference_columns:
        return None
    return tile


def _worker_seeds() -> List[int]:
    """Worker counts worth probing for the multi-process backends."""
    cpu = int(os.cpu_count() or 1)
    if cpu < 2:
        return []
    seeds = {2, min(4, cpu), cpu}
    return sorted(count for count in seeds if 2 <= count <= cpu)


def generate_candidates(shape: WorkloadShape) -> List[ProbeResult]:
    """The ordered candidate list for ``shape`` (as unprobed result points).

    Ordered so the strongest priors come first — the search early-stops and
    the budget truncates the tail, so a good incumbent must surface early:
    in-process brute force (the deployment default), its pruned and gated
    variants (big wins on mixed workloads, measured here on the mixed probe
    workload), the native kernel when installed, then tiling and the
    multi-process backends.
    """
    installed = installed_backends()
    candidates: List[ProbeResult] = []

    def add(backend: str, **point: Any) -> None:
        if backend in installed:
            candidates.append(ProbeResult(backend=backend, **point))

    add("numpy")
    add("numpy", prune=True)
    add("numpy", prune=True, lb_cascade=True)
    add("native")
    add("native", prune=True, lb_cascade=True)
    add("gpu")
    tile = _tile_seed(shape)
    if tile is not None:
        add("numpy", tile_columns=tile)
        add("native", tile_columns=tile)
    for workers in _worker_seeds():
        add("sharded", workers=workers)
        add("colsharded", workers=workers)
    return candidates


@dataclass(frozen=True)
class TuneOutcome:
    """Everything one resolution produced: the decision and how it was made."""

    decision: TunedDecision
    results: Tuple[ProbeResult, ...]
    shape: WorkloadShape
    key: str
    cache_path: str

    def table(self) -> List[Mapping[str, Any]]:
        """Probe-table rows, fastest first (the CLI and example print these)."""
        ordered = sorted(self.results, key=lambda r: r.cell_rate, reverse=True)
        return [result.as_row() for result in ordered]


def _tune_options(config: Any) -> Mapping[str, Any]:
    return dict(getattr(config, "tune", None) or {})


def tune_config(
    config: Any,
    panel: Optional[Any] = None,
    tracer: Optional[Any] = None,
    cache: Optional[TuningCache] = None,
) -> TuneOutcome:
    """Resolve the tuning decision for ``config`` (probe or cache hit).

    Honors ``config.tune`` options: ``cache_path`` (where the JSON cache
    lives), ``ignore_cache`` (skip the lookup, still record the verdict),
    ``margin``/``min_probes`` (early-stop policy), ``rounds``/``seed``
    (probe workload). Probe wall clock is bounded by
    ``config.tune_budget_s``; the first candidate always runs so the
    resolution cannot come back empty. Every probe runs under a
    ``tune.probe`` span on the caller's tracer (sessions pass theirs, so
    resolution shows up in the trace like any other phase).
    """
    from repro.obs.trace import NULL_TRACER

    tracer = tracer if tracer is not None else NULL_TRACER
    options = _tune_options(config)
    shape = WorkloadShape.from_config(config, panel=panel)
    key = cache_key(shape)
    if cache is None:
        cache = TuningCache(options.get("cache_path"))
    if not options.get("ignore_cache", False):
        entry = cache.get(key)
        if entry is not None and entry.get("backend"):
            try:
                decision = TunedDecision.from_dict(entry, cache_hit=True, key=key)
            except TypeError:
                decision = None
            if decision is not None:
                return TuneOutcome(
                    decision=decision,
                    results=(),
                    shape=shape,
                    key=key,
                    cache_path=str(cache.path),
                )

    margin = float(options.get("margin", DEFAULT_MARGIN))
    min_probes = int(options.get("min_probes", DEFAULT_MIN_PROBES))
    budget_s = float(getattr(config, "tune_budget_s", 2.0))
    start = time.perf_counter()
    with tracer.span("tune.workload", key=key):
        workload = synthesize_workload(
            shape,
            n_rounds=int(options.get("rounds", PROBE_ROUNDS)),
            seed=int(options.get("seed", PROBE_SEED)),
        )

    candidates = generate_candidates(shape)
    results: List[ProbeResult] = []
    for candidate in candidates:
        elapsed = time.perf_counter() - start
        if results and elapsed >= budget_s:
            break
        with tracer.span(
            "tune.probe",
            candidate=candidate.label,
            backend=candidate.backend,
        ):
            result = run_probe(
                workload,
                backend=candidate.backend,
                workers=candidate.workers,
                tile_columns=candidate.tile_columns,
                prune=candidate.prune,
                lb_cascade=candidate.lb_cascade,
            )
        results.append(result)
        measured = sorted(
            (r for r in results if r.error is None),
            key=lambda r: r.cell_rate,
            reverse=True,
        )
        if len(results) >= min_probes and len(measured) >= 2:
            if measured[0].cell_rate >= margin * measured[1].cell_rate:
                break

    probed_s = time.perf_counter() - start
    measured = [r for r in results if r.error is None]
    if not measured:
        # Every candidate failed (should be impossible: numpy always runs).
        # Degrade to brute-force numpy rather than taking the session down.
        best = ProbeResult(backend="numpy")
    else:
        best = max(measured, key=lambda r: r.cell_rate)
    decision = TunedDecision(
        backend=best.backend,
        workers=best.workers,
        tile_columns=best.tile_columns,
        prune=best.prune,
        lb_cascade=best.lb_cascade,
        cell_rate=best.cell_rate,
        probed_s=probed_s,
        n_probes=len(results),
        cache_hit=False,
        key=key,
    )
    cache.put(key, decision.as_dict())
    cache.save()
    return TuneOutcome(
        decision=decision,
        results=tuple(results),
        shape=shape,
        key=key,
        cache_path=str(cache.path),
    )


def resolve_auto(
    config: Any,
    panel: Optional[Any] = None,
    tracer: Optional[Any] = None,
    cache: Optional[TuningCache] = None,
) -> Tuple[Any, TunedDecision]:
    """Resolve ``backend="auto"`` to a concrete, validated config.

    The identity transform for already-pinned configs, so call sites can
    route every config through here. Returns ``(resolved_config,
    decision)``; the decision's ``cache_hit`` flag says whether probes ran.
    """
    if getattr(config, "backend", None) != "auto":
        decision = TunedDecision(
            backend=config.backend,
            workers=config.workers,
            tile_columns=config.tile_columns,
            prune=config.prune,
            lb_cascade=config.lb_cascade,
            cache_hit=True,
        )
        return config, decision
    outcome = tune_config(config, panel=panel, tracer=tracer, cache=cache)
    return outcome.decision.apply(config), outcome.decision
