"""repro.tune — the self-tuning runtime.

Backend choice, worker counts, column tiling and the exactness-preserving
prune/lower-bound layers all have workload- and host-dependent payoffs.
This package picks the operating point automatically, µ-cuDNN style:

* :mod:`repro.tune.probe` — deterministic calibration probes that replay a
  synthetic workload of the session's shape through each candidate point;
* :mod:`repro.tune.search` — the candidate generator (installed backends
  only, hardware-seeded sizes) and the budgeted, early-stopping search;
* :mod:`repro.tune.cache` — the persistent JSON tuning cache
  (``~/.cache/repro/tune.json``) keyed by host fingerprint and workload
  shape, so repeat runs skip the probes entirely.

Entry points opt in with ``RunConfig(backend="auto")``; sessions resolve it
lazily at spawn (traced as ``tune.probe`` spans), ``repro tune`` warms the
cache from the CLI, and ``repro.serve`` resolves each template once and
reuses the decision for every tenant session. All candidate points preserve
accept/eject decisions bit for bit, so tuning can never change a
classification — only its speed.
"""

from repro.tune.cache import (
    SCHEMA_VERSION,
    TunedDecision,
    TuningCache,
    cache_key,
    default_cache_path,
    host_fingerprint,
    size_bucket,
)
from repro.tune.probe import (
    ProbeResult,
    ProbeWorkload,
    WorkloadShape,
    run_probe,
    synthesize_workload,
)
from repro.tune.search import (
    TuneOutcome,
    detect_l2_bytes,
    generate_candidates,
    installed_backends,
    resolve_auto,
    tune_config,
)

__all__ = [
    "SCHEMA_VERSION",
    "ProbeResult",
    "ProbeWorkload",
    "TuneOutcome",
    "TunedDecision",
    "TuningCache",
    "WorkloadShape",
    "cache_key",
    "default_cache_path",
    "detect_l2_bytes",
    "generate_candidates",
    "host_fingerprint",
    "installed_backends",
    "resolve_auto",
    "run_probe",
    "size_bucket",
    "synthesize_workload",
    "tune_config",
]
