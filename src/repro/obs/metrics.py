"""Prometheus-style metrics registry shared by sessions, benchmarks and serve.

A deliberately small, dependency-free registry: counters, gauges and
latency summaries with string labels, rendered in the Prometheus text
exposition format by :meth:`MetricsRegistry.render` (what serve's
``GET /metrics`` returns). Latency summaries keep a bounded reservoir of
recent observations per label set and expose nearest-rank percentiles —
enough for the per-round p50/p95/p99 the benchmarks and dashboards read,
without pulling in a client library.

Lived in ``repro.serve.metrics`` until the observability layer landed; it
moved here so local sessions and benchmarks feed the same registry the
server exposes (``repro.serve.metrics`` re-exports it unchanged).

Thread-safe: round submissions update counters from the backend pool's
executor threads while the event loop renders ``/metrics``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["MetricsRegistry"]

# Label sets are stored as sorted (key, value) tuples so the same labels in
# any keyword order address the same series.
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Per the Prometheus text exposition format, label values escape
    # backslash, double-quote and newline (in that order — backslash first
    # so the other escapes aren't double-escaped).
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: _LabelKey, extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Counters, gauges and latency summaries behind one lock.

    ``quantiles`` configures the summary percentiles rendered for every
    series observed with :meth:`observe`; ``reservoir`` bounds how many
    recent observations each series keeps (oldest evicted first), so a
    long-running server's percentiles track current behaviour rather than
    its entire history.
    """

    def __init__(
        self,
        quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99),
        reservoir: int = 4096,
    ) -> None:
        if not quantiles or any(not 0.0 < q <= 1.0 for q in quantiles):
            raise ValueError(f"quantiles must lie in (0, 1], got {quantiles}")
        if reservoir <= 0:
            raise ValueError(f"reservoir must be positive, got {reservoir}")
        self.quantiles = tuple(quantiles)
        self.reservoir = int(reservoir)
        self._lock = threading.Lock()
        self._help: Dict[str, str] = {}
        self._types: Dict[str, str] = {}
        self._counters: Dict[str, Dict[_LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self._summaries: Dict[str, Dict[_LabelKey, Deque[float]]] = {}

    # ------------------------------------------------------------- recording
    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric name (optional)."""
        with self._lock:
            self._help[name] = help_text

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        with self._lock:
            self._types.setdefault(name, "counter")
            series = self._counters.setdefault(name, {})
            key = _label_key(labels)
            series[key] = series.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        with self._lock:
            self._types.setdefault(name, "gauge")
            self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into the ``name`` summary series."""
        with self._lock:
            self._types.setdefault(name, "summary")
            series = self._summaries.setdefault(name, {})
            key = _label_key(labels)
            window = series.get(key)
            if window is None:
                window = series[key] = deque(maxlen=self.reservoir)
            window.append(float(value))

    # --------------------------------------------------------------- reading
    def counter_value(self, name: str, **labels: str) -> float:
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def gauge_value(self, name: str, **labels: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name, {}).get(_label_key(labels))

    def percentiles(self, name: str, **labels: str) -> Dict[float, float]:
        """Nearest-rank percentiles of a summary series (empty if unseen)."""
        with self._lock:
            window = self._summaries.get(name, {}).get(_label_key(labels))
            values = sorted(window) if window else []
        if not values:
            return {}
        return {q: _nearest_rank(values, q) for q in self.quantiles}

    def summary_count(self, name: str, **labels: str) -> int:
        with self._lock:
            window = self._summaries.get(name, {}).get(_label_key(labels))
            return len(window) if window else 0

    # ------------------------------------------------------------- rendering
    def render(self) -> str:
        """The Prometheus text exposition of every recorded series."""
        with self._lock:
            lines = []
            for name in sorted(self._types):
                if name in self._help:
                    lines.append(f"# HELP {name} {self._help[name]}")
                lines.append(f"# TYPE {name} {self._types[name]}")
                for key, value in sorted(self._counters.get(name, {}).items()):
                    lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
                for key, value in sorted(self._gauges.get(name, {}).items()):
                    lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
                for key, window in sorted(self._summaries.get(name, {}).items()):
                    values = sorted(window)
                    for q in self.quantiles:
                        labels = _format_labels(key, [("quantile", _trim_quantile(q))])
                        point = _nearest_rank(values, q) if values else math.nan
                        lines.append(f"{name}{labels} {_format_value(point)}")
                    lines.append(
                        f"{name}_count{_format_labels(key)} {len(window)}"
                    )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {_format_value(sum(window))}"
                    )
        return "\n".join(lines) + "\n"


def _nearest_rank(sorted_values, quantile: float) -> float:
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return float(sorted_values[rank - 1])


def _trim_quantile(quantile: float) -> str:
    text = f"{quantile:g}"
    return text
