"""repro.obs — cross-cutting observability: tracing, export, metrics.

Three pieces, usable independently:

* :mod:`repro.obs.trace` — :class:`Tracer` with nestable spans, instant
  events, a bounded flight recorder and per-phase self-time accounting;
  worker processes ship compact span tuples back for merging into the
  parent timeline (``NULL_TRACER`` is the shared disabled instance the
  hot paths are instrumented against).
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON export,
  structural validation, and the per-phase table behind ``repro trace``.
* :mod:`repro.obs.metrics` — the Prometheus-style
  :class:`MetricsRegistry` shared by local sessions, benchmarks and
  ``repro.serve`` (which re-exports it for compatibility).

Enable end to end with ``RunConfig(trace=True)`` for the in-memory
recorder (``session.trace()``, phase breakdown in ``session.summary()``)
or ``RunConfig(trace_path="out.json")`` to also write a Perfetto-loadable
file on close. The CLI equivalents: ``repro read-until --trace out.json``
and ``repro trace out.json``.
"""

from .export import (
    export_chrome_trace,
    format_phase_table,
    load_trace,
    phase_table,
    records_to_events,
    validate_trace,
    write_chrome_trace,
)
from .metrics import MetricsRegistry
from .trace import (
    NULL_TRACER,
    PhaseStat,
    SpanRecord,
    Tracer,
    WorkerSpan,
    worker_span,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "PhaseStat",
    "SpanRecord",
    "Tracer",
    "WorkerSpan",
    "export_chrome_trace",
    "format_phase_table",
    "load_trace",
    "phase_table",
    "records_to_events",
    "validate_trace",
    "worker_span",
    "write_chrome_trace",
]
