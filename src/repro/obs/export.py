"""Chrome trace-event / Perfetto export for :class:`repro.obs.Tracer`.

The emitted file is the JSON object form of the Chrome trace-event format
(``{"traceEvents": [...]}``) — loadable in Perfetto (https://ui.perfetto.dev)
and ``chrome://tracing``. Spans become complete events (``"ph": "X"``) with
microsecond ``ts``/``dur`` rebased to the earliest record in the trace;
instants become ``"ph": "i"``. Every track gets a thread id plus a
``thread_name`` metadata event so worker timelines show up labelled
(``sharded-worker-0``, …) under one process.

:func:`validate_trace` checks the structural contract CI relies on: required
keys per event, non-negative timings, and — per (track, depth) — spans
sorted by start time must not overlap, which is what "these came from a
LIFO span stack on a monotonic clock" looks like after export.

:func:`phase_table` / :func:`format_phase_table` power the ``repro trace``
subcommand: a per-phase self-time table computed from an exported file, so a
host without a browser still gets the breakdown.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .trace import SpanRecord, Tracer

__all__ = [
    "export_chrome_trace",
    "format_phase_table",
    "load_trace",
    "phase_table",
    "records_to_events",
    "validate_trace",
    "write_chrome_trace",
]

_PROCESS_ID = 1


def records_to_events(
    records: Sequence[SpanRecord], metadata: Optional[Mapping[str, Any]] = None
) -> List[Dict[str, Any]]:
    """Convert flight-recorder records to Chrome trace events.

    Timestamps are rebased so the earliest record starts at ts=0 — raw
    monotonic readings are meaningless across runs, and Perfetto renders
    small numbers more readably.
    """
    if not records:
        return []
    epoch_s = min(record.start_s for record in records)
    tracks: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for record in records:
        tid = tracks.get(record.track)
        if tid is None:
            tid = tracks[record.track] = len(tracks) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PROCESS_ID,
                    "tid": tid,
                    "args": {"name": record.track},
                }
            )
        args: Dict[str, Any] = {"depth": record.depth}
        if record.kind == "span":
            args["self_us"] = round(record.self_s * 1e6, 3)
        if record.args:
            args.update(record.args)
        event: Dict[str, Any] = {
            "name": record.name,
            "ph": "X" if record.kind == "span" else "i",
            "ts": round((record.start_s - epoch_s) * 1e6, 3),
            "pid": _PROCESS_ID,
            "tid": tid,
            "args": args,
        }
        if record.kind == "span":
            event["dur"] = round(record.duration_s * 1e6, 3)
        else:
            event["s"] = "t"
        events.append(event)
    return events


def export_chrome_trace(
    tracer: Tracer, metadata: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Build the full trace document for one tracer's flight recorder."""
    document: Dict[str, Any] = {
        "traceEvents": records_to_events(tracer.records()),
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["metadata"] = dict(metadata)
    return document


def write_chrome_trace(
    tracer: Tracer, path: str, metadata: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Export ``tracer`` to ``path`` as Chrome trace-event JSON."""
    document = export_chrome_trace(tracer, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def load_trace(path: str) -> Dict[str, Any]:
    """Load a trace file, accepting both the object and bare-array forms."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, list):
        document = {"traceEvents": document}
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace-event file (no traceEvents)")
    return document


_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_trace(document: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Validate the Chrome trace-event shape; returns the complete events.

    Raises ``ValueError`` naming the first violation: a missing required
    key, a negative ``ts``/``dur``, or two same-(track, depth) spans that
    overlap in time — spans emitted by one LIFO stack can nest or abut but
    never cross.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    complete: List[Dict[str, Any]] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing required key {key!r}")
        if event["ts"] < 0:
            raise ValueError(f"traceEvents[{index}] has negative ts {event['ts']}")
        if phase == "X":
            if "dur" not in event:
                raise ValueError(f"traceEvents[{index}] complete event missing dur")
            if event["dur"] < 0:
                raise ValueError(
                    f"traceEvents[{index}] has negative dur {event['dur']}"
                )
            complete.append(event)
    lanes: Dict[Tuple[Any, Any], List[Tuple[float, float, str]]] = {}
    for event in complete:
        depth = event.get("args", {}).get("depth", 0)
        lanes.setdefault((event["tid"], depth), []).append(
            (float(event["ts"]), float(event["dur"]), str(event["name"]))
        )
    for (tid, depth), spans in lanes.items():
        spans.sort()
        for (ts_a, dur_a, name_a), (ts_b, _, name_b) in zip(spans, spans[1:]):
            # Exported µs values are rounded to 3 decimals; allow that much slop.
            if ts_a + dur_a > ts_b + 1e-3:
                raise ValueError(
                    f"overlapping spans on tid={tid} depth={depth}: "
                    f"{name_a!r} [{ts_a}, {ts_a + dur_a}) overlaps {name_b!r} at {ts_b}"
                )
    return complete


def phase_table(document: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-phase aggregate rows from a trace document, self-time descending.

    Each row: ``phase``, ``count``, ``total_us``, ``self_us``, ``share`` —
    share being this phase's self time as a fraction of all self time (self
    times partition wall clock per track, so shares sum to 1.0).
    """
    totals: Dict[str, List[float]] = {}
    for event in validate_trace(document):
        args = event.get("args", {})
        self_us = float(args.get("self_us", event["dur"]))
        stat = totals.setdefault(str(event["name"]), [0, 0.0, 0.0])
        stat[0] += 1
        stat[1] += float(event["dur"])
        stat[2] += self_us
    grand_self = sum(stat[2] for stat in totals.values())
    rows = [
        {
            "phase": name,
            "count": int(stat[0]),
            "total_us": stat[1],
            "self_us": stat[2],
            "share": stat[2] / grand_self if grand_self > 0 else 0.0,
        }
        for name, stat in totals.items()
    ]
    rows.sort(key=lambda row: (-row["self_us"], row["phase"]))
    return rows


def format_phase_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render phase_table rows as an aligned terminal table."""
    if not rows:
        return "(empty trace)"
    header = ("phase", "count", "total ms", "self ms", "self %")
    body = [
        (
            str(row["phase"]),
            str(row["count"]),
            f"{row['total_us'] / 1000.0:.3f}",
            f"{row['self_us'] / 1000.0:.3f}",
            f"{row['share'] * 100.0:.1f}",
        )
        for row in rows
    ]
    widths = [
        max(len(header[column]), *(len(line[column]) for line in body))
        for column in range(len(header))
    ]
    lines = [
        "  ".join(
            header[column].ljust(widths[column]) if column == 0
            else header[column].rjust(widths[column])
            for column in range(len(header))
        )
    ]
    for line in body:
        lines.append(
            "  ".join(
                line[column].ljust(widths[column]) if column == 0
                else line[column].rjust(widths[column])
                for column in range(len(header))
            )
        )
    return "\n".join(lines)
