"""Nestable-span tracing with a bounded flight recorder.

The paper's headline analysis is a compute-time breakdown — where do the
microseconds go between signal and decision — and this module gives the
reproduction the same lens on *itself*. A :class:`Tracer` records **spans**
(named wall-clock intervals, arbitrarily nested) and **instant events** on a
monotonic clock, into

* a bounded in-memory **flight recorder** (:meth:`Tracer.records`) the
  session surfaces via ``session.trace()``, and
* accumulating **per-phase totals** (:meth:`Tracer.phase_totals`): for every
  span name, how many times it ran, its total wall time, and its *self* time
  (wall time minus the time spent inside child spans). Self times across one
  track decompose the root spans' wall clock exactly, so a phase table that
  "sums to the round time" is true by construction, not by luck.

Design constraints, in order:

1. **Near-zero overhead when disabled.** Every hook is one ``if``:
   :meth:`Tracer.span` on a disabled tracer returns a shared no-op context
   manager without allocating, and :meth:`Tracer.instant` returns
   immediately. The engine and backends are instrumented unconditionally and
   rely on this.
2. **Bit-identity.** Tracing observes; it never changes what the kernels
   compute. (The test suite asserts traced and untraced runs decide
   identically on every registered backend.)
3. **Cross-process mergeability.** Worker processes of the sharded backends
   stamp their own compact span tuples (:func:`worker_span`, accumulated per
   request) and ship them back over the existing reply pipes;
   :meth:`Tracer.merge_worker_records` folds them into the parent timeline
   under a per-worker ``track`` id. ``time.perf_counter`` is
   ``CLOCK_MONOTONIC``-based on the platforms the worker pools run on
   (workers are forked children of the tracing process), so parent and
   worker timestamps share one timeline.

Tracers are single-writer like the sessions that own them: spans must close
in LIFO order on one thread at a time (the ``with`` statement guarantees
it). Merging worker records and reading the recorder are safe at round
boundaries, which is when they happen.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "NULL_TRACER",
    "PhaseStat",
    "SpanRecord",
    "Tracer",
    "WorkerSpan",
    "worker_span",
]

_clock = time.perf_counter

# Compact wire format for spans recorded inside worker processes:
# (name, start_s, duration_s, self_s, depth). Plain tuples of floats pickle
# fast and keep the reply-pipe payload small.
WorkerSpan = Tuple[str, float, float, float, int]


def worker_span(
    name: str, start_s: float, end_s: float, child_s: float = 0.0, depth: int = 0
) -> WorkerSpan:
    """Build one worker-side span tuple from raw clock readings."""
    duration = end_s - start_s
    return (name, start_s, duration, duration - child_s, depth)


@dataclass(frozen=True)
class SpanRecord:
    """One closed span (or instant event) in the flight recorder.

    ``start_s`` is a raw monotonic-clock reading — meaningful only relative
    to other records of the same run. ``self_s`` is the duration minus the
    time spent in child spans; ``depth`` the nesting depth on ``track`` when
    the span opened. Instant events carry zero duration and
    ``kind="instant"``.
    """

    name: str
    start_s: float
    duration_s: float
    self_s: float
    track: str
    depth: int
    args: Optional[Mapping[str, Any]] = None
    kind: str = "span"

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate of every span sharing one name."""

    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "total_s": self.total_s, "self_s": self.self_s}


class _NullSpan:
    """The shared no-op context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; created only when the tracer is enabled."""

    __slots__ = ("_tracer", "_name", "_args")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._tracer._open(self._name, self._args)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close()
        return False


class Tracer:
    """Spans + instants on a monotonic clock, with per-phase accounting.

    ``capacity`` bounds the flight recorder (oldest records evicted first);
    the per-phase totals keep accumulating after the recorder wraps, so a
    long-running session's :meth:`phase_totals` always cover its whole
    history. ``track`` names this tracer's timeline in exported traces —
    worker-side records merge in under their own track ids.
    """

    __slots__ = (
        "enabled",
        "track",
        "capacity",
        "_records",
        "_stack",
        "_phases",
        "_epoch_s",
    )

    def __init__(
        self, enabled: bool = True, capacity: int = 65536, track: str = "main"
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = bool(enabled)
        self.track = str(track)
        self.capacity = int(capacity)
        self._records: deque = deque(maxlen=self.capacity)
        # Open-span frames: [name, start_s, child_s, args].
        self._stack: List[list] = []
        # name -> [count, total_s, self_s]; mutable for cheap accumulation.
        self._phases: Dict[str, list] = {}
        self._epoch_s = _clock()

    # ------------------------------------------------------------ recording
    def span(self, name: str, **args: Any):
        """Context manager timing one named phase (nestable).

        The disabled path is one attribute check and returns a shared no-op
        object — the cost of instrumenting a hot path with an unused tracer.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args or None)

    def instant(self, name: str, **args: Any) -> None:
        """Record one zero-duration event at the current nesting depth."""
        if not self.enabled:
            return
        now = _clock()
        self._records.append(
            SpanRecord(
                name=name,
                start_s=now,
                duration_s=0.0,
                self_s=0.0,
                track=self.track,
                depth=len(self._stack),
                args=args or None,
                kind="instant",
            )
        )

    def _open(self, name: str, args: Optional[Dict[str, Any]]) -> None:
        self._stack.append([name, _clock(), 0.0, args])

    def _close(self) -> None:
        end = _clock()
        name, start, child_s, args = self._stack.pop()
        duration = end - start
        self_s = duration - child_s
        if self._stack:
            self._stack[-1][2] += duration
        self._records.append(
            SpanRecord(
                name=name,
                start_s=start,
                duration_s=duration,
                self_s=self_s,
                track=self.track,
                depth=len(self._stack),
                args=args,
            )
        )
        self._account(name, duration, self_s)

    def _account(self, name: str, duration_s: float, self_s: float) -> None:
        stat = self._phases.get(name)
        if stat is None:
            stat = self._phases[name] = [0, 0.0, 0.0]
        stat[0] += 1
        stat[1] += duration_s
        stat[2] += self_s

    # ------------------------------------------------------ worker ingestion
    def merge_worker_records(
        self, records: Optional[Sequence[WorkerSpan]], track: str
    ) -> None:
        """Fold worker-side span tuples into the recorder under ``track``.

        Worker clock readings are raw :func:`time.perf_counter` values from
        a forked child of this process, so they land on the parent timeline
        unadjusted. Worker phases are accounted in :meth:`phase_totals`
        alongside parent phases (they live on a different track, so the
        track-level decomposition invariant applies per track).
        """
        if not records or not self.enabled:
            return
        for name, start_s, duration_s, self_s, depth in records:
            self._records.append(
                SpanRecord(
                    name=name,
                    start_s=float(start_s),
                    duration_s=float(duration_s),
                    self_s=float(self_s),
                    track=track,
                    depth=int(depth),
                )
            )
            self._account(name, float(duration_s), float(self_s))

    # -------------------------------------------------------------- reading
    def records(self) -> List[SpanRecord]:
        """A snapshot of the flight recorder (oldest first)."""
        return list(self._records)

    def phase_totals(self, track: Optional[str] = None) -> Dict[str, PhaseStat]:
        """Accumulated per-phase stats over the tracer's whole history.

        With ``track=None`` this is the cheap accumulating view covering
        every track (survives recorder wrap-around). Passing a track name
        recomputes from the flight recorder for that track only — the view
        whose self times decompose that track's root spans exactly.
        """
        if track is None:
            return {
                name: PhaseStat(count=stat[0], total_s=stat[1], self_s=stat[2])
                for name, stat in self._phases.items()
            }
        per_track: Dict[str, list] = {}
        for record in self._records:
            if record.track != track or record.kind != "span":
                continue
            stat = per_track.setdefault(record.name, [0, 0.0, 0.0])
            stat[0] += 1
            stat[1] += record.duration_s
            stat[2] += record.self_s
        return {
            name: PhaseStat(count=stat[0], total_s=stat[1], self_s=stat[2])
            for name, stat in per_track.items()
        }

    def tracks(self) -> Tuple[str, ...]:
        """Every track present in the recorder, parent track first."""
        seen = {self.track: None}
        for record in self._records:
            seen.setdefault(record.track, None)
        return tuple(seen)

    def total_s(self, name: str) -> float:
        """Total wall seconds accumulated under one span name (0.0 if unseen)."""
        stat = self._phases.get(name)
        return stat[1] if stat is not None else 0.0

    def count(self, name: str) -> int:
        """How many spans closed under one name."""
        stat = self._phases.get(name)
        return stat[0] if stat is not None else 0

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop the flight recorder and phase totals (open spans survive)."""
        self._records.clear()
        self._phases.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, track={self.track!r}, records={len(self._records)})"


#: The shared disabled tracer: instrument unconditionally against this and
#: every hook costs one attribute check. (Its recorder stays empty even if
#: someone flips ``enabled`` on a copy — use a fresh Tracer() for that.)
NULL_TRACER = Tracer(enabled=False, capacity=1, track="null")
