"""Experiment sweeps: accuracy-vs-threshold curves and the algorithm ablation.

These helpers turn a classifier and a labelled read set into the data behind
Figure 17a (accuracy for every reasonable threshold, one curve per prefix
length) and Figure 18 (maximal F-score for each sDTW variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SDTWConfig
from repro.core.filter import SquiggleFilter
from repro.core.reference import ReferenceSquiggle
from repro.core.thresholds import ThresholdSweepResult, sweep_thresholds
from repro.core.variants import ABLATION_VARIANTS


@dataclass
class PrefixSweep:
    """Threshold sweep plus the raw costs for one prefix length."""

    prefix_samples: int
    target_costs: List[float]
    nontarget_costs: List[float]
    sweep: ThresholdSweepResult

    @property
    def max_f1(self) -> float:
        return self.sweep.max_f1()

    @property
    def best_threshold(self) -> float:
        return self.sweep.best_by_f1().threshold


@dataclass
class AccuracySweep:
    """Figure 17a: one threshold sweep per prefix length."""

    prefixes: List[PrefixSweep] = field(default_factory=list)

    def __iter__(self):
        return iter(self.prefixes)

    def __len__(self) -> int:
        return len(self.prefixes)

    def by_prefix(self, prefix_samples: int) -> PrefixSweep:
        for entry in self.prefixes:
            if entry.prefix_samples == prefix_samples:
                return entry
        raise KeyError(f"no sweep for prefix length {prefix_samples}")

    def max_f1_by_prefix(self) -> Dict[int, float]:
        return {entry.prefix_samples: entry.max_f1 for entry in self.prefixes}


def accuracy_sweep(
    squiggle_filter: SquiggleFilter,
    target_signals: Sequence[np.ndarray],
    nontarget_signals: Sequence[np.ndarray],
    prefix_lengths: Sequence[int],
    n_thresholds: int = 101,
) -> AccuracySweep:
    """Compute Figure 17a-style accuracy curves for each prefix length."""
    result = AccuracySweep()
    for prefix in prefix_lengths:
        # One batched wavefront per class per prefix length (falls back to the
        # per-read loop only for the non-resumable vanilla recurrence).
        target_costs = squiggle_filter.cost_batch(target_signals, prefix)
        nontarget_costs = squiggle_filter.cost_batch(nontarget_signals, prefix)
        sweep = sweep_thresholds(target_costs, nontarget_costs, n_thresholds=n_thresholds)
        result.prefixes.append(
            PrefixSweep(
                prefix_samples=prefix,
                target_costs=target_costs,
                nontarget_costs=nontarget_costs,
                sweep=sweep,
            )
        )
    return result


def ablation_sweep(
    reference: ReferenceSquiggle,
    target_signals: Sequence[np.ndarray],
    nontarget_signals: Sequence[np.ndarray],
    prefix_lengths: Sequence[int],
    variants: Optional[Dict[str, SDTWConfig]] = None,
    n_thresholds: int = 101,
) -> Dict[str, Dict[int, float]]:
    """Figure 18: maximal F1 per sDTW variant per prefix length.

    Returns ``{variant_name: {prefix_samples: max_f1}}``.
    """
    chosen = variants if variants is not None else ABLATION_VARIANTS
    results: Dict[str, Dict[int, float]] = {}
    for name, config in chosen.items():
        squiggle_filter = SquiggleFilter(reference, config=config)
        sweep = accuracy_sweep(
            squiggle_filter,
            target_signals,
            nontarget_signals,
            prefix_lengths,
            n_thresholds=n_thresholds,
        )
        results[name] = sweep.max_f1_by_prefix()
    return results


def roc_points(sweep: ThresholdSweepResult) -> List[Dict[str, float]]:
    """(false positive rate, recall) pairs for plotting one ROC-style curve."""
    return [
        {"false_positive_rate": point.false_positive_rate, "recall": point.recall}
        for point in sweep
    ]
