"""Experiment report generation.

Benches and examples produce dictionaries/rows; this module renders them as
aligned text tables or Markdown so results can be pasted into EXPERIMENTS.md
or a lab notebook without extra tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def _format_value(value: object, precision: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[List[str]] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {column: _format_value(row.get(column, ""), precision) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered)) for column in columns
    }
    lines = [
        "  ".join(column.rjust(widths[column]) for column in columns),
        "  ".join("-" * widths[column] for column in columns),
    ]
    for row in rendered:
        lines.append("  ".join(row[column].rjust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[List[str]] = None,
    precision: int = 4,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    divider = "|" + "|".join(["---"] * len(columns)) + "|"
    body = [
        "| " + " | ".join(_format_value(row.get(column, ""), precision) for column in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, divider] + body)


@dataclass
class ExperimentSection:
    """One experiment's results: a title, free-text notes and result rows."""

    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)


class ExperimentReport:
    """Collect experiment sections and render them as text or Markdown."""

    def __init__(self, title: str) -> None:
        if not title:
            raise ValueError("report title must be non-empty")
        self.title = title
        self.sections: List[ExperimentSection] = []

    def section(self, title: str, columns: Optional[List[str]] = None) -> ExperimentSection:
        section = ExperimentSection(title=title, columns=columns)
        self.sections.append(section)
        return section

    def to_text(self) -> str:
        parts = [f"== {self.title} =="]
        for section in self.sections:
            parts.append("")
            parts.append(f"-- {section.title} --")
            for note in section.notes:
                parts.append(f"  {note}")
            parts.append(format_table(section.rows, section.columns))
        return "\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"# {self.title}"]
        for section in self.sections:
            parts.append("")
            parts.append(f"## {section.title}")
            for note in section.notes:
                parts.append(f"*{note}*")
                parts.append("")
            parts.append(format_markdown_table(section.rows, section.columns))
        return "\n".join(parts)

    def save(self, path, markdown: bool = True) -> None:
        content = self.to_markdown() if markdown else self.to_text()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content + "\n")
