"""sDTW cost distributions (paper Figure 11).

Figure 11 plots, for three read prefix lengths, the distribution of final
sDTW alignment costs of target (lambda phage) and non-target (human) reads,
showing that a static threshold separates the two and that longer prefixes
separate better. :func:`cost_distributions_by_prefix` regenerates that data
from any classifier and read set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class CostDistribution:
    """Summary of one cost distribution (one violin/histogram of Figure 11)."""

    label: str
    prefix_samples: int
    costs: np.ndarray

    def __post_init__(self) -> None:
        self.costs = np.asarray(self.costs, dtype=np.float64)
        if self.costs.size == 0:
            raise ValueError(f"cost distribution {self.label!r} is empty")

    @property
    def mean(self) -> float:
        return float(self.costs.mean())

    @property
    def std(self) -> float:
        return float(self.costs.std())

    @property
    def median(self) -> float:
        return float(np.median(self.costs))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.costs, q))

    def histogram(self, bins: int = 20) -> Dict[str, np.ndarray]:
        counts, edges = np.histogram(self.costs, bins=bins)
        return {"counts": counts, "edges": edges}

    def summary(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "p05": self.quantile(0.05),
            "p95": self.quantile(0.95),
        }


@dataclass
class PrefixDistributions:
    """Target and non-target cost distributions at one prefix length."""

    prefix_samples: int
    target: CostDistribution
    nontarget: CostDistribution

    @property
    def overlap(self) -> float:
        """Fraction of non-target costs below the 95th percentile of target costs.

        A proxy for the distribution overlap visible in Figure 11; it shrinks
        as the prefix grows.
        """
        cutoff = self.target.quantile(0.95)
        return float(np.count_nonzero(self.nontarget.costs <= cutoff) / self.nontarget.costs.size)

    @property
    def separation(self) -> float:
        """Normalized distance between the two distribution means."""
        pooled = np.sqrt(0.5 * (self.target.std**2 + self.nontarget.std**2))
        if pooled == 0:
            return 0.0
        return float((self.nontarget.mean - self.target.mean) / pooled)


def cost_distributions_by_prefix(
    classify_costs,
    target_signals: Sequence[np.ndarray],
    nontarget_signals: Sequence[np.ndarray],
    prefix_lengths: Sequence[int],
    per_sample: bool = False,
) -> List[PrefixDistributions]:
    """Compute target/non-target cost distributions for each prefix length.

    ``classify_costs(signal, prefix_samples)`` must return the sDTW alignment
    cost of the first ``prefix_samples`` samples of ``signal`` — typically a
    bound method of :class:`repro.core.filter.SquiggleFilter`.
    """
    results: List[PrefixDistributions] = []
    for prefix in prefix_lengths:
        target_costs = [classify_costs(signal, prefix) for signal in target_signals]
        nontarget_costs = [classify_costs(signal, prefix) for signal in nontarget_signals]
        divisor = prefix if per_sample else 1
        results.append(
            PrefixDistributions(
                prefix_samples=prefix,
                target=CostDistribution(
                    label="target",
                    prefix_samples=prefix,
                    costs=np.asarray(target_costs) / divisor,
                ),
                nontarget=CostDistribution(
                    label="nontarget",
                    prefix_samples=prefix,
                    costs=np.asarray(nontarget_costs) / divisor,
                ),
            )
        )
    return results
