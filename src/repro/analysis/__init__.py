"""Analysis helpers: classification metrics, cost distributions, experiment sweeps.

``repro.analysis.sweeps`` is imported lazily: it depends on
``repro.core.filter`` which in turn uses :mod:`repro.analysis.metrics`, so an
eager import here would create a cycle when the core package loads first.
"""

from repro.analysis.distributions import CostDistribution, cost_distributions_by_prefix
from repro.analysis.report import ExperimentReport, format_markdown_table, format_table
from repro.analysis.metrics import (
    ClassificationCounts,
    accuracy,
    confusion_from_labels,
    f_score,
    precision,
    recall,
)

__all__ = [
    "AccuracySweep",
    "ClassificationCounts",
    "CostDistribution",
    "ExperimentReport",
    "ablation_sweep",
    "accuracy",
    "accuracy_sweep",
    "confusion_from_labels",
    "cost_distributions_by_prefix",
    "f_score",
    "format_markdown_table",
    "format_table",
    "precision",
    "recall",
    "roc_points",
]

_LAZY_SWEEP_EXPORTS = {"AccuracySweep", "accuracy_sweep", "ablation_sweep", "roc_points"}


def __getattr__(name: str):
    if name in _LAZY_SWEEP_EXPORTS:
        from repro.analysis import sweeps

        return getattr(sweeps, name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
