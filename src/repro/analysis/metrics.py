"""Binary classification metrics for Read Until filters.

Convention used throughout the repository: the *positive* class is a target
(viral) read that the filter should keep sequencing; the *negative* class is
a background (host) read that should be ejected. A false negative therefore
wastes a target read, and a false positive wastes sequencing time on a host
read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ClassificationCounts:
    """A confusion matrix for one operating point."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    def __post_init__(self) -> None:
        for name in ("true_positive", "false_positive", "true_negative", "false_negative"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total(self) -> int:
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative

    @property
    def positives(self) -> int:
        return self.true_positive + self.false_negative

    @property
    def negatives(self) -> int:
        return self.true_negative + self.false_positive

    @property
    def precision(self) -> float:
        predicted_positive = self.true_positive + self.false_positive
        if predicted_positive == 0:
            return 0.0
        return self.true_positive / predicted_positive

    @property
    def recall(self) -> float:
        if self.positives == 0:
            return 0.0
        return self.true_positive / self.positives

    @property
    def specificity(self) -> float:
        if self.negatives == 0:
            return 0.0
        return self.true_negative / self.negatives

    @property
    def false_positive_rate(self) -> float:
        if self.negatives == 0:
            return 0.0
        return self.false_positive / self.negatives

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def f1(self) -> float:
        return f_score(self, beta=1.0)


def precision(counts: ClassificationCounts) -> float:
    return counts.precision


def recall(counts: ClassificationCounts) -> float:
    return counts.recall


def accuracy(counts: ClassificationCounts) -> float:
    return counts.accuracy


def f_score(counts: ClassificationCounts, beta: float = 1.0) -> float:
    """F-beta score; beta=1 reproduces the F1 used in Figure 18."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    p = counts.precision
    r = counts.recall
    if p == 0.0 and r == 0.0:
        return 0.0
    beta_squared = beta * beta
    return (1 + beta_squared) * p * r / (beta_squared * p + r)


def confusion_from_labels(
    truths: Sequence[bool],
    predictions: Sequence[bool],
) -> ClassificationCounts:
    """Build a confusion matrix from parallel truth/prediction sequences.

    ``True`` means "target read" in both sequences.
    """
    if len(truths) != len(predictions):
        raise ValueError(
            f"truths and predictions must have equal length, got {len(truths)} and {len(predictions)}"
        )
    tp = fp = tn = fn = 0
    for truth, prediction in zip(truths, predictions):
        if truth and prediction:
            tp += 1
        elif truth and not prediction:
            fn += 1
        elif not truth and prediction:
            fp += 1
        else:
            tn += 1
    return ClassificationCounts(
        true_positive=tp, false_positive=fp, true_negative=tn, false_negative=fn
    )
