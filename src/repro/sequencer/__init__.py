"""Nanopore sequencer substrate: specimens, reads, flow cells and streaming runs."""

from repro.sequencer.flowcell import FlowCell, FlowCellConfig, WashEvent
from repro.sequencer.reads import Read, ReadGenerator, ReadLengthModel, SpecimenMixture
from repro.sequencer.read_until_api import (
    ChunkAccumulator,
    ReadUntilSimulator,
    SignalChunk,
    classifier_client,
)
from repro.sequencer.run import MinIONParameters, ReadUntilSession, SessionSummary
from repro.sequencer.datasets import DatasetBundle, build_dataset

__all__ = [
    "ChunkAccumulator",
    "DatasetBundle",
    "FlowCell",
    "FlowCellConfig",
    "MinIONParameters",
    "Read",
    "ReadGenerator",
    "ReadLengthModel",
    "ReadUntilSession",
    "ReadUntilSimulator",
    "SignalChunk",
    "SessionSummary",
    "SpecimenMixture",
    "WashEvent",
    "build_dataset",
    "classifier_client",
]
