"""Event-driven Read Until sequencing session.

The paper derives Read Until runtimes from an analytical model
(:mod:`repro.pipeline.runtime_model`). This module complements it with an
event-driven simulation of a sequencing run: reads are captured one after the
other on each pore, the classifier sees the growing prefix, and an ejection
decision truncates the read after the decision latency. The two models agree
on the trends and the event-driven session additionally yields per-read
accounting (coverage, wasted sequencing, decision statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.core.filter import FilterDecision
from repro.sequencer.reads import Read, ReadGenerator


@dataclass
class MinIONParameters:
    """Per-pore sequencing parameters of a MinION-class device.

    Defaults follow the paper: ~4000 signal samples per second per pore,
    450 bases per second translocation, an average capture time between reads
    and a fixed time to reverse the pore voltage when ejecting.
    """

    sample_rate_hz: float = 4000.0
    bases_per_second: float = 450.0
    capture_time_s: float = 1.0
    ejection_time_s: float = 0.5
    n_channels: int = 512

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.bases_per_second <= 0:
            raise ValueError("bases_per_second must be positive")
        if self.capture_time_s < 0 or self.ejection_time_s < 0:
            raise ValueError("capture and ejection times must be non-negative")
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")

    @property
    def samples_per_base(self) -> float:
        return self.sample_rate_hz / self.bases_per_second

    def samples_to_seconds(self, n_samples: float) -> float:
        return n_samples / self.sample_rate_hz

    def bases_to_seconds(self, n_bases: float) -> float:
        return n_bases / self.bases_per_second

    @property
    def max_throughput_samples_per_s(self) -> float:
        """Aggregate signal rate with every channel active (paper: 2.05 M samples/s)."""
        return self.sample_rate_hz * self.n_channels


@dataclass
class ReadOutcome:
    """Accounting for one read processed during a session."""

    read: Read
    decision: Optional[FilterDecision]
    sequenced_samples: int
    sequencing_time_s: float
    ejected: bool

    @property
    def is_target(self) -> bool:
        return self.read.is_target

    @property
    def kept_full_read(self) -> bool:
        return not self.ejected


@dataclass
class SessionSummary:
    """Aggregate results of one Read Until session."""

    outcomes: List[ReadOutcome] = field(default_factory=list)
    target_bases_kept: int = 0
    total_time_s: float = 0.0
    classifier_latency_s: float = 0.0

    @property
    def n_reads(self) -> int:
        return len(self.outcomes)

    @property
    def n_ejected(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ejected)

    @property
    def n_target_reads(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.is_target)

    @property
    def n_target_reads_kept(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.is_target and not outcome.ejected)

    @property
    def target_read_recall(self) -> float:
        if self.n_target_reads == 0:
            return 0.0
        return self.n_target_reads_kept / self.n_target_reads

    @property
    def wasted_nontarget_samples(self) -> int:
        return sum(
            outcome.sequenced_samples for outcome in self.outcomes if not outcome.is_target
        )

    @property
    def mean_nontarget_sequenced_samples(self) -> float:
        counts = [o.sequenced_samples for o in self.outcomes if not o.is_target]
        if not counts:
            return 0.0
        return float(np.mean(counts))


class ReadUntilSession:
    """Simulate a Read Until run on a single pore stream.

    ``classifier`` maps a raw signal prefix to a :class:`FilterDecision`.
    ``decision_latency_s`` models the compute latency between the prefix
    becoming available and the ejection command reaching the pore — the key
    quantity distinguishing SquiggleFilter (0.04 ms) from GPU basecalling
    (149-1000+ ms): during that latency the pore keeps sequencing unwanted
    bases.
    """

    def __init__(
        self,
        classifier: Callable[[np.ndarray], FilterDecision],
        parameters: Optional[MinIONParameters] = None,
        decision_latency_s: float = 0.0,
        prefix_samples: int = 2000,
    ) -> None:
        if decision_latency_s < 0:
            raise ValueError("decision_latency_s must be non-negative")
        if prefix_samples <= 0:
            raise ValueError("prefix_samples must be positive")
        self.classifier = classifier
        self.parameters = parameters if parameters is not None else MinIONParameters()
        self.decision_latency_s = decision_latency_s
        self.prefix_samples = prefix_samples

    def process_read(self, read: Read) -> ReadOutcome:
        """Process one read and account for the sequencing time it consumed."""
        params = self.parameters
        total_samples = read.n_samples
        prefix = read.prefix(self.prefix_samples)
        decision = self.classifier(prefix)

        latency_samples = int(round(self.decision_latency_s * params.sample_rate_hz))
        if decision.accept:
            sequenced = total_samples
            ejected = False
            time_s = params.capture_time_s + params.samples_to_seconds(sequenced)
        else:
            # The read is ejected after the decision prefix plus however much
            # extra was sequenced while the classifier was busy.
            sequenced = min(total_samples, decision.samples_used + latency_samples)
            ejected = True
            time_s = (
                params.capture_time_s
                + params.samples_to_seconds(sequenced)
                + params.ejection_time_s
            )
        return ReadOutcome(
            read=read,
            decision=decision,
            sequenced_samples=sequenced,
            sequencing_time_s=time_s,
            ejected=ejected,
        )

    def run(
        self,
        reads: Iterable[Read],
        target_bases_goal: Optional[int] = None,
        max_reads: Optional[int] = None,
    ) -> SessionSummary:
        """Process reads until the coverage goal (in kept target bases) is met."""
        summary = SessionSummary(classifier_latency_s=self.decision_latency_s)
        for index, read in enumerate(reads):
            if max_reads is not None and index >= max_reads:
                break
            outcome = self.process_read(read)
            summary.outcomes.append(outcome)
            summary.total_time_s += outcome.sequencing_time_s
            if outcome.is_target and not outcome.ejected:
                summary.target_bases_kept += read.n_bases
            if target_bases_goal is not None and summary.target_bases_kept >= target_bases_goal:
                break
        return summary


def run_control_session(
    reads: Iterable[Read],
    parameters: Optional[MinIONParameters] = None,
    target_bases_goal: Optional[int] = None,
    max_reads: Optional[int] = None,
) -> SessionSummary:
    """Sequence everything (no Read Until): the control arm of Figure 20/17."""
    params = parameters if parameters is not None else MinIONParameters()

    def accept_everything(prefix: np.ndarray) -> FilterDecision:
        return FilterDecision(
            accept=True,
            cost=0.0,
            per_sample_cost=0.0,
            samples_used=int(np.asarray(prefix).size),
            threshold=float("inf"),
            end_position=0,
        )

    session = ReadUntilSession(accept_everything, parameters=params, decision_latency_s=0.0)
    return session.run(reads, target_bases_goal=target_bases_goal, max_reads=max_reads)
