"""Dataset builders mirroring the paper's three evaluation datasets.

The artifact evaluates on lambda phage (lab-sequenced), SARS-CoV-2 (CADDE
Centre) and human (ONT open data) raw reads. ``build_dataset`` assembles the
synthetic equivalent: a reference panel, a specimen mixture at the requested
viral fraction, a calibrated read generator, and pre-generated balanced read
sets for the accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.genomes.references import ReferencePanel, build_reference_panel
from repro.pore_model.kmer_model import KmerModel
from repro.pore_model.synthesis import SquiggleSynthesisConfig
from repro.sequencer.reads import Read, ReadGenerator, ReadLengthModel, SpecimenMixture

# Canonical dataset names used by the experiments.
LAMBDA = "lambda"
COVID = "sars_cov_2"
HUMAN = "human"


@dataclass
class DatasetBundle:
    """Everything one experiment needs: genomes, generator and labelled reads."""

    name: str
    panel: ReferencePanel
    mixture: SpecimenMixture
    generator: ReadGenerator
    kmer_model: KmerModel
    reads: List[Read] = field(default_factory=list)

    @property
    def target_genome(self) -> str:
        return self.panel[self.mixture.target_names[0]]

    @property
    def target_reads(self) -> List[Read]:
        return [read for read in self.reads if read.is_target]

    @property
    def nontarget_reads(self) -> List[Read]:
        return [read for read in self.reads if not read.is_target]

    def target_signals(self) -> List[np.ndarray]:
        return [read.signal_pa for read in self.target_reads]

    def nontarget_signals(self) -> List[np.ndarray]:
        return [read.signal_pa for read in self.nontarget_reads]

    def split(self, calibration_fraction: float = 0.5) -> Dict[str, "DatasetBundle"]:
        """Split the pre-generated reads into calibration and evaluation halves."""
        if not 0.0 < calibration_fraction < 1.0:
            raise ValueError("calibration_fraction must be strictly between 0 and 1")

        def take(reads: Sequence[Read], first_half: bool) -> List[Read]:
            cut = int(len(reads) * calibration_fraction)
            return list(reads[:cut]) if first_half else list(reads[cut:])

        splits = {}
        for label, first in (("calibration", True), ("evaluation", False)):
            bundle = DatasetBundle(
                name=f"{self.name}:{label}",
                panel=self.panel,
                mixture=self.mixture,
                generator=self.generator,
                kmer_model=self.kmer_model,
                reads=take(self.target_reads, first) + take(self.nontarget_reads, first),
            )
            splits[label] = bundle
        return splits


def build_dataset(
    target: str = LAMBDA,
    background: str = HUMAN,
    viral_fraction: float = 0.01,
    n_balanced_reads: int = 100,
    genome_lengths: Optional[Dict[str, int]] = None,
    read_length: Optional[ReadLengthModel] = None,
    synthesis: Optional[SquiggleSynthesisConfig] = None,
    seed: int = 1234,
) -> DatasetBundle:
    """Build a named dataset bundle.

    ``n_balanced_reads`` is the number of reads *per class* pre-generated for
    accuracy experiments (the paper uses 1000 per class; the scaled default
    keeps bench runtimes reasonable). The mixture itself uses
    ``viral_fraction`` so runtime-model experiments see the realistic
    imbalance.
    """
    if not 0.0 < viral_fraction < 1.0:
        raise ValueError("viral_fraction must be strictly between 0 and 1")
    panel = build_reference_panel(target=target, background=background, lengths=genome_lengths, seed=seed)
    mixture = SpecimenMixture.two_component(
        target_name=target,
        target_genome=panel[target],
        background_name=background,
        background_genome=panel[background],
        target_fraction=viral_fraction,
    )
    kmer_model = KmerModel(seed=941)
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        synthesis=synthesis,
        length_model=read_length,
        seed=seed + 17,
    )
    reads = generator.generate_balanced(n_balanced_reads) if n_balanced_reads > 0 else []
    return DatasetBundle(
        name=f"{target}_vs_{background}",
        panel=panel,
        mixture=mixture,
        generator=generator,
        kmer_model=kmer_model,
        reads=reads,
    )
