"""Read sampling from specimen mixtures.

A sequencing specimen prepared with universal (SISPA) amplification contains
target viral DNA/RNA among a sea of host and bacterial material — the paper
evaluates 1 % and 0.1 % viral fractions. :class:`SpecimenMixture` captures the
genome composition, :class:`ReadGenerator` samples reads (fragment, strand,
length) and synthesizes their squiggles through the pore model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.genomes.sequences import reverse_complement, validate_sequence
from repro.pore_model.kmer_model import KmerModel
from repro.pore_model.synthesis import SquiggleSimulator, SquiggleSynthesisConfig


@dataclass
class Read:
    """One sequenced read: ground truth plus its raw squiggle."""

    read_id: str
    source: str
    is_target: bool
    sequence: str
    signal_pa: np.ndarray
    strand: str = "+"
    start_position: int = 0
    channel: int = 0

    def __post_init__(self) -> None:
        self.signal_pa = np.asarray(self.signal_pa, dtype=np.float64)
        if self.strand not in ("+", "-"):
            raise ValueError(f"strand must be '+' or '-', got {self.strand!r}")

    @property
    def n_bases(self) -> int:
        return len(self.sequence)

    @property
    def n_samples(self) -> int:
        return int(self.signal_pa.size)

    def prefix(self, n_samples: int) -> np.ndarray:
        """The first ``n_samples`` of raw signal (what Read Until sees first)."""
        return self.signal_pa[:n_samples]


@dataclass
class ReadLengthModel:
    """Read length distribution (log-normal, clamped to a sane range).

    Nanopore read lengths are heavy-tailed; mean lengths of a few kilobases
    are typical for rapid-kit viral preps. For the scaled experiments we use
    shorter reads so that a read still spans a small fraction of the scaled
    genome.
    """

    mean_bases: float = 600.0
    sigma: float = 0.35
    min_bases: int = 200
    max_bases: int = 5_000

    def __post_init__(self) -> None:
        if self.mean_bases <= 0:
            raise ValueError("mean_bases must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.min_bases < 10:
            raise ValueError("min_bases must be at least 10")
        if self.max_bases < self.min_bases:
            raise ValueError("max_bases must be >= min_bases")

    def sample(self, rng: np.random.Generator) -> int:
        if self.sigma == 0:
            length = int(round(self.mean_bases))
        else:
            mu = np.log(self.mean_bases) - 0.5 * self.sigma**2
            length = int(round(float(np.exp(rng.normal(mu, self.sigma)))))
        return int(np.clip(length, self.min_bases, self.max_bases))


@dataclass
class SpecimenMixture:
    """Genome composition of a specimen.

    ``fractions`` maps genome names to their read fraction; they must sum to
    1. ``target_names`` marks which genomes count as the target virus.
    """

    genomes: Dict[str, str]
    fractions: Dict[str, float]
    target_names: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.genomes:
            raise ValueError("mixture requires at least one genome")
        for name, sequence in self.genomes.items():
            self.genomes[name] = validate_sequence(sequence)
        missing = set(self.fractions) - set(self.genomes)
        if missing:
            raise ValueError(f"fractions reference unknown genomes: {sorted(missing)}")
        total = sum(self.fractions.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"fractions must sum to 1, got {total}")
        if any(value < 0 for value in self.fractions.values()):
            raise ValueError("fractions must be non-negative")
        unknown_targets = set(self.target_names) - set(self.genomes)
        if unknown_targets:
            raise ValueError(f"target_names reference unknown genomes: {sorted(unknown_targets)}")
        self.target_names = tuple(self.target_names)

    @property
    def target_fraction(self) -> float:
        """Fraction of reads expected to come from the target genome(s)."""
        return sum(self.fractions.get(name, 0.0) for name in self.target_names)

    def is_target(self, name: str) -> bool:
        return name in self.target_names

    @classmethod
    def two_component(
        cls,
        target_name: str,
        target_genome: str,
        background_name: str,
        background_genome: str,
        target_fraction: float,
    ) -> "SpecimenMixture":
        """The paper's standard specimen: one virus in a host background."""
        if not 0.0 <= target_fraction <= 1.0:
            raise ValueError(f"target_fraction must be in [0, 1], got {target_fraction}")
        return cls(
            genomes={target_name: target_genome, background_name: background_genome},
            fractions={target_name: target_fraction, background_name: 1.0 - target_fraction},
            target_names=(target_name,),
        )


class ReadGenerator:
    """Sample reads from a specimen and synthesize their squiggles."""

    def __init__(
        self,
        mixture: SpecimenMixture,
        kmer_model: Optional[KmerModel] = None,
        synthesis: Optional[SquiggleSynthesisConfig] = None,
        length_model: Optional[ReadLengthModel] = None,
        seed: Optional[int] = None,
        n_channels: int = 512,
    ) -> None:
        if n_channels <= 0:
            raise ValueError("n_channels must be positive")
        self.mixture = mixture
        self.kmer_model = kmer_model if kmer_model is not None else KmerModel()
        self.simulator = SquiggleSimulator(self.kmer_model, synthesis)
        self.length_model = length_model if length_model is not None else ReadLengthModel()
        self.n_channels = n_channels
        self._rng = np.random.default_rng(seed)
        self._names = sorted(mixture.fractions)
        self._weights = np.array([mixture.fractions[name] for name in self._names])
        self._counter = 0

    def generate(self, n_reads: int) -> List[Read]:
        """Generate ``n_reads`` reads according to the mixture fractions."""
        if n_reads < 0:
            raise ValueError("n_reads must be non-negative")
        return [self.generate_one() for _ in range(n_reads)]

    def generate_one(self, source: Optional[str] = None) -> Read:
        """Generate one read, optionally forcing its source genome."""
        rng = self._rng
        if source is None:
            source = self._names[int(rng.choice(len(self._names), p=self._weights))]
        elif source not in self.mixture.genomes:
            raise KeyError(f"unknown genome {source!r}")
        genome = self.mixture.genomes[source]
        length = min(self.length_model.sample(rng), len(genome) - self.kmer_model.k)
        length = max(length, self.kmer_model.k + 1)
        start = int(rng.integers(0, max(len(genome) - length, 1)))
        fragment = genome[start : start + length]
        strand = "+" if rng.random() < 0.5 else "-"
        if strand == "-":
            fragment = reverse_complement(fragment)
        squiggle = self.simulator.simulate(fragment, rng=rng)
        self._counter += 1
        return Read(
            read_id=f"read_{self._counter:06d}",
            source=source,
            is_target=self.mixture.is_target(source),
            sequence=fragment,
            signal_pa=squiggle.current_pa,
            strand=strand,
            start_position=start,
            channel=int(rng.integers(0, self.n_channels)),
        )

    def generate_balanced(self, n_per_class: int) -> List[Read]:
        """Generate an equal number of target and background reads.

        The accuracy experiments (Figures 11, 17a, 18, 19) use balanced sets
        (1000 lambda + 1000 human reads in the paper) so that F-scores are
        not dominated by the extreme class imbalance of a real specimen.
        """
        if not self.mixture.target_names:
            raise ValueError("mixture has no target genomes")
        target_names = [name for name in self._names if self.mixture.is_target(name)]
        background_names = [name for name in self._names if not self.mixture.is_target(name)]
        if not background_names:
            raise ValueError("mixture has no background genomes")
        reads: List[Read] = []
        for index in range(n_per_class):
            reads.append(self.generate_one(source=target_names[index % len(target_names)]))
            reads.append(self.generate_one(source=background_names[index % len(background_names)]))
        return reads

    def stream(self) -> Iterator[Read]:
        """Endless stream of reads (used by the event-driven run simulation)."""
        while True:
            yield self.generate_one()
