"""Streaming Read Until API simulation.

ONT's Read Until API exposes sequencing as a stream of raw-signal *chunks*
per channel: client code repeatedly fetches the newest chunk of every read
currently in a pore (accumulating prefixes itself), decides to ``unblock``
(eject), ``stop receiving`` (keep sequencing, stop streaming data) or wait
for more signal, and the pore state advances in real time whether or not the
client keeps up.

The paper's system plugs SquiggleFilter into exactly this interface, and its
latency argument (Section 7.2) is about what happens *between* chunk arrival
and the unblock call. :class:`ReadUntilSimulator` reproduces the interface
closely enough to drive any of this repository's classifiers through it and
to measure how decision latency and throughput limits translate into wasted
sequencing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.sequencer.reads import Read
from repro.sequencer.run import MinIONParameters


@dataclass
class SignalChunk:
    """One chunk of raw signal delivered to the Read Until client.

    Chunks are incremental, as in ONT's API: ``signal_pa`` holds only the
    samples that arrived since the previous chunk of the same read, and
    ``chunk_start_sample`` is the offset of this chunk's first sample within
    the read. ``is_last`` marks the chunk that exhausts the read's signal, so
    clients can make a best-effort decision on whatever prefix exists instead
    of waiting for samples that will never arrive. Clients that classify
    whole prefixes accumulate chunks per read (see :class:`ChunkAccumulator`,
    :func:`classifier_client` and the adapters in :mod:`repro.pipeline.api`).
    """

    channel: int
    read_id: str
    read_number: int
    chunk_start_sample: int
    signal_pa: np.ndarray
    is_last: bool = False

    @property
    def chunk_length(self) -> int:
        return int(self.signal_pa.size)

    @property
    def samples_seen(self) -> int:
        """Total samples of this read available so far (prefix length)."""
        return self.chunk_start_sample + self.chunk_length


@dataclass
class ChannelState:
    """What one pore/channel is doing at the current simulation time."""

    channel: int
    read: Optional[Read] = None
    read_number: int = 0
    samples_delivered: int = 0
    samples_sequenced: int = 0
    decision: str = "pending"  # pending | unblocked | stop_receiving | completed
    time_busy_until_s: float = 0.0


@dataclass
class ReadUntilActionLog:
    """Per-read record of what the client did and what it cost."""

    read_id: str
    channel: int
    is_target: bool
    action: str
    samples_sequenced: int
    decision_sample: int
    decision_time_s: float


class ReadUntilSimulator:
    """Chunk-based Read Until session over a set of channels.

    Parameters
    ----------
    reads:
        Read supply; consumed round-robin as channels become free.
    parameters:
        Pore kinetics (sample rate, capture time, ejection time).
    chunk_samples:
        Chunk granularity delivered to the client (ONT defaults to one
        second of signal, i.e. ~4000 samples; the paper reasons about
        2000-sample chunks).
    n_channels:
        Number of concurrently sequencing channels to simulate.
    """

    def __init__(
        self,
        reads: Sequence[Read],
        parameters: Optional[MinIONParameters] = None,
        chunk_samples: int = 2000,
        n_channels: int = 8,
        max_chunks_per_read: int = 8,
    ) -> None:
        if chunk_samples <= 0:
            raise ValueError("chunk_samples must be positive")
        if n_channels <= 0:
            raise ValueError("n_channels must be positive")
        if max_chunks_per_read <= 0:
            raise ValueError("max_chunks_per_read must be positive")
        self.parameters = parameters if parameters is not None else MinIONParameters()
        self.chunk_samples = chunk_samples
        self.n_channels = n_channels
        self.max_chunks_per_read = max_chunks_per_read
        self._reads: Iterator[Read] = iter(reads)
        self._channels: List[ChannelState] = [
            ChannelState(channel=index) for index in range(n_channels)
        ]
        self._read_counter = 0
        self.action_log: List[ReadUntilActionLog] = []
        self.clock_s = 0.0
        self._exhausted = False

    # ------------------------------------------------------------------ stream
    def _load_next_read(self, state: ChannelState) -> bool:
        try:
            read = next(self._reads)
        except StopIteration:
            self._exhausted = True
            state.read = None
            state.decision = "completed"
            return False
        self._read_counter += 1
        state.read = read
        state.read_number = self._read_counter
        state.samples_delivered = 0
        state.samples_sequenced = 0
        state.decision = "pending"
        state.time_busy_until_s = self.clock_s + self.parameters.capture_time_s
        return True

    def get_read_chunks(self) -> List[SignalChunk]:
        """Fetch the newest chunk for every channel with an undecided read.

        Mirrors ``read_until.ReadUntilClient.get_read_chunks()``: each call
        advances the simulation clock by one chunk duration and returns, for
        every read still awaiting a decision, the incremental chunk of signal
        that arrived since the previous poll (``chunk_start_sample`` marks
        where in the read the chunk begins).
        """
        chunk_duration_s = self.chunk_samples / self.parameters.sample_rate_hz
        self.clock_s += chunk_duration_s
        chunks: List[SignalChunk] = []
        for state in self._channels:
            if state.read is None or state.decision in ("unblocked", "completed"):
                if not self._exhausted:
                    self._load_next_read(state)
                if state.read is None:
                    continue
            if state.decision == "stop_receiving":
                # Keeps sequencing but the client no longer receives data.
                state.samples_sequenced = min(
                    state.read.n_samples, state.samples_sequenced + self.chunk_samples
                )
                if state.samples_sequenced >= state.read.n_samples:
                    self._finish_read(state, action="sequenced")
                continue
            if self.clock_s < state.time_busy_until_s:
                continue  # still in capture / ejection dead time
            start = state.samples_delivered
            end = min(start + self.chunk_samples, state.read.n_samples)
            state.samples_delivered = end
            state.samples_sequenced = end
            if end <= start:
                # Read ran out of signal without a decision: it completed.
                self._finish_read(state, action="sequenced")
                continue
            chunks.append(
                SignalChunk(
                    channel=state.channel,
                    read_id=state.read.read_id,
                    read_number=state.read_number,
                    chunk_start_sample=start,
                    signal_pa=state.read.signal_pa[start:end],
                    is_last=end >= state.read.n_samples,
                )
            )
            if state.samples_delivered >= self.max_chunks_per_read * self.chunk_samples:
                # Too long undecided: treat like stop_receiving (ONT behaviour).
                state.decision = "stop_receiving"
        return chunks

    # ----------------------------------------------------------------- actions
    def unblock(self, channel: int, read_id: str, latency_s: float = 0.0) -> None:
        """Eject the read currently in ``channel`` (if it still matches ``read_id``)."""
        state = self._state_for(channel)
        if state.read is None or state.read.read_id != read_id:
            return  # stale decision: the read already finished
        extra = int(round(latency_s * self.parameters.sample_rate_hz))
        state.samples_sequenced = min(state.read.n_samples, state.samples_sequenced + extra)
        state.time_busy_until_s = self.clock_s + latency_s + self.parameters.ejection_time_s
        self._finish_read(state, action="unblocked")

    def stop_receiving(self, channel: int, read_id: str) -> None:
        """Keep sequencing the read but stop streaming its chunks."""
        state = self._state_for(channel)
        if state.read is None or state.read.read_id != read_id:
            return
        state.decision = "stop_receiving"

    def _state_for(self, channel: int) -> ChannelState:
        if not 0 <= channel < self.n_channels:
            raise IndexError(f"channel {channel} out of range")
        return self._channels[channel]

    def _finish_read(self, state: ChannelState, action: str) -> None:
        assert state.read is not None
        self.action_log.append(
            ReadUntilActionLog(
                read_id=state.read.read_id,
                channel=state.channel,
                is_target=state.read.is_target,
                action=action,
                samples_sequenced=state.samples_sequenced,
                decision_sample=state.samples_delivered,
                decision_time_s=self.clock_s,
            )
        )
        state.read = None
        state.decision = "completed" if action == "sequenced" else "unblocked"

    # -------------------------------------------------------------------- loop
    @property
    def finished(self) -> bool:
        """True when the read supply is exhausted and all channels are idle."""
        return self._exhausted and all(state.read is None for state in self._channels)

    def run_client(
        self,
        decide: Callable[[SignalChunk], str],
        decision_latency_s: float = 0.0,
        max_iterations: int = 10_000,
    ) -> Dict[str, object]:
        """Drive the stream with a decision callback until all reads finish.

        ``decide`` receives a chunk and returns ``"unblock"``,
        ``"stop_receiving"`` or ``"wait"``. Returns summary statistics of the
        session.
        """
        iterations = 0
        while not self.finished and iterations < max_iterations:
            iterations += 1
            for chunk in self.get_read_chunks():
                action = decide(chunk)
                self._apply_action(chunk, action, decision_latency_s)
        return self.summary()

    def run_batch_client(
        self,
        decide_batch: Callable[[List[SignalChunk]], Sequence[str]],
        decision_latency_s: float = 0.0,
        max_iterations: int = 10_000,
    ) -> Dict[str, object]:
        """Drive the stream one whole polling round at a time.

        ``decide_batch`` receives every undecided channel's chunk of the round
        at once and returns one action verb per chunk, in order — the shape a
        batched classifier wants (one vectorized wavefront per round) and the
        shape ONT's real API delivers (``get_read_chunks`` returns the whole
        round). Semantically equivalent to :meth:`run_client` with the same
        per-chunk decisions.
        """
        iterations = 0
        while not self.finished and iterations < max_iterations:
            iterations += 1
            chunks = self.get_read_chunks()
            if not chunks:
                continue
            actions = list(decide_batch(chunks))
            if len(actions) != len(chunks):
                raise ValueError(
                    f"decide_batch returned {len(actions)} actions for {len(chunks)} chunks"
                )
            for chunk, action in zip(chunks, actions):
                self._apply_action(chunk, action, decision_latency_s)
        return self.summary()

    def _apply_action(self, chunk: SignalChunk, action: str, decision_latency_s: float) -> None:
        if action == "unblock":
            self.unblock(chunk.channel, chunk.read_id, latency_s=decision_latency_s)
        elif action == "stop_receiving":
            self.stop_receiving(chunk.channel, chunk.read_id)
        elif action != "wait":
            raise ValueError(f"unknown Read Until action {action!r}")

    def summary(self) -> Dict[str, object]:
        """Aggregate statistics of the actions taken so far."""
        log = self.action_log
        n_target = sum(1 for entry in log if entry.is_target)
        n_target_kept = sum(1 for entry in log if entry.is_target and entry.action == "sequenced")
        n_background = sum(1 for entry in log if not entry.is_target)
        n_background_ejected = sum(
            1 for entry in log if not entry.is_target and entry.action == "unblocked"
        )
        return {
            "reads_finished": len(log),
            "target_reads": n_target,
            "target_recall": (n_target_kept / n_target) if n_target else 0.0,
            "background_reads": n_background,
            "background_ejection_rate": (
                n_background_ejected / n_background if n_background else 0.0
            ),
            "mean_background_samples": (
                float(np.mean([e.samples_sequenced for e in log if not e.is_target]))
                if n_background
                else 0.0
            ),
            "wall_clock_s": self.clock_s,
        }


class ChunkAccumulator:
    """Reassemble incremental :class:`SignalChunk` streams into per-read prefixes.

    Shared by :func:`classifier_client` and the streaming adapters in
    :mod:`repro.pipeline.api`, so the chunk-to-prefix bookkeeping (and its
    cleanup) lives in exactly one place.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, List[np.ndarray]] = {}

    def begin_read(self, read_id: str) -> None:
        self._buffers[read_id] = []

    def add(self, chunk: SignalChunk) -> int:
        """Append a chunk to its read's buffer; return the prefix length so far."""
        if chunk.chunk_start_sample == 0:
            self._buffers[chunk.read_id] = []
        parts = self._buffers.setdefault(chunk.read_id, [])
        parts.append(np.asarray(chunk.signal_pa, dtype=np.float64))
        return sum(part.size for part in parts)

    def prefix(self, read_id: str) -> np.ndarray:
        return np.concatenate(self._buffers[read_id])

    def drop(self, read_id: str) -> None:
        self._buffers.pop(read_id, None)


def classifier_client(
    classify: Callable[[np.ndarray], bool],
    min_samples: int = 2000,
) -> Callable[[SignalChunk], str]:
    """Adapt a boolean classifier into a Read Until decision callback.

    The callback accumulates the incremental chunks of each read, waits until
    ``min_samples`` of signal are available (or the read ends first), then
    issues ``stop_receiving`` for positives and ``unblock`` for negatives —
    the standard single-stage policy. For richer incremental behaviour (typed
    actions, multi-stage decisions, cost accounting) use the
    :class:`repro.pipeline.api.ReadUntilClassifier` protocol instead.
    """
    if min_samples <= 0:
        raise ValueError("min_samples must be positive")

    accumulator = ChunkAccumulator()

    def decide(chunk: SignalChunk) -> str:
        accumulator.add(chunk)
        if chunk.samples_seen < min_samples and not chunk.is_last:
            return "wait"
        signal = accumulator.prefix(chunk.read_id)
        accumulator.drop(chunk.read_id)
        return "stop_receiving" if classify(signal[:min_samples]) else "unblock"

    return decide
