"""Flow cell / pore activity model (paper Figure 20).

The paper's wet-lab experiment splits a flow cell's channels into a control
group and a Read Until group, sequences for a while, then washes the flow
cell with nuclease and re-multiplexes (rapidly alternating the pore bias
voltage). Figure 20 shows that after the wash both groups recover to the same
number of active channels — i.e. Read Until's voltage reversals do not damage
pores any faster than normal sequencing.

:class:`FlowCell` reproduces that behaviour with a per-channel lifetime model:
channels become temporarily blocked at a rate proportional to how much
material passes through them, blockage clears on wash/re-mux events, and a
small permanent-death rate applies equally to both groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class WashEvent:
    """A nuclease wash + re-multiplexing at ``time_hours``."""

    time_hours: float
    recovery_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.time_hours < 0:
            raise ValueError("time_hours must be non-negative")
        if not 0.0 <= self.recovery_fraction <= 1.0:
            raise ValueError("recovery_fraction must be in [0, 1]")


@dataclass
class FlowCellConfig:
    """Parameters of the pore activity model."""

    n_channels: int = 512
    blockage_rate_per_hour: float = 0.10
    permanent_death_rate_per_hour: float = 0.01
    read_until_extra_wear: float = 0.0
    time_step_hours: float = 0.25

    def __post_init__(self) -> None:
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")
        for name in ("blockage_rate_per_hour", "permanent_death_rate_per_hour", "read_until_extra_wear"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.time_step_hours <= 0:
            raise ValueError("time_step_hours must be positive")


@dataclass
class FlowCellTrace:
    """Active-channel counts over time for one channel group."""

    label: str
    times_hours: np.ndarray
    active_channels: np.ndarray

    def at(self, time_hours: float) -> int:
        """Active channels at the time step closest to ``time_hours``."""
        index = int(np.argmin(np.abs(self.times_hours - time_hours)))
        return int(self.active_channels[index])

    @property
    def final_active(self) -> int:
        return int(self.active_channels[-1])


class FlowCell:
    """Simulate pore activity for a control group and a Read Until group."""

    def __init__(self, config: Optional[FlowCellConfig] = None, seed: Optional[int] = None) -> None:
        self.config = config if config is not None else FlowCellConfig()
        self._rng = np.random.default_rng(seed)

    def simulate(
        self,
        duration_hours: float,
        washes: Sequence[WashEvent] = (),
        read_until_fraction: float = 0.5,
    ) -> Dict[str, FlowCellTrace]:
        """Simulate ``duration_hours`` of sequencing.

        Half the channels (by default) run Read Until, half are controls.
        Returns one trace per group keyed ``"control"`` / ``"read_until"``.
        """
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if not 0.0 < read_until_fraction < 1.0:
            raise ValueError("read_until_fraction must be strictly between 0 and 1")
        config = self.config
        n_read_until = int(round(config.n_channels * read_until_fraction))
        n_control = config.n_channels - n_read_until
        groups = {
            "control": {"total": n_control, "wear": config.blockage_rate_per_hour},
            "read_until": {
                "total": n_read_until,
                "wear": config.blockage_rate_per_hour * (1.0 + config.read_until_extra_wear),
            },
        }

        n_steps = int(np.ceil(duration_hours / config.time_step_hours)) + 1
        times = np.arange(n_steps) * config.time_step_hours
        wash_steps = {
            int(round(event.time_hours / config.time_step_hours)): event for event in washes
        }

        traces: Dict[str, FlowCellTrace] = {}
        for label, group in groups.items():
            blocked = 0
            dead = 0
            total = group["total"]
            active_series = np.zeros(n_steps, dtype=np.int64)
            for step in range(n_steps):
                if step in wash_steps:
                    event = wash_steps[step]
                    recovered = int(round(blocked * event.recovery_fraction))
                    blocked -= recovered
                active = total - blocked - dead
                active_series[step] = max(active, 0)
                # Transitions over the next step.
                newly_blocked = self._rng.binomial(
                    max(active, 0), min(group["wear"] * config.time_step_hours, 1.0)
                )
                newly_dead = self._rng.binomial(
                    max(active, 0),
                    min(config.permanent_death_rate_per_hour * config.time_step_hours, 1.0),
                )
                blocked += int(newly_blocked)
                dead += int(newly_dead)
            traces[label] = FlowCellTrace(label=label, times_hours=times, active_channels=active_series)
        return traces

    def wash_recovery_gap(
        self,
        duration_hours: float = 12.0,
        wash_time_hours: float = 6.0,
        read_until_fraction: float = 0.5,
    ) -> Dict[str, float]:
        """Summarize Figure 20: relative active-channel gap before and after a wash.

        The reported gap is ``(control - read_until) / control`` channels per
        group-size-normalized channel count; the paper's finding is that this
        gap closes after the wash.
        """
        wash = WashEvent(time_hours=wash_time_hours)
        traces = self.simulate(duration_hours, washes=[wash], read_until_fraction=read_until_fraction)
        control = traces["control"]
        read_until = traces["read_until"]
        control_total = max(int(control.active_channels[0]), 1)
        read_until_total = max(int(read_until.active_channels[0]), 1)

        def normalized_gap(time_hours: float) -> float:
            control_frac = control.at(time_hours) / control_total
            read_until_frac = read_until.at(time_hours) / read_until_total
            return float(control_frac - read_until_frac)

        return {
            "gap_before_wash": normalized_gap(wash_time_hours - self.config.time_step_hours),
            "gap_after_wash": normalized_gap(duration_hours),
            "control_final_fraction": control.final_active / control_total,
            "read_until_final_fraction": read_until.final_active / read_until_total,
        }
