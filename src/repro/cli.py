"""Command-line interface for the SquiggleFilter reproduction.

Six subcommands cover the library's main workflows without writing Python:

* ``simulate-specimen`` — synthesize a target + background specimen and save
  the genomes (FASTA) and raw reads (FAST5-like ``.npz``).
* ``build-reference``   — print reference-squiggle statistics for a genome
  (buffer footprint, whether it fits the accelerator).
* ``classify``          — calibrate a SquiggleFilter on a simulated specimen
  and report classification metrics for held-out reads.
* ``runtime-model``     — evaluate the analytical Read Until runtime model at
  a given operating point.
* ``read-until``        — run a chunk-driven Read Until session end to end
  with any registered streaming classifier (``--classifier`` picks one from
  :func:`repro.pipeline.api.available_classifiers`). The run is described by
  a :class:`repro.runtime.RunConfig` — load one with ``--config run.json``
  (``.yaml`` works when PyYAML is installed) and/or override its fields with
  explicit flags (flags win): ``--batch`` switches onto the batched
  wavefront engine, ``--backend`` (choices generated from
  :func:`repro.batch.available_backends`, with ``--workers N`` for the
  multi-process backends and ``--tile-columns`` for the in-process/device
  ones) picks the execution backend, ``--prune`` (with ``--prune-margin``)
  turns on the early-abandoning sDTW pruning layer (decisions stay
  bit-identical), ``--lb-cascade`` (with ``--lb-level``) adds the
  lower-bound lane gate on top of it, and ``--target-panel N`` screens N
  synthesized viral targets at once through one
  :class:`~repro.core.panel.TargetPanel`, reporting per-target accept
  counts. The squigglefilter-family session itself is driven through
  :func:`repro.runtime.open_session` — the same code path the examples and
  benchmarks use.
* ``config-dump``       — print the fully resolved :class:`RunConfig`
  (file + flag overlay) as JSON, the reproducibility record of a run.
  ``--resolve`` additionally runs the tuner when the config says
  ``backend: "auto"``, so the printed JSON pins the tuned backend — ready
  to commit as a reproducible run config.
* ``tune``              — run the :mod:`repro.tune` calibration probes for
  a workload shape (config file and/or flags), print the probe table and
  the chosen point, and warm the persistent tuning cache so later
  ``backend="auto"`` runs resolve instantly.
* ``serve``             — run the multi-tenant classification service
  (:mod:`repro.serve`): tenants create sessions over HTTP (each a named
  ``RunConfig``, optionally overlaid on ``--config`` as the server's
  default template), rounds multiplex over a shared bounded backend pool
  with 429/Retry-After backpressure, ``/health`` + Prometheus ``/metrics``
  are exposed, and SIGTERM drains gracefully.
* ``trace``             — inspect a Chrome trace-event JSON file written by
  ``read-until --trace out.json`` (or ``RunConfig.trace_path``): validates
  the shape and prints the per-phase self-time table sorted hottest first —
  the terminal-only view for hosts without a browser (load the same file in
  https://ui.perfetto.dev or ``chrome://tracing`` for the timeline).

The CLI is intentionally thin: it parses arguments, calls the same public API
the examples use, and prints human-readable reports via
:mod:`repro.analysis.report`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.metrics import confusion_from_labels
from repro.analysis.report import format_table
from repro.core.filter import MultiStageSquiggleFilter, SquiggleFilter
from repro.core.panel import TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.core.thresholds import choose_threshold
from repro.genomes.sequences import random_genome
from repro.io.fast5 import Fast5Read, Fast5Store
from repro.io.fasta import FastaRecord, read_fasta, write_fasta
from repro.batch import available_backends
from repro.pipeline.api import available_classifiers, build_pipeline, create_classifier
from repro.pipeline.runtime_model import ReadUntilModelConfig, sequencing_runtime_s
from repro.pore_model.kmer_model import KmerModel
from repro.runtime import RunConfig, load_config_mapping, open_session
from repro.sequencer.reads import ReadGenerator, ReadLengthModel, SpecimenMixture


def _add_run_config_arguments(parser: argparse.ArgumentParser) -> None:
    """The RunConfig-shaped flags shared by ``read-until`` and ``config-dump``.

    Every flag defaults to ``None`` ("not given") so resolution order is
    explicit flag > config file > built-in default — what
    :func:`_resolve_run_config` implements.
    """
    parser.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="load a RunConfig from this JSON (or, with PyYAML installed, "
        "YAML) file; explicit flags override the file's values",
    )
    parser.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=None,
        help="drive the session through the batched wavefront engine: one "
        "vectorized sDTW advance across all undecided channels per chunk "
        "round (squigglefilter classifier only)",
    )
    parser.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="force the per-read scalar classification path even for a "
        "batch-capable classifier (default: auto)",
    )
    parser.add_argument(
        "--n-channels",
        type=int,
        default=None,
        help="concurrently sequencing channels to simulate (batching pays "
        "off as this grows; default: 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", *available_backends()),
        default=None,
        help="execution backend for the batched wavefront engine (choices "
        "come straight from the backend registry, plus 'auto' to let the "
        "repro.tune probes pick the backend/workers/tile point for this "
        "host and workload shape): 'numpy' advances all "
        "lanes in-process, 'sharded' stripes lanes across a worker-process "
        "pool, 'colsharded' stripes reference columns across the pool for "
        "genome-scale references, 'gpu' keeps the state in device memory "
        "via CuPy/Torch (implies the batch classifier; decisions are "
        "identical whichever backend runs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the multi-process backends (requires "
        "--backend sharded or colsharded; default: one per spare core, "
        "capped at 8)",
    )
    parser.add_argument(
        "--tile-columns",
        type=int,
        default=None,
        help="column tile width for the in-process/device backends "
        "(cache-sized or device-memory micro-batched advance; exact "
        "results either way)",
    )
    parser.add_argument(
        "--prune",
        dest="prune",
        action="store_true",
        default=None,
        help="enable the sDTW pruning layer (per-lane early abandoning + "
        "active-column intervals); accept/eject decisions stay "
        "bit-identical to brute force on every backend while only "
        "still-viable column spans advance (implies the batch classifier)",
    )
    parser.add_argument(
        "--prune-margin",
        dest="prune_margin",
        type=float,
        default=None,
        metavar="COST",
        help="widen the pruning exactness window: every reported cost "
        "within this margin of the eject threshold stays bit-exact "
        "(default: 0, the decisions-only guarantee)",
    )
    parser.add_argument(
        "--lb-cascade",
        dest="lb_cascade",
        action="store_true",
        default=None,
        help="enable the lower-bound lane gate on top of --prune (requires "
        "it): cascading LB_Kim/LB_Keogh-style bounds let whole lanes skip "
        "their wavefront advance before dispatch once no continuation "
        "could decide differently (decisions stay bit-identical)",
    )
    parser.add_argument(
        "--lb-level",
        dest="lb_level",
        type=int,
        choices=(1, 2),
        default=None,
        help="deepest lower-bound cascade rung: 1 = the O(1) extrema bound "
        "only, 2 = additionally the O(chunk) per-target envelope bound "
        "(default: 2)",
    )
    parser.add_argument(
        "--prefix-samples",
        type=int,
        default=None,
        help="signal prefix examined before the decision (default: 1000)",
    )
    parser.add_argument("--chunk-samples", type=int, default=None)
    parser.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        metavar="PATH",
        help="record session/engine/backend spans (repro.obs) and write a "
        "Chrome trace-event / Perfetto JSON file here when the session "
        "closes; inspect it with `repro trace PATH` or load it in "
        "https://ui.perfetto.dev (decisions are identical traced or not)",
    )


def _resolve_run_config(args: argparse.Namespace) -> RunConfig:
    """Resolve the run configuration: flag > config file > CLI default."""
    data: Dict[str, Any] = dict(load_config_mapping(args.config)) if args.config else {}
    overrides = {
        "backend": args.backend,
        "workers": args.workers,
        "tile_columns": args.tile_columns,
        "batch": args.batch,
        "n_channels": args.n_channels,
        "prefix_samples": args.prefix_samples,
        "chunk_samples": args.chunk_samples,
        "trace_path": args.trace_path,
        "prune": args.prune,
        "prune_margin": args.prune_margin,
        "lb_cascade": args.lb_cascade,
        "lb_level": args.lb_level,
    }
    for key, value in overrides.items():
        if value is not None:
            data[key] = value
    data.setdefault("prefix_samples", 1000)
    return RunConfig.from_dict(data)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="squigglefilter-repro",
        description="SquiggleFilter reproduction command-line tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate-specimen", help="synthesize genomes and raw reads for a specimen"
    )
    simulate.add_argument("--target-length", type=int, default=3000)
    simulate.add_argument("--background-length", type=int, default=20000)
    simulate.add_argument("--viral-fraction", type=float, default=0.01)
    simulate.add_argument("--n-reads", type=int, default=50)
    simulate.add_argument("--mean-read-bases", type=int, default=400)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--fasta-out", default=None, help="write genomes to this FASTA file")
    simulate.add_argument("--reads-out", default=None, help="write raw reads to this .npz store")

    reference = subparsers.add_parser(
        "build-reference", help="report reference-squiggle statistics for a genome"
    )
    reference.add_argument("--fasta", default=None, help="FASTA file with the target genome")
    reference.add_argument("--length", type=int, default=30000, help="synthesize a genome instead")
    reference.add_argument("--seed", type=int, default=1)
    reference.add_argument("--single-strand", action="store_true")

    classify = subparsers.add_parser(
        "classify", help="calibrate a filter on a simulated specimen and report accuracy"
    )
    classify.add_argument("--target-length", type=int, default=2400)
    classify.add_argument("--background-length", type=int, default=16000)
    classify.add_argument("--reads-per-class", type=int, default=20)
    classify.add_argument("--prefix-samples", type=int, default=1000)
    classify.add_argument("--seed", type=int, default=11)

    read_until = subparsers.add_parser(
        "read-until",
        help="stream a simulated specimen through the chunk-driven Read Until pipeline",
    )
    read_until.add_argument(
        "--classifier",
        choices=available_classifiers(),
        default="squigglefilter",
        help="registered streaming classifier to drive the session with",
    )
    _add_run_config_arguments(read_until)
    read_until.add_argument(
        "--target-panel",
        type=int,
        default=None,
        metavar="N",
        help="screen N synthesized viral targets at once through one "
        "TargetPanel (lengths staggered around --target-length); the "
        "session classifies every read against all members in one "
        "wavefront and reports per-target accepts (squigglefilter "
        "family only; implies the batch classifier)",
    )
    read_until.add_argument("--target-length", type=int, default=2400)
    read_until.add_argument("--background-length", type=int, default=16000)
    read_until.add_argument("--viral-fraction", type=float, default=0.05)
    read_until.add_argument("--n-reads", type=int, default=60)
    read_until.add_argument("--calibration-reads-per-class", type=int, default=15)
    read_until.add_argument(
        "--stage-prefixes",
        type=int,
        nargs="+",
        default=[500, 1000],
        help="stage decision points in samples (multistage classifier only)",
    )
    read_until.add_argument("--seed", type=int, default=17)

    config_dump = subparsers.add_parser(
        "config-dump",
        help="print the resolved RunConfig (config file + flag overrides) as "
        "JSON — the reproducibility record of a read-until invocation",
    )
    _add_run_config_arguments(config_dump)
    config_dump.add_argument(
        "--resolve",
        action="store_true",
        help="with backend 'auto', run the repro.tune probes (or hit the "
        "tuning cache) and print the config with the tuned "
        "backend/workers/tile_columns pinned — ready to commit",
    )

    tune = subparsers.add_parser(
        "tune",
        help="run the repro.tune calibration probes for a workload shape, "
        "print the probe table and chosen point, and warm the persistent "
        "tuning cache (backend='auto' runs then resolve instantly)",
    )
    _add_run_config_arguments(tune)
    tune.add_argument(
        "--target-length",
        type=int,
        default=2400,
        help="bases of the synthesized target genome when the config names "
        "no genome/targets (sizes the probed reference; default: 2400)",
    )
    tune.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="probe wall-clock budget (overrides the config's tune_budget_s; "
        "the first probe always completes)",
    )
    tune.add_argument(
        "--ignore-cache",
        action="store_true",
        help="probe even when the cache already holds a decision for this "
        "(host, shape) key; the fresh verdict still overwrites the entry",
    )
    tune.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete the persistent tuning cache file and exit",
    )
    tune.add_argument("--seed", type=int, default=17)

    serve = subparsers.add_parser(
        "serve",
        help="run the multi-tenant async classification service "
        "(repro.serve): HTTP sessions over a shared bounded backend pool "
        "with /health, Prometheus /metrics and graceful draining",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8093)
    serve.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="RunConfig file used as the default session template; tenant "
        "configs overlay it field by field (validated at startup)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=2,
        help="execution slots in the shared backend pool: at most this many "
        "classification rounds advance at once (default: 2)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="rounds allowed to wait for a slot before the service sheds "
        "load with 429 + Retry-After (default: 32)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=256,
        help="open-session admission limit (default: 256)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="validate a Chrome trace-event JSON file (written by "
        "`read-until --trace` or RunConfig.trace_path) and print the "
        "per-phase self-time table, hottest phase first",
    )
    trace.add_argument("trace_file", metavar="FILE", help="trace JSON file to inspect")
    trace.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N hottest phases (default: all)",
    )

    runtime = subparsers.add_parser(
        "runtime-model", help="evaluate the analytical Read Until runtime model"
    )
    runtime.add_argument("--genome-length", type=int, default=30000)
    runtime.add_argument("--coverage", type=float, default=30.0)
    runtime.add_argument("--viral-fraction", type=float, default=0.01)
    runtime.add_argument("--recall", type=float, default=0.95)
    runtime.add_argument("--false-positive-rate", type=float, default=0.02)
    runtime.add_argument("--decision-latency-ms", type=float, default=0.043)
    runtime.add_argument("--mean-target-read-bases", type=float, default=4000.0)
    runtime.add_argument("--mean-background-read-bases", type=float, default=8000.0)
    return parser


# ------------------------------------------------------------------ commands
def _command_simulate(args: argparse.Namespace) -> int:
    kmer_model = KmerModel()
    target = random_genome(args.target_length, seed=args.seed)
    background = random_genome(args.background_length, seed=args.seed + 1)
    mixture = SpecimenMixture.two_component(
        "target", target, "background", background, args.viral_fraction
    )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=args.mean_read_bases),
        seed=args.seed + 2,
    )
    reads = generator.generate(args.n_reads)
    n_target = sum(1 for read in reads if read.is_target)
    print(
        f"simulated {len(reads)} reads ({n_target} target, {len(reads) - n_target} background) "
        f"from a {args.viral_fraction:.2%} specimen"
    )
    if args.fasta_out:
        write_fasta(
            args.fasta_out,
            [
                FastaRecord(name="target", sequence=target),
                FastaRecord(name="background", sequence=background),
            ],
        )
        print(f"wrote genomes to {args.fasta_out}")
    if args.reads_out:
        store = Fast5Store()
        for read in reads:
            store.add(
                Fast5Read.from_picoamps(
                    read.read_id,
                    read.signal_pa,
                    channel=read.channel,
                    metadata={"source": read.source, "is_target": str(read.is_target)},
                )
            )
        store.save(args.reads_out)
        print(f"wrote {len(store)} raw reads to {args.reads_out}")
    return 0


def _command_build_reference(args: argparse.Namespace) -> int:
    if args.fasta:
        records = read_fasta(args.fasta)
        if not records:
            print("FASTA file contains no records", file=sys.stderr)
            return 1
        genome = records[0].sequence
        name = records[0].name
    else:
        genome = random_genome(args.length, seed=args.seed)
        name = f"synthetic_{args.length}bp"
    reference = ReferenceSquiggle.from_genome(
        genome, include_reverse_complement=not args.single_strand
    )
    rows = [
        {"property": "genome", "value": name},
        {"property": "genome_length_bases", "value": len(genome)},
        {"property": "reference_positions", "value": reference.n_positions},
        {"property": "buffer_kb", "value": reference.buffer_bytes() / 1024},
        {"property": "fits_100kb_buffer", "value": reference.fits_buffer()},
        {"property": "strands", "value": 1 if args.single_strand else 2},
    ]
    print(format_table(rows))
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    kmer_model = KmerModel()
    target = random_genome(args.target_length, seed=args.seed)
    background = random_genome(args.background_length, seed=args.seed + 1)
    mixture = SpecimenMixture.two_component("target", target, "background", background, 0.5)
    generator = ReadGenerator(mixture, kmer_model=kmer_model, seed=args.seed + 2)
    calibration = generator.generate_balanced(args.reads_per_class)
    evaluation = generator.generate_balanced(args.reads_per_class)

    reference = ReferenceSquiggle.from_genome(target, kmer_model=kmer_model)
    squiggle_filter = SquiggleFilter(reference, prefix_samples=args.prefix_samples)
    threshold = squiggle_filter.calibrate(
        [read.signal_pa for read in calibration if read.is_target],
        [read.signal_pa for read in calibration if not read.is_target],
    )
    predictions = [squiggle_filter.classify(read.signal_pa).accept for read in evaluation]
    confusion = confusion_from_labels([read.is_target for read in evaluation], predictions)
    rows = [
        {"metric": "threshold", "value": threshold},
        {"metric": "recall", "value": confusion.recall},
        {"metric": "precision", "value": confusion.precision},
        {"metric": "f1", "value": confusion.f1},
        {"metric": "false_positive_rate", "value": confusion.false_positive_rate},
        {"metric": "evaluated_reads", "value": confusion.total},
    ]
    print(format_table(rows))
    return 0


def _command_read_until(args: argparse.Namespace) -> int:
    # Workers-vs-backend (and every other cross-field) validation lives in
    # RunConfig so a config file naming the backend satisfies it too.
    try:
        run_config = _resolve_run_config(args)
    except (ValueError, RuntimeError, OSError) as error:
        print(f"invalid run configuration: {error}", file=sys.stderr)
        return 2

    kmer_model = KmerModel()
    background = random_genome(args.background_length, seed=args.seed + 1)
    panel_genomes = dict(run_config.targets) if run_config.targets is not None else None
    if args.target_panel:
        if args.target_panel < 2:
            print("--target-panel needs at least 2 targets", file=sys.stderr)
            return 2
        # Staggered lengths exercise ragged panel members deliberately.
        factors = (1.0, 0.6, 1.4, 0.8, 1.2, 0.7, 1.3, 0.9)
        panel_genomes = {
            f"virus{index + 1}": random_genome(
                max(300, int(args.target_length * factors[index % len(factors)])),
                seed=args.seed + 101 * (index + 1),
            )
            for index in range(args.target_panel)
        }
    if panel_genomes is not None:
        per_member = args.viral_fraction / len(panel_genomes)
        mixture = SpecimenMixture(
            genomes={**panel_genomes, "background": background},
            fractions={
                **{name: per_member for name in panel_genomes},
                "background": 1.0 - args.viral_fraction,
            },
            target_names=tuple(panel_genomes),
        )
        target = next(iter(panel_genomes.values()))
    else:
        # A config file naming a genome pins the target; otherwise synthesize.
        target = (
            run_config.genome
            if run_config.genome is not None
            else random_genome(args.target_length, seed=args.seed)
        )
        mixture = SpecimenMixture.two_component(
            "target", target, "background", background, args.viral_fraction
        )
    generator = ReadGenerator(
        mixture,
        kmer_model=kmer_model,
        length_model=ReadLengthModel(mean_bases=500, sigma=0.2, min_bases=350, max_bases=900),
        seed=args.seed + 2,
    )
    calibration = generator.generate_balanced(args.calibration_reads_per_class)
    target_signals = [read.signal_pa for read in calibration if read.is_target]
    background_signals = [read.signal_pa for read in calibration if not read.is_target]

    classifier_name = args.classifier
    squigglefilter_family = ("squigglefilter", "batch_squigglefilter")
    for flag, given in (
        ("--batch", args.batch),
        ("--backend", args.backend),
        ("--target-panel", args.target_panel),
        ("--config", args.config),
        ("--trace", args.trace_path),
        ("--prune", args.prune),
        ("--prune-margin", args.prune_margin),
        ("--lb-cascade", args.lb_cascade),
        ("--lb-level", args.lb_level),
    ):
        if given and args.classifier not in squigglefilter_family:
            print(
                f"{flag} requires the squigglefilter classifier "
                f"(got {args.classifier!r})",
                file=sys.stderr,
            )
            return 2
    use_batch_classifier = args.classifier == "batch_squigglefilter" or (
        args.classifier == "squigglefilter"
        and (
            run_config.batch is True
            or args.backend is not None
            or args.config is not None
            or panel_genomes is not None
            or run_config.tracing_enabled
            or run_config.prune
        )
    )
    reads = generator.generate(args.n_reads)

    if use_batch_classifier:
        # The unified runtime path: one RunConfig describes the session, and
        # open_session owns calibration geometry, lazy backend spawn and
        # teardown. The threshold is calibrated on the same chunk geometry
        # the session will stream at (the classifier normalizes per chunk).
        classifier_name = "batch_squigglefilter"
        if panel_genomes is not None:
            reference = TargetPanel.from_genomes(
                panel_genomes,
                kmer_model=kmer_model,
                include_reverse_complement=run_config.include_reverse_complement,
            )
        else:
            reference = ReferenceSquiggle.from_genome(
                target,
                kmer_model=kmer_model,
                include_reverse_complement=run_config.include_reverse_complement,
            )
        session_config = run_config.with_(genome=None, targets=None, reference=reference)
        with open_session(session_config) as session:
            if session.threshold is None:
                session.calibrate(target_signals, background_signals)
            result = session.run(reads, target_genome=target)
    else:
        if args.classifier == "squigglefilter":
            reference = ReferenceSquiggle.from_genome(
                target,
                kmer_model=kmer_model,
                include_reverse_complement=run_config.include_reverse_complement,
            )
            helper = SquiggleFilter(reference, prefix_samples=run_config.prefix_samples)
            threshold = choose_threshold(
                helper.cost_batch(target_signals, run_config.prefix_samples),
                helper.cost_batch(background_signals, run_config.prefix_samples),
            )
            params = {
                "reference": reference,
                "prefix_samples": run_config.prefix_samples,
                "threshold": threshold,
            }
        elif args.classifier == "multistage":
            reference = ReferenceSquiggle.from_genome(
                target,
                kmer_model=kmer_model,
                include_reverse_complement=run_config.include_reverse_complement,
            )
            calibrated = MultiStageSquiggleFilter.calibrated(
                reference,
                target_signals,
                background_signals,
                prefix_lengths=sorted(args.stage_prefixes),
            )
            params = {"reference": reference, "stages": calibrated.stages}
        else:  # basecall_align
            params = {"prefix_samples": run_config.prefix_samples, "seed": args.seed}

        pipeline = build_pipeline(
            {
                "classifier": {"name": classifier_name, "params": params},
                "target_genome": target,
                "prefix_samples": run_config.prefix_samples,
                "chunk_samples": run_config.chunk_samples,
                "n_channels": run_config.n_channels,
                "batch": run_config.batch,
                "assemble": False,
            }
        )
        try:
            result = pipeline.run(reads)
        finally:
            close = getattr(pipeline.classifier, "close", None)
            if close is not None:
                close()
    rows = [
        {"metric": "classifier", "value": classifier_name},
        {"metric": "reads_processed", "value": result.session.n_reads},
        {"metric": "reads_ejected", "value": result.session.n_ejected},
        {"metric": "recall", "value": result.recall},
        {"metric": "false_positive_rate", "value": result.false_positive_rate},
        {"metric": "decision_latency_ms", "value": result.decision_latency_s * 1e3},
        {"metric": "mean_background_samples", "value": result.session.mean_nontarget_sequenced_samples},
        {"metric": "pore_minutes", "value": result.runtime_s / 60.0},
    ]
    if result.streaming.get("batched"):
        rows.append({"metric": "backend", "value": result.streaming.get("backend", "numpy")})
        rows.append({"metric": "batch_rounds", "value": len(result.streaming["batch_occupancy"])})
        rows.append({"metric": "peak_batch_lanes", "value": result.streaming["peak_batch_lanes"]})
    if panel_genomes is not None:
        accepts = result.streaming.get("per_target_accepts", {})
        for name in panel_genomes:
            rows.append({"metric": f"accepts[{name}]", "value": accepts.get(name, 0)})
    print(format_table(rows))
    if use_batch_classifier and run_config.trace_path is not None:
        print(
            f"wrote trace to {run_config.trace_path} "
            f"(inspect: `repro trace {run_config.trace_path}`, or load in Perfetto)"
        )
    return 0


def _command_config_dump(args: argparse.Namespace) -> int:
    try:
        run_config = _resolve_run_config(args)
    except (ValueError, RuntimeError, OSError) as error:
        print(f"invalid run configuration: {error}", file=sys.stderr)
        return 2
    if args.resolve and run_config.backend == "auto":
        from repro.tune import resolve_auto

        run_config, decision = resolve_auto(run_config)
        print(
            f"resolved backend=auto -> {decision.backend} "
            f"({'tuning cache hit' if decision.cache_hit else f'{decision.n_probes} probes'})",
            file=sys.stderr,
        )
    print(run_config.to_json())
    return 0


def _command_tune(args: argparse.Namespace) -> int:
    from repro.tune import TuningCache, tune_config

    if args.clear_cache:
        cache = TuningCache()
        path = cache.path
        cache.clear()
        print(f"cleared tuning cache at {path}")
        return 0
    try:
        run_config = _resolve_run_config(args)
    except (ValueError, RuntimeError, OSError) as error:
        print(f"invalid run configuration: {error}", file=sys.stderr)
        return 2
    if (
        run_config.genome is None
        and run_config.targets is None
        and run_config.reference is None
    ):
        # No target named: probe against a synthesized genome of the
        # requested scale (the shape, not the sequence, is what tuning sees).
        run_config = run_config.with_(
            genome=random_genome(args.target_length, seed=args.seed)
        )
    changes: Dict[str, Any] = {}
    if args.budget is not None:
        changes["tune_budget_s"] = args.budget
    if args.ignore_cache:
        changes["tune"] = {**dict(run_config.tune or {}), "ignore_cache": True}
    if changes:
        run_config = run_config.with_(**changes)
    outcome = tune_config(run_config)
    decision = outcome.decision
    if decision.cache_hit:
        print(f"tuning cache hit for key {outcome.key}")
    else:
        print(
            f"probed {decision.n_probes} candidate(s) in {decision.probed_s:.3f}s "
            f"(budget {run_config.tune_budget_s:g}s) for key {outcome.key}"
        )
        print(format_table(list(outcome.table())))
    chosen = [
        {"property": "backend", "value": decision.backend},
        {"property": "workers", "value": decision.workers},
        {"property": "tile_columns", "value": decision.tile_columns},
        {"property": "prune", "value": decision.prune},
        {"property": "lb_cascade", "value": decision.lb_cascade},
        {"property": "cache_hit", "value": decision.cache_hit},
        {"property": "cache_path", "value": outcome.cache_path},
    ]
    print(format_table(chosen))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_forever

    default_config = None
    if args.config:
        try:
            default_config = dict(load_config_mapping(args.config))
            # Validate the template at startup: a bad default should fail
            # here with the field-naming message, not on the first tenant.
            RunConfig.from_dict(default_config)
        except (ValueError, RuntimeError, OSError) as error:
            print(f"invalid run configuration: {error}", file=sys.stderr)
            return 2
    return serve_forever(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        default_config=default_config,
        max_sessions=args.max_sessions,
    )


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import format_phase_table, load_trace, phase_table, validate_trace

    try:
        document = load_trace(args.trace_file)
        spans = validate_trace(document)
    except (OSError, ValueError) as error:
        print(f"invalid trace file: {error}", file=sys.stderr)
        return 2
    rows = phase_table(document)
    if args.top is not None:
        rows = rows[: max(args.top, 0)]
    tracks = {event["tid"] for event in spans}
    total_self_ms = sum(row["self_us"] for row in phase_table(document)) / 1000.0
    print(
        f"{args.trace_file}: {len(spans)} spans on {len(tracks)} track(s), "
        f"{total_self_ms:.3f} ms total self time"
    )
    print(format_phase_table(rows))
    return 0


def _command_runtime(args: argparse.Namespace) -> int:
    config = ReadUntilModelConfig(
        genome_length_bases=args.genome_length,
        coverage=args.coverage,
        viral_fraction=args.viral_fraction,
        mean_target_read_bases=args.mean_target_read_bases,
        mean_background_read_bases=args.mean_background_read_bases,
        decision_latency_s=args.decision_latency_ms / 1e3,
    )
    with_read_until = sequencing_runtime_s(
        config, recall=args.recall, false_positive_rate=args.false_positive_rate
    )
    control = sequencing_runtime_s(config, use_read_until=False)
    rows = [
        {"quantity": "control_runtime_minutes", "value": control / 60.0},
        {"quantity": "read_until_runtime_minutes", "value": with_read_until / 60.0},
        {"quantity": "speedup", "value": control / with_read_until if with_read_until else float("inf")},
        {"quantity": "recall", "value": args.recall},
        {"quantity": "false_positive_rate", "value": args.false_positive_rate},
    ]
    print(format_table(rows))
    return 0


_COMMANDS = {
    "simulate-specimen": _command_simulate,
    "build-reference": _command_build_reference,
    "classify": _command_classify,
    "read-until": _command_read_until,
    "config-dump": _command_config_dump,
    "tune": _command_tune,
    "serve": _command_serve,
    "trace": _command_trace,
    "runtime-model": _command_runtime,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
