"""Colinear chaining of minimizer anchors.

Chaining scores groups of anchors that lie on a consistent diagonal
(reference position minus query position roughly constant and increasing in
both coordinates). The best chain localizes the read on the reference and
its score drives the aligned/unaligned classification decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Anchor:
    """One seed match between query and reference."""

    query_position: int
    reference_position: int
    strand: str = "+"

    @property
    def diagonal(self) -> int:
        return self.reference_position - self.query_position


@dataclass
class Chain:
    """A colinear group of anchors."""

    anchors: List[Anchor]
    strand: str
    score: float

    @property
    def n_anchors(self) -> int:
        return len(self.anchors)

    @property
    def query_span(self) -> Tuple[int, int]:
        positions = [anchor.query_position for anchor in self.anchors]
        return min(positions), max(positions)

    @property
    def reference_span(self) -> Tuple[int, int]:
        positions = [anchor.reference_position for anchor in self.anchors]
        return min(positions), max(positions)

    @property
    def reference_start(self) -> int:
        return self.reference_span[0]


def chain_anchors(
    anchors: Sequence[Anchor],
    max_gap: int = 150,
    max_diagonal_drift: int = 50,
    anchor_score: float = 1.0,
) -> Optional[Chain]:
    """Find the best colinear chain among ``anchors``.

    A simple O(n^2) dynamic program (n is small after minimizer filtering):
    anchor ``j`` can extend anchor ``i`` when both coordinates advance, the
    gap is bounded, and the diagonals agree within ``max_diagonal_drift``.
    Chains are built per strand and the best-scoring one is returned, or
    ``None`` when there are no anchors.
    """
    if not anchors:
        return None
    best_chain: Optional[Chain] = None
    for strand in ("+", "-"):
        strand_anchors = sorted(
            (anchor for anchor in anchors if anchor.strand == strand),
            key=lambda anchor: (anchor.query_position, anchor.reference_position),
        )
        if not strand_anchors:
            continue
        n = len(strand_anchors)
        scores = [anchor_score] * n
        parents: List[Optional[int]] = [None] * n
        for j in range(n):
            current = strand_anchors[j]
            for i in range(j):
                previous = strand_anchors[i]
                query_gap = current.query_position - previous.query_position
                reference_gap = current.reference_position - previous.reference_position
                if query_gap <= 0 or reference_gap <= 0:
                    continue
                if query_gap > max_gap or reference_gap > max_gap:
                    continue
                if abs(current.diagonal - previous.diagonal) > max_diagonal_drift:
                    continue
                candidate = scores[i] + anchor_score
                if candidate > scores[j]:
                    scores[j] = candidate
                    parents[j] = i
        best_index = max(range(n), key=lambda idx: scores[idx])
        chain_members: List[Anchor] = []
        cursor: Optional[int] = best_index
        while cursor is not None:
            chain_members.append(strand_anchors[cursor])
            cursor = parents[cursor]
        chain_members.reverse()
        chain = Chain(anchors=chain_members, strand=strand, score=scores[best_index])
        if best_chain is None or chain.score > best_chain.score:
            best_chain = chain
    return best_chain
