"""Alignment substrate: minimizer seeding, chaining, banded extension, FM-index."""

from repro.align.aligner import Alignment, ReferenceAligner
from repro.align.chain import Anchor, Chain, chain_anchors
from repro.align.extend import banded_alignment
from repro.align.fm_index import FMIndex
from repro.align.minimizer import MinimizerIndex, minimizer_sketch

__all__ = [
    "Alignment",
    "Anchor",
    "Chain",
    "FMIndex",
    "MinimizerIndex",
    "ReferenceAligner",
    "banded_alignment",
    "chain_anchors",
    "minimizer_sketch",
]
