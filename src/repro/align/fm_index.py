"""FM-index over a DNA reference (substrate for the UNCALLED-like baseline).

UNCALLED (Kovaka et al. 2020) classifies raw reads by segmenting events,
converting them to candidate k-mers, and matching those k-mers against the
reference with an FM-index. This module implements the index: suffix array,
Burrows-Wheeler transform, occurrence table, and backward search.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.genomes.sequences import validate_sequence

_TERMINATOR = "$"


def build_suffix_array(text: str) -> List[int]:
    """Suffix array by prefix-doubling (O(n log^2 n)), adequate for <1 Mb genomes."""
    n = len(text)
    if n == 0:
        raise ValueError("cannot build a suffix array of an empty string")
    ranks = np.array([ord(c) for c in text], dtype=np.int64)
    suffix_array = np.arange(n, dtype=np.int64)
    temp = np.zeros(n, dtype=np.int64)
    k = 1
    while True:
        paired_rank = np.full(n, -1, dtype=np.int64)
        paired_rank[: n - k] = ranks[k:]
        order = np.lexsort((paired_rank, ranks))
        suffix_array = order
        temp[order[0]] = 0
        for i in range(1, n):
            previous, current = order[i - 1], order[i]
            same = ranks[previous] == ranks[current] and paired_rank[previous] == paired_rank[current]
            temp[current] = temp[previous] + (0 if same else 1)
        ranks = temp.copy()
        if ranks[suffix_array[-1]] == n - 1:
            break
        k *= 2
    return suffix_array.tolist()


class FMIndex:
    """FM-index supporting backward search (count and locate)."""

    def __init__(self, reference: str) -> None:
        sequence = validate_sequence(reference)
        if _TERMINATOR in sequence:
            raise ValueError("reference must not contain the terminator character")
        self.text = sequence + _TERMINATOR
        self.suffix_array = build_suffix_array(self.text)
        self.bwt = "".join(
            self.text[position - 1] if position > 0 else _TERMINATOR
            for position in self.suffix_array
        )
        self._build_tables()

    def _build_tables(self) -> None:
        alphabet = sorted(set(self.text))
        counts: Dict[str, int] = {symbol: 0 for symbol in alphabet}
        for symbol in self.text:
            counts[symbol] += 1
        # C[c]: number of characters strictly smaller than c.
        self.smaller_than: Dict[str, int] = {}
        running = 0
        for symbol in alphabet:
            self.smaller_than[symbol] = running
            running += counts[symbol]
        # Occurrence table sampled every position (genomes here are small).
        self.occurrences: Dict[str, np.ndarray] = {}
        bwt_array = np.frombuffer(self.bwt.encode("ascii"), dtype=np.uint8)
        for symbol in alphabet:
            matches = (bwt_array == ord(symbol)).astype(np.int64)
            self.occurrences[symbol] = np.concatenate([[0], np.cumsum(matches)])

    def __len__(self) -> int:
        return len(self.text) - 1

    def _occ(self, symbol: str, position: int) -> int:
        if symbol not in self.occurrences:
            return 0
        return int(self.occurrences[symbol][position])

    def backward_search(self, pattern: str) -> Tuple[int, int]:
        """Suffix-array interval [start, end) of suffixes prefixed by ``pattern``."""
        pattern = validate_sequence(pattern)
        start, end = 0, len(self.text)
        for symbol in reversed(pattern):
            if symbol not in self.smaller_than:
                return 0, 0
            start = self.smaller_than[symbol] + self._occ(symbol, start)
            end = self.smaller_than[symbol] + self._occ(symbol, end)
            if start >= end:
                return 0, 0
        return start, end

    def count(self, pattern: str) -> int:
        """Number of occurrences of ``pattern`` in the reference."""
        start, end = self.backward_search(pattern)
        return max(end - start, 0)

    def locate(self, pattern: str, limit: int = 100) -> List[int]:
        """Reference positions (0-based) where ``pattern`` occurs."""
        start, end = self.backward_search(pattern)
        positions = [self.suffix_array[i] for i in range(start, min(end, start + limit))]
        return sorted(positions)

    def contains(self, pattern: str) -> bool:
        return self.count(pattern) > 0
