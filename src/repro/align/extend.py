"""Banded global alignment used to refine a chained mapping.

After chaining places a read on the reference, a banded Needleman-Wunsch
alignment of the read against the spanned reference window yields per-base
matches (for the pileup/variant caller) and an identity estimate. The band is
centred on the chain diagonal, which keeps the computation linear in the read
length for the small indel rates nanopore basecalls exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

MATCH_SCORE = 2
MISMATCH_PENALTY = -2
GAP_PENALTY = -3


@dataclass
class BandedAlignmentResult:
    """Outcome of one banded alignment."""

    score: int
    identity: float
    aligned_pairs: List[Tuple[int, int]]
    query_aligned: int
    reference_aligned: int

    @property
    def n_matches(self) -> int:
        return int(round(self.identity * len(self.aligned_pairs))) if self.aligned_pairs else 0


def banded_alignment(query: str, reference: str, band: int = 32) -> BandedAlignmentResult:
    """Banded global alignment of ``query`` against ``reference``.

    Returns the alignment score, identity over aligned pairs and the list of
    (query index, reference index) aligned (match or mismatch) pairs.
    """
    if band <= 0:
        raise ValueError(f"band must be positive, got {band}")
    n, m = len(query), len(reference)
    if n == 0 or m == 0:
        raise ValueError("query and reference must be non-empty")

    negative_infinity = -(10**9)
    # score[i][j] stored densely; the band keeps |j - i*m/n| <= band + |m-n|.
    drift = abs(m - n) + band
    score = np.full((n + 1, m + 1), negative_infinity, dtype=np.int64)
    move = np.zeros((n + 1, m + 1), dtype=np.int8)  # 1=diag, 2=up(query gap), 3=left(ref gap)
    score[0, 0] = 0
    for j in range(1, min(drift, m) + 1):
        score[0, j] = j * GAP_PENALTY
        move[0, j] = 3
    for i in range(1, n + 1):
        centre = int(round(i * m / n))
        lo = max(1, centre - drift)
        hi = min(m, centre + drift)
        if i <= drift:
            score[i, 0] = i * GAP_PENALTY
            move[i, 0] = 2
        for j in range(lo, hi + 1):
            base_score = MATCH_SCORE if query[i - 1] == reference[j - 1] else MISMATCH_PENALTY
            diagonal = score[i - 1, j - 1] + base_score
            up = score[i - 1, j] + GAP_PENALTY
            left = score[i, j - 1] + GAP_PENALTY
            best = diagonal
            best_move = 1
            if up > best:
                best, best_move = up, 2
            if left > best:
                best, best_move = left, 3
            score[i, j] = best
            move[i, j] = best_move

    # Traceback from the best cell of the last row (reference overhang is free
    # to the right, which suits a window slightly larger than the read).
    end_j = int(np.argmax(score[n, :]))
    aligned_pairs: List[Tuple[int, int]] = []
    matches = 0
    i, j = n, end_j
    while i > 0 and j > 0:
        step = move[i, j]
        if step == 1:
            aligned_pairs.append((i - 1, j - 1))
            if query[i - 1] == reference[j - 1]:
                matches += 1
            i -= 1
            j -= 1
        elif step == 2:
            i -= 1
        elif step == 3:
            j -= 1
        else:
            break
    aligned_pairs.reverse()
    identity = matches / len(aligned_pairs) if aligned_pairs else 0.0
    return BandedAlignmentResult(
        score=int(score[n, end_j]),
        identity=float(identity),
        aligned_pairs=aligned_pairs,
        query_aligned=len({pair[0] for pair in aligned_pairs}),
        reference_aligned=len({pair[1] for pair in aligned_pairs}),
    )
