"""MiniMap2-like reference aligner: seed, chain, extend.

The baseline Read Until pipeline classifies a read as target when its
basecalled prefix aligns to the viral reference. :class:`ReferenceAligner`
provides that decision plus the placement information the assembly stage
needs (reference start, strand, identity, per-base aligned pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.align.chain import Anchor, Chain, chain_anchors
from repro.align.extend import BandedAlignmentResult, banded_alignment
from repro.align.minimizer import MinimizerIndex
from repro.genomes.sequences import reverse_complement, validate_sequence


@dataclass
class Alignment:
    """A read-to-reference mapping."""

    query_length: int
    reference_start: int
    reference_end: int
    strand: str
    chain_score: float
    n_anchors: int
    identity: float
    aligned_pairs: List[Tuple[int, int]]
    mapping_quality: float

    @property
    def reference_span(self) -> int:
        return self.reference_end - self.reference_start

    @property
    def is_confident(self) -> bool:
        """A conservative "good alignment" call used for Read Until decisions."""
        return self.mapping_quality >= 20.0


class ReferenceAligner:
    """Seed-chain-extend aligner against one reference genome."""

    def __init__(
        self,
        reference: str,
        k: int = 11,
        w: int = 5,
        min_chain_anchors: int = 3,
        band: int = 32,
    ) -> None:
        if min_chain_anchors < 1:
            raise ValueError("min_chain_anchors must be at least 1")
        self.reference = validate_sequence(reference)
        self.index = MinimizerIndex(self.reference, k=k, w=w)
        self.min_chain_anchors = min_chain_anchors
        self.band = band

    def map(self, query: str, refine: bool = True) -> Optional[Alignment]:
        """Map ``query`` to the reference; returns ``None`` when unmapped."""
        query = validate_sequence(query)
        if len(query) < self.index.k:
            return None
        hits = self.index.hits(query)
        if not hits:
            return None
        anchors = [
            Anchor(query_position=q, reference_position=r, strand=strand) for q, r, strand in hits
        ]
        chain = chain_anchors(anchors)
        if chain is None or chain.n_anchors < self.min_chain_anchors:
            return None
        return self._build_alignment(query, chain, refine)

    def classify(self, query: str, min_mapping_quality: float = 20.0) -> bool:
        """Read Until decision: does the basecalled prefix align to the target?"""
        alignment = self.map(query, refine=False)
        if alignment is None:
            return False
        return alignment.mapping_quality >= min_mapping_quality

    # ------------------------------------------------------------------ internals
    def _build_alignment(self, query: str, chain: Chain, refine: bool) -> Alignment:
        reference_length = self.index.reference_length
        ref_lo, ref_hi = chain.reference_span
        query_lo, query_hi = chain.query_span

        if chain.strand == "-":
            # Anchor positions on the minus strand are positions in the
            # reverse-complemented reference; convert to forward coordinates.
            forward_hi = reference_length - ref_lo
            forward_lo = reference_length - (ref_hi + self.index.k)
            ref_lo, ref_hi = max(forward_lo, 0), min(forward_hi, reference_length)

        # Pad the window by the unanchored flanks of the query.
        left_pad = query_lo + self.band
        right_pad = (len(query) - query_hi) + self.band
        window_start = max(ref_lo - left_pad, 0)
        window_end = min(ref_hi + self.index.k + right_pad, reference_length)

        identity = 0.0
        aligned_pairs: List[Tuple[int, int]] = []
        if refine and window_end - window_start >= self.index.k:
            window = self.reference[window_start:window_end]
            oriented_query = query if chain.strand == "+" else reverse_complement(query)
            result: BandedAlignmentResult = banded_alignment(oriented_query, window, band=self.band)
            identity = result.identity
            aligned_pairs = [
                (query_index, reference_index + window_start)
                for query_index, reference_index in result.aligned_pairs
            ]

        # Mapping quality heuristic: grows with chain size and the fraction of
        # the query covered by the chain span.
        query_coverage = (query_hi - query_lo + self.index.k) / max(len(query), 1)
        mapping_quality = min(60.0, 10.0 * chain.n_anchors * max(query_coverage, 0.1))
        return Alignment(
            query_length=len(query),
            reference_start=int(window_start if aligned_pairs else ref_lo),
            reference_end=int(window_end if aligned_pairs else ref_hi + self.index.k),
            strand=chain.strand,
            chain_score=chain.score,
            n_anchors=chain.n_anchors,
            identity=identity,
            aligned_pairs=aligned_pairs,
            mapping_quality=mapping_quality,
        )
