"""Minimizer sketching and indexing (the seeding stage of a MiniMap2-like aligner).

A (k, w) minimizer sketch keeps, for every window of ``w`` consecutive
k-mers, the one with the smallest hash. Matching minimizers between a read
and the reference are the anchors that seed chaining. This is the same
seeding strategy MiniMap2 uses; the hash is an invertible integer mix so
that minimizer selection is pseudo-random rather than biased toward
low-complexity sequence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.genomes.sequences import reverse_complement, validate_sequence

_BASE_CODES = {"A": 0, "C": 1, "G": 2, "T": 3}
_MASK64 = (1 << 64) - 1


def _mix_hash(value: int) -> int:
    """64-bit invertible integer hash (same construction MiniMap2 uses)."""
    value = (~value + (value << 21)) & _MASK64
    value = value ^ (value >> 24)
    value = (value + (value << 3) + (value << 8)) & _MASK64
    value = value ^ (value >> 14)
    value = (value + (value << 2) + (value << 4)) & _MASK64
    value = value ^ (value >> 28)
    value = (value + (value << 31)) & _MASK64
    return value


def encode_kmers(sequence: str, k: int) -> List[int]:
    """Rolling 2-bit encoding of every k-mer; ``-1`` marks k-mers containing N."""
    if k <= 0 or k > 28:
        raise ValueError(f"k must be in [1, 28], got {k}")
    upper = validate_sequence(sequence)
    if len(upper) < k:
        return []
    codes: List[int] = []
    value = 0
    valid = 0
    mask = (1 << (2 * k)) - 1
    for index, base in enumerate(upper):
        if base == "N":
            value = 0
            valid = 0
        else:
            value = ((value << 2) | _BASE_CODES[base]) & mask
            valid += 1
        if index >= k - 1:
            codes.append(value if valid >= k else -1)
    return codes


@dataclass(frozen=True)
class Minimizer:
    """One selected minimizer: its hash and the k-mer start position."""

    position: int
    hash_value: int


def minimizer_sketch(sequence: str, k: int = 11, w: int = 5) -> List[Minimizer]:
    """The (k, w) minimizer sketch of ``sequence``."""
    if w <= 0:
        raise ValueError(f"w must be positive, got {w}")
    codes = encode_kmers(sequence, k)
    if not codes:
        return []
    hashes = [_mix_hash(code) if code >= 0 else None for code in codes]
    sketch: List[Minimizer] = []
    last_added = -1
    for window_start in range(0, max(len(hashes) - w + 1, 1)):
        window = [
            (hashes[position], position)
            for position in range(window_start, min(window_start + w, len(hashes)))
            if hashes[position] is not None
        ]
        if not window:
            continue
        best_hash, best_position = min(window)
        if best_position != last_added:
            sketch.append(Minimizer(position=best_position, hash_value=best_hash))
            last_added = best_position
    return sketch


class MinimizerIndex:
    """Minimizer index over a reference genome (both strands)."""

    def __init__(self, reference: str, k: int = 11, w: int = 5) -> None:
        self.reference = validate_sequence(reference)
        self.k = k
        self.w = w
        self._index: Dict[int, List[Tuple[int, str]]] = defaultdict(list)
        for strand, sequence in (("+", self.reference), ("-", reverse_complement(self.reference))):
            for minimizer in minimizer_sketch(sequence, k=k, w=w):
                self._index[minimizer.hash_value].append((minimizer.position, strand))

    def __len__(self) -> int:
        return len(self._index)

    @property
    def reference_length(self) -> int:
        return len(self.reference)

    def lookup(self, hash_value: int) -> List[Tuple[int, str]]:
        """All (reference position, strand) occurrences of one minimizer hash."""
        return self._index.get(hash_value, [])

    def hits(self, query: str, max_occurrences: int = 64) -> List[Tuple[int, int, str]]:
        """Anchor hits for a query: (query position, reference position, strand).

        Minimizers occurring more than ``max_occurrences`` times in the
        reference are skipped (repeat masking, as in MiniMap2).
        """
        anchors: List[Tuple[int, int, str]] = []
        for minimizer in minimizer_sketch(query, k=self.k, w=self.w):
            occurrences = self.lookup(minimizer.hash_value)
            if not occurrences or len(occurrences) > max_occurrences:
                continue
            for reference_position, strand in occurrences:
                anchors.append((minimizer.position, reference_position, strand))
        return anchors
