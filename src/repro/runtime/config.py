"""The declarative run configuration every entry point shares.

Before this module existed the knobs of a classification run were scattered:
``SquiggleFilter.classify_batch(backend=...)``,
``BatchSquiggleClassifier(backend=, backend_options=)``, ``build_pipeline``
spec keys and CLI flags all named the same things differently.
:class:`RunConfig` is the single declarative description — what to align
against, which kernel configuration, which thresholds, which execution
backend with how many workers, how many channels — that
:func:`repro.runtime.open_session`, :func:`repro.pipeline.api.build_pipeline`,
the CLI (``repro read-until --config run.json`` / ``repro config-dump``) and
the benchmarks all construct and consume.

A config is validated at construction (every error names the offending
field), serializable (``to_dict``/``from_dict``, JSON always, YAML when
PyYAML is importable), and immutable — derive variants with :meth:`with_`.
The only non-serializable escape hatch is ``reference``: a prebuilt
:class:`~repro.core.reference.ReferenceSquiggle` or
:class:`~repro.core.panel.TargetPanel` attached in code (``to_dict`` refuses
it so a dumped config never silently loses its reference).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.config import SDTWConfig

__all__ = ["RunConfig", "load_config_mapping"]

# Which built-in execution backends consume which sizing option; options for
# backends outside these sets (user-registered ones) pass through unchecked.
_WORKER_BACKENDS = ("sharded", "colsharded")
_TILED_BACKENDS = ("numpy", "gpu", "native")


@dataclass(frozen=True)
class RunConfig:
    """One declarative description of a Read Until classification run.

    Parameters
    ----------
    genome / targets / reference:
        What to align against — exactly one of: a single target genome
        string, a mapping of target names to genome strings (screened as one
        :class:`~repro.core.panel.TargetPanel`), or a prebuilt
        reference/panel object (code-only; not serializable).
    include_reverse_complement:
        Whether genome-built references cover both strands.
    hardware:
        The sDTW kernel configuration (:class:`SDTWConfig`); defaults to the
        paper's full hardware data path.
    threshold:
        The ejection threshold. ``None`` means "calibrate before running"
        (:meth:`repro.runtime.ReadUntilSession.calibrate`).
    prefix_samples:
        Signal prefix examined before the accept/eject decision.
    chunk_samples:
        Simulator chunk granularity (``None``: one chunk per decision point).
    n_channels:
        Concurrently sequencing channels the session serves.
    label:
        Optional tenant/run name. Purely descriptive — it flows through
        ``to_dict``/``from_dict``, session ``summary()`` output, benchmark
        report JSON and the ``repro.serve`` session ids, but never affects
        classification.
    batch:
        Pipeline execution mode: ``None`` auto-selects the batched fast path
        when available, ``True`` requires it, ``False`` forces per-read.
    trace / trace_path:
        Observability (:mod:`repro.obs`). ``trace=True`` enables the
        in-memory flight recorder (``session.trace()``, per-phase breakdown
        in ``summary()``); ``trace_path`` additionally writes a Chrome
        trace-event / Perfetto JSON file when the session closes (and
        implies ``trace=True``). Tracing never changes decisions.
    backend / workers / tile_columns / backend_options:
        Execution backend for the batched engine (any name in
        :func:`repro.batch.available_backends`, or ``"auto"`` to let the
        tuner pick). ``workers`` sizes the multi-process pools;
        ``tile_columns`` bounds the column working set of the in-process
        and device backends; ``backend_options`` passes anything else
        straight to the backend factory. With ``backend="auto"`` the
        backend/workers/tile_columns triple is resolved at session spawn by
        :mod:`repro.tune` (calibration probes on first use, the persistent
        tuning cache on repeat use) and the unresolved fields are treated
        as unset.
    tune / tune_budget_s:
        Tuner knobs, only consulted when ``backend="auto"``. ``tune`` is a
        free-form option mapping (``cache_path``, ``ignore_cache``,
        ``margin``, ``min_probes``, ``rounds``, ``seed`` — see
        :func:`repro.tune.tune_config`); ``tune_budget_s`` bounds probe
        wall clock (the first probe always completes so resolution cannot
        come back empty).
    prune / prune_margin:
        Pruning layer of the sDTW wavefront (early abandoning +
        active-column intervals). Off by default — brute force preserved
        bit for bit. With ``prune=True`` the classifier derives per-lane
        kill bounds from its eject threshold; accept/eject decisions stay
        bit-identical on every backend while only still-viable column
        spans advance. ``prune_margin`` widens the exactness window:
        every reported cost within ``margin`` of the threshold also stays
        bit-exact (at the price of fewer pruned cells).
    lb_cascade / lb_level:
        The lower-bound lane gate on top of ``prune`` (requires it): a
        cascade of conservative lower bounds (LB_Kim-style extrema bound,
        then an LB_Keogh-style per-target envelope bound at ``lb_level``
        2, the default) lets whole lanes skip their wavefront advance —
        before dispatch, so skipped lanes never cross worker pipes —
        once no continuation could ever decide differently. Decisions
        stay bit-identical to brute force.
    """

    genome: Optional[str] = None
    targets: Optional[Mapping[str, str]] = None
    reference: Optional[Any] = None
    include_reverse_complement: bool = True
    hardware: SDTWConfig = field(default_factory=SDTWConfig.hardware)
    threshold: Optional[float] = None
    prefix_samples: int = 2000
    chunk_samples: Optional[int] = None
    n_channels: int = 1
    batch: Optional[bool] = None
    label: Optional[str] = None
    trace: bool = False
    trace_path: Optional[str] = None
    backend: str = "numpy"
    workers: Optional[int] = None
    tile_columns: Optional[int] = None
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    prune: bool = False
    prune_margin: float = 0.0
    lb_cascade: bool = False
    lb_level: int = 2
    tune: Optional[Mapping[str, Any]] = None
    tune_budget_s: float = 2.0

    def __post_init__(self) -> None:
        from repro.batch.backends import available_backends  # deferred: keeps core importable

        if self.targets is not None:
            object.__setattr__(self, "targets", dict(self.targets))
        object.__setattr__(self, "backend_options", dict(self.backend_options))
        if isinstance(self.hardware, Mapping):
            object.__setattr__(self, "hardware", SDTWConfig(**self.hardware))
        specified = [
            name
            for name, value in (
                ("genome", self.genome),
                ("targets", self.targets),
                ("reference", self.reference),
            )
            if value is not None
        ]
        if len(specified) > 1:
            raise ValueError(
                f"{specified[0]}: give exactly one of genome, targets or reference "
                f"(got {', '.join(specified)})"
            )
        if self.targets is not None and not self.targets:
            raise ValueError("targets: the panel mapping must name at least one target")
        known = available_backends()
        backend = self.backend.lower()
        if backend != "auto" and backend not in known:
            raise ValueError(
                f"backend: unknown execution backend {self.backend!r}; "
                f"available backends: auto, {', '.join(known)}"
            )
        object.__setattr__(self, "backend", backend)
        if self.workers is not None and self.workers <= 0:
            raise ValueError(f"workers: must be positive, got {self.workers}")
        if self.workers is not None and self.backend in _TILED_BACKENDS:
            raise ValueError(
                f"workers: only the multi-process backends ({', '.join(_WORKER_BACKENDS)}) "
                f"take a worker count, not {self.backend!r}"
            )
        if self.tile_columns is not None and self.tile_columns <= 0:
            raise ValueError(f"tile_columns: must be positive, got {self.tile_columns}")
        if self.tile_columns is not None and self.backend in _WORKER_BACKENDS:
            raise ValueError(
                f"tile_columns: only the in-process/device backends "
                f"({', '.join(_TILED_BACKENDS)}) tile columns, not {self.backend!r}"
            )
        if self.backend == "auto" and (
            self.workers is not None or self.tile_columns is not None
        ):
            raise ValueError(
                "workers: backend='auto' resolves workers and tile_columns through "
                "the tuner; pin the backend to set them by hand"
            )
        if self.tune is not None:
            object.__setattr__(self, "tune", dict(self.tune))
        if self.tune_budget_s <= 0:
            raise ValueError(
                f"tune_budget_s: must be positive, got {self.tune_budget_s}"
            )
        if self.prune_margin < 0:
            raise ValueError(f"prune_margin: must be non-negative, got {self.prune_margin}")
        if self.lb_level not in (1, 2):
            raise ValueError(
                f"lb_level: must be 1 (LB_Kim) or 2 (LB_Kim + LB_Keogh), got {self.lb_level}"
            )
        if self.lb_cascade and not self.prune:
            raise ValueError(
                "lb_cascade: requires prune=True — the lane gate compares lower "
                "bounds against the pruning layer's kill bounds"
            )
        if self.prefix_samples <= 0:
            raise ValueError(f"prefix_samples: must be positive, got {self.prefix_samples}")
        if self.chunk_samples is not None and self.chunk_samples <= 0:
            raise ValueError(f"chunk_samples: must be positive, got {self.chunk_samples}")
        if self.n_channels <= 0:
            raise ValueError(f"n_channels: must be positive, got {self.n_channels}")
        if self.label is not None and (
            not isinstance(self.label, str) or not self.label.strip()
        ):
            raise ValueError(
                f"label: must be a non-empty string naming the tenant/run, "
                f"got {self.label!r}"
            )
        if self.trace_path is not None and (
            not isinstance(self.trace_path, str) or not self.trace_path.strip()
        ):
            raise ValueError(
                f"trace_path: must be a non-empty file path for the exported "
                f"Chrome trace JSON, got {self.trace_path!r}"
            )

    @property
    def tracing_enabled(self) -> bool:
        """Whether sessions built from this config record spans (``trace`` or ``trace_path``)."""
        return bool(self.trace) or self.trace_path is not None

    # ------------------------------------------------------------ derivation
    def with_(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    def resolved_backend_options(self) -> Dict[str, Any]:
        """The ``backend_options`` mapping the backend factory receives.

        Folds the first-class sizing fields (``workers``, ``tile_columns``)
        into the free-form options; explicit ``backend_options`` keys win.
        """
        options = dict(self.backend_options)
        if self.workers is not None:
            options.setdefault("workers", self.workers)
        if self.tile_columns is not None:
            options.setdefault("tile_columns", self.tile_columns)
        return options

    def resolve_panel(self, kmer_model: Any = None) -> Any:
        """Build (or coerce) the :class:`TargetPanel` this config aligns against."""
        from repro.core.panel import TargetPanel  # deferred: import cycle via filter
        from repro.core.reference import ReferenceSquiggle

        if self.reference is not None:
            return TargetPanel.coerce(self.reference)
        if self.targets is not None:
            return TargetPanel.from_genomes(
                dict(self.targets),
                kmer_model=kmer_model,
                include_reverse_complement=self.include_reverse_complement,
            )
        if self.genome is not None:
            return TargetPanel.single(
                ReferenceSquiggle.from_genome(
                    self.genome,
                    kmer_model=kmer_model,
                    include_reverse_complement=self.include_reverse_complement,
                )
            )
        raise ValueError(
            "reference: the RunConfig names no alignment target; set genome, "
            "targets or reference before opening a session"
        )

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """A JSON/YAML-serializable mapping of every field.

        Refuses configs carrying a prebuilt ``reference`` object: dumping one
        would silently drop the alignment target, so reproducible configs
        must name it as ``genome`` or ``targets``.
        """
        if self.reference is not None:
            raise ValueError(
                "reference: prebuilt reference objects are not serializable; "
                "use the genome or targets fields for a dumpable config"
            )
        data = {
            fld.name: getattr(self, fld.name)
            for fld in dataclasses.fields(self)
            if fld.name != "reference"
        }
        data["hardware"] = dataclasses.asdict(self.hardware)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Construct from a plain mapping; unknown keys raise a ValueError."""
        known = {fld.name for fld in dataclasses.fields(cls)} - {"reference"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"{unknown[0]}: unknown RunConfig field(s) {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "RunConfig":
        """Load a config from a ``.json`` or ``.yaml``/``.yml`` file."""
        return cls.from_dict(load_config_mapping(path))

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the serialized config to a ``.json`` or ``.yaml``/``.yml`` file."""
        path = Path(path)
        data = self.to_dict()
        if path.suffix.lower() in (".yaml", ".yml"):
            yaml = _require_yaml(path)
            path.write_text(yaml.safe_dump(data, sort_keys=True))
        else:
            path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    def to_json(self) -> str:
        """The serialized config as an indented JSON string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _require_yaml(path: Path) -> Any:
    try:
        import yaml  # noqa: PLC0415 - optional dependency
    except ImportError:
        raise RuntimeError(
            f"loading {path.name} needs PyYAML (pip install pyyaml); "
            "JSON configs work without it"
        ) from None
    return yaml


def load_config_mapping(path: Union[str, Path]) -> Mapping[str, Any]:
    """The raw field mapping of a config file (what the CLI overlays flags on)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        data = _require_yaml(path).safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, Mapping):
        raise ValueError(f"{path} does not contain a mapping of RunConfig fields")
    return data
