"""The unified runtime API: declarative configs and session lifecycle.

One import gives the two objects every modern entry point is built on:

* :class:`RunConfig` — the validated, serializable description of a
  classification run (reference/panel, kernel config, thresholds,
  batch/backend/workers/tile_columns, channel count) with
  ``from_dict``/``to_dict`` and JSON/YAML file loading;
* :func:`open_session` / :class:`ReadUntilSession` — the lifecycle object
  that owns lazy backend creation, engine teardown (context manager,
  idempotent ``close()``, close-on-error) and the streaming interface
  (``submit(round_chunks) -> decisions``, ``summary()``).

Quickstart::

    from repro.runtime import RunConfig, open_session

    config = RunConfig(genome=genome, threshold=120_000.0,
                       n_channels=8, backend="sharded", workers=4)
    with open_session(config) as session:
        result = session.run(reads)

The pre-existing entry points (``build_pipeline`` specs,
``BatchSquiggleClassifier(backend=...)``, ``classify_batch(backend=...)``)
remain as thin shims over this layer and make bit-identical decisions.
"""

from repro.runtime.config import RunConfig, load_config_mapping
from repro.runtime.session import ReadUntilSession, SessionClosedError, open_session

__all__ = [
    "ReadUntilSession",
    "RunConfig",
    "SessionClosedError",
    "load_config_mapping",
    "open_session",
]
