"""The Read Until session: one lifecycle object over one configured run.

:func:`open_session` turns a :class:`~repro.runtime.config.RunConfig` into a
:class:`ReadUntilSession` — the single runtime object pipelines, benchmarks
and the CLI drive. The session owns what used to be managed ad hoc at every
call site:

* **lazy backend creation** — nothing is spawned at ``open_session``; the
  classifier, engine and execution backend (worker pools, shared memory,
  device allocations) come up on the first chunk submitted;
* **engine lifecycle** — the session is a context manager, ``close()`` is
  idempotent, a failure inside a round closes the session (no leaked worker
  pools when a run dies mid-stream), and any use after ``close()`` raises;
* **one streaming interface** — ``submit(round_chunks) -> decisions`` feeds
  one polling round through the batched wavefront; ``summary()`` reports the
  session's decision tallies and engine occupancy.

The session also speaks the
:class:`~repro.pipeline.api.ReadUntilClassifier` protocol (``begin_read`` /
``on_chunk`` / ``on_chunk_batch`` / ``end_read``), so
:class:`~repro.pipeline.read_until.ReadUntilPipeline` accepts it directly —
the pipeline, a benchmark loop calling :meth:`submit`, and the CLI are all
the same code path underneath. Decisions are bit-identical to driving the
pre-session entry points with the same configuration, whichever execution
backend the config names.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer
from repro.runtime.config import RunConfig

if TYPE_CHECKING:  # imported lazily at runtime to keep open_session cheap
    from repro.batch.classifier import BatchSquiggleClassifier
    from repro.pipeline.api import Action
    from repro.pipeline.read_until import PipelineRunResult
    from repro.sequencer.read_until_api import SignalChunk
    from repro.sequencer.reads import Read

__all__ = ["ReadUntilSession", "SessionClosedError", "open_session"]


class SessionClosedError(RuntimeError):
    """Raised by every interaction with a closed :class:`ReadUntilSession`.

    The after-close contract is uniform across all registered execution
    backends: ``submit``, ``summary``, ``calibrate`` and ``classifier`` on a
    closed session raise this (a :class:`RuntimeError` subclass, so existing
    ``except RuntimeError`` callers keep working). Open a fresh session with
    :func:`open_session` instead of resurrecting a closed one.
    """


def open_session(config: RunConfig) -> "ReadUntilSession":
    """Open a :class:`ReadUntilSession` for one declarative run configuration.

    Cheap by design: the reference panel, classifier and execution backend
    are all created lazily when the first chunks arrive, so opening a
    session to validate a config (or to calibrate) costs nothing.
    """
    return ReadUntilSession(config)


class ReadUntilSession:
    """Streaming Read Until runtime for one :class:`RunConfig`.

    Use as a context manager (the backend's worker pools and shared memory
    are released on exit, including exceptional exit), or call
    :meth:`close` explicitly. A session whose round raises is closed on the
    spot — abandoning it cannot leak backend resources — and every
    interaction after ``close()`` raises :class:`SessionClosedError`.

    Sessions are **single-writer**: lane state advances in submission order,
    so one round must finish before the next begins. Submitting from a
    second thread while a round is in flight raises :class:`RuntimeError`
    immediately (it can never corrupt lane state), while :meth:`close` from
    another thread waits for the in-flight round — what a draining service
    wants. Callers that need concurrency open one session per tenant (see
    :mod:`repro.serve`).
    """

    supports_chunk_batching = True

    def __init__(self, config: RunConfig) -> None:
        self.config = config
        self._classifier: Optional["BatchSquiggleClassifier"] = None
        self._panel = None
        # backend="auto" resolution state: the concrete post-tuning config
        # and the decision that produced it (None until the backend spawns).
        self._resolved_config: Optional[RunConfig] = None
        self._tuned = None
        self._threshold = config.threshold
        self._closed = False
        self._n_rounds = 0
        self._decisions: Dict[str, int] = {"accept": 0, "eject": 0}
        self._per_target_accepts: Dict[str, int] = {}
        self._begun: set = set()
        # Observability: an enabled tracer only when the config asks for it,
        # so untraced sessions pay one `if` per hook. Round wall-clock is
        # accumulated unconditionally (two clock reads per round) because
        # summary() reports it in both modes.
        self._tracer = Tracer(track="session") if config.tracing_enabled else NULL_TRACER
        self._round_wall_s = 0.0
        # Reentrant so the close-on-error path inside a round can take it
        # again from the same thread; a *different* thread mid-round fails
        # the non-blocking acquire and raises instead of corrupting lanes.
        self._io_lock = threading.RLock()

    def _acquire_writer(self, verb: str) -> None:
        if not self._io_lock.acquire(blocking=False):
            raise RuntimeError(
                f"concurrent {verb} on one ReadUntilSession: sessions are "
                "single-writer (rounds advance lane state in order); "
                "serialize submissions or open one session per tenant"
            )

    # -------------------------------------------------------------- protocol
    @property
    def name(self) -> str:
        return f"session:{self.config.backend}"

    @property
    def decision_latency_s(self) -> float:
        from repro.pipeline.api import DEFAULT_HARDWARE_LATENCY_S

        return DEFAULT_HARDWARE_LATENCY_S

    @property
    def min_decision_samples(self) -> int:
        return self.config.prefix_samples

    @property
    def max_decision_samples(self) -> int:
        return self.config.prefix_samples

    @property
    def started(self) -> bool:
        """Whether the first submission has spawned the execution backend."""
        return self._classifier is not None

    @property
    def backend_name(self) -> str:
        """The backend this session runs (or will run) on.

        ``"auto"`` until the first submission resolves it through the tuner;
        the concrete tuned backend afterwards.
        """
        if self._resolved_config is not None:
            return self._resolved_config.backend
        return self.config.backend

    @property
    def tuned(self):
        """The :class:`~repro.tune.TunedDecision` behind ``backend="auto"``.

        ``None`` for pinned-backend configs and before the lazy first
        submission spawns the backend.
        """
        return self._tuned

    @property
    def threshold(self) -> Optional[float]:
        return self._threshold

    @property
    def classifier(self) -> "BatchSquiggleClassifier":
        """The underlying batched classifier (spawning it if needed)."""
        return self._ensure_classifier()

    @property
    def engine(self):
        """The lane-manager engine once started (``None`` before the first
        submission) — what the pipeline's streaming summary reads occupancy
        from."""
        return self._classifier.engine if self._classifier is not None else None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def label(self) -> Optional[str]:
        return self.config.label

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                "session is closed; open_session(config) creates a fresh one"
            )

    def _resolve_panel(self):
        if self._panel is None:
            self._panel = self.config.resolve_panel()
        return self._panel

    def _resolve_config(self) -> RunConfig:
        """The concrete config the backend spawns from.

        Pinned configs pass through untouched. ``backend="auto"`` resolves
        here — lazily, at first spawn, with the panel already built so the
        workload shape is exact — via :func:`repro.tune.resolve_auto`:
        probes on a cold cache (traced as ``tune.probe`` spans on this
        session's tracer), a cache lookup on repeat runs. The decision is
        memoized for the session's lifetime and reported under
        ``summary()["tuned"]``.
        """
        if self._resolved_config is None:
            if self.config.backend == "auto":
                from repro.tune import resolve_auto

                self._resolved_config, self._tuned = resolve_auto(
                    self.config, panel=self._resolve_panel(), tracer=self._tracer
                )
            else:
                self._resolved_config = self.config
        return self._resolved_config

    def _ensure_classifier(self) -> "BatchSquiggleClassifier":
        self._check_open()
        if self._classifier is None:
            from repro.batch.classifier import BatchSquiggleClassifier

            resolved = self._resolve_config()
            self._classifier = BatchSquiggleClassifier(
                self._resolve_panel(),
                config=resolved.hardware,
                threshold=self._threshold,
                prefix_samples=resolved.prefix_samples,
                name=self.name,
                run_config=resolved,
                tracer=self._tracer,
            )
        return self._classifier

    # -------------------------------------------------------- streaming verbs
    def begin_read(self, read_id: str) -> None:
        self._begun.add(read_id)
        self._ensure_classifier().begin_read(read_id)

    def end_read(self, read_id: str) -> None:
        self._begun.discard(read_id)
        if self._classifier is not None and not self._closed:
            self._classifier.end_read(read_id)

    def on_chunk(self, chunk: "SignalChunk") -> "Action":
        return self.on_chunk_batch([chunk])[0]

    def on_chunk_batch(self, chunks: Sequence["SignalChunk"]) -> List["Action"]:
        """Classify one polling round (the pipeline's fast path).

        Any failure inside the round — a worker crash, an overflow, a bad
        chunk — closes the session before propagating, so an abandoned run
        never leaks worker pools or shared memory.
        """
        self._acquire_writer("round submission")
        try:
            classifier = self._ensure_classifier()
            try:
                round_start_s = time.perf_counter()
                with self._tracer.span(
                    "session.round", round=self._n_rounds, n_chunks=len(chunks)
                ):
                    actions = classifier.on_chunk_batch(chunks)
                self._round_wall_s += time.perf_counter() - round_start_s
            except Exception:
                self.close()
                raise
        finally:
            self._io_lock.release()
        self._n_rounds += 1
        for chunk, action in zip(chunks, actions):
            if not action.is_terminal:
                continue
            self._begun.discard(chunk.read_id)
            self._decisions[action.kind] = self._decisions.get(action.kind, 0) + 1
            if action.kind == "accept" and action.target is not None:
                self._per_target_accepts[action.target] = (
                    self._per_target_accepts.get(action.target, 0) + 1
                )
        return actions

    def submit(self, round_chunks: Sequence["SignalChunk"]) -> List["Action"]:
        """Feed one polling round of chunks; returns one action per chunk.

        The direct-drive verb for benchmarks and custom loops: unseen read
        ids are begun automatically, then the whole round advances through
        one batched wavefront exactly as the pipeline's fast path would.
        """
        self._check_open()
        self._acquire_writer("submit")
        try:
            for chunk in round_chunks:
                if chunk.read_id not in self._begun:
                    self.begin_read(chunk.read_id)
            return self.on_chunk_batch(round_chunks)
        finally:
            self._io_lock.release()

    # ------------------------------------------------------------ calibration
    def calibrate(
        self,
        target_signals: Sequence[np.ndarray],
        nontarget_signals: Sequence[np.ndarray],
        objective: str = "f1",
        target_recall: float = 0.95,
        chunk_samples: Optional[int] = None,
    ) -> float:
        """Choose the ejection threshold from labelled reads and store it.

        Runs in-process on a throwaway numpy-backend classifier (calibration
        is a one-shot sweep; costs are bit-identical on every backend), so
        calibrating never spawns the configured execution backend early.
        """
        self._check_open()
        from repro.batch.classifier import BatchSquiggleClassifier

        chunk = chunk_samples if chunk_samples is not None else self.config.chunk_samples
        with BatchSquiggleClassifier(
            self._resolve_panel(),
            config=self.config.hardware,
            prefix_samples=self.config.prefix_samples,
            run_config=self.config.with_(backend="numpy", workers=None, tile_columns=None, backend_options={}),
        ) as helper:
            self._threshold = helper.calibrate(
                target_signals,
                nontarget_signals,
                objective=objective,
                target_recall=target_recall,
                chunk_samples=chunk,
            )
        if self._classifier is not None:
            self._classifier.threshold = self._threshold
        return self._threshold

    # -------------------------------------------------------------- reporting
    @property
    def tracer(self) -> Tracer:
        """The session's tracer (the shared disabled one unless the config traces)."""
        return self._tracer

    def trace(self) -> List[SpanRecord]:
        """Flight-recorder snapshot: every recorded span/instant, oldest first.

        Empty unless the config enables tracing (``trace=True`` or a
        ``trace_path``). Worker-side spans of the multi-process backends
        appear under their own track ids (``sharded-worker-0``, …).
        """
        return self._tracer.records()

    def summary(self) -> Dict[str, Any]:
        """Decision tallies, wall-clock and engine occupancy for everything submitted.

        Always includes ``round_wall_s`` (total wall seconds spent inside
        round submissions); once the engine has spawned, ``n_polls`` and
        ``busy_rounds`` account idle vs busy polling rounds. With tracing
        enabled, ``phase_totals`` breaks the wall time down per span name
        (count / total / self seconds, from the tracer's accumulating view).

        Raises :class:`SessionClosedError` on a closed session — capture the
        summary before :meth:`close` (the serving layer does exactly that
        when a tenant deletes a session).
        """
        self._check_open()
        summary: Dict[str, Any] = {
            "backend": self.backend_name,
            "prefix_samples": self.config.prefix_samples,
            "n_channels": self.config.n_channels,
            "threshold": self._threshold,
            "rounds": self._n_rounds,
            "accepts": self._decisions.get("accept", 0),
            "ejects": self._decisions.get("eject", 0),
            "closed": self._closed,
            "round_wall_s": self._round_wall_s,
        }
        if self.config.label is not None:
            summary["label"] = self.config.label
        if self._tuned is not None:
            summary["tuned"] = self._tuned.as_dict()
        if self._per_target_accepts:
            summary["per_target_accepts"] = dict(self._per_target_accepts)
        if self._classifier is not None:
            engine = self._classifier.engine
            summary["targets"] = list(engine.target_names)
            summary["batch_occupancy"] = list(engine.occupancy_trace)
            summary["peak_batch_lanes"] = engine.peak_occupancy
            summary["mean_batch_lanes"] = engine.mean_occupancy
            summary["n_polls"] = engine.n_polls
            summary["busy_rounds"] = len(engine.rounds)
            summary["cells_advanced"] = engine.cells_advanced
            summary["cells_pruned"] = engine.cells_pruned
            summary["lanes_lb_skipped"] = int(getattr(engine, "lanes_lb_skipped", 0))
            summary["cells_lb_skipped"] = int(getattr(engine, "cells_lb_skipped", 0))
        if self._tracer.enabled:
            summary["phase_totals"] = {
                name: stat.as_dict()
                for name, stat in sorted(self._tracer.phase_totals().items())
            }
        return summary

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the classifier and its execution backend. Idempotent.

        From another thread, blocks until an in-flight round finishes — a
        draining service never tears a backend down under a live wavefront.
        """
        with self._io_lock:
            if self._closed:
                return
            self._closed = True
            try:
                if self.config.trace_path is not None and len(self._tracer):
                    from repro.obs.export import write_chrome_trace

                    metadata = {
                        "backend": self.backend_name,
                        "rounds": self._n_rounds,
                    }
                    if self.config.label is not None:
                        metadata["label"] = self.config.label
                    write_chrome_trace(self._tracer, self.config.trace_path, metadata=metadata)
            finally:
                # An unwritable trace path must never leak the backend's
                # worker pools; the export error propagates after teardown.
                if self._classifier is not None:
                    self._classifier.close()

    def __enter__(self) -> "ReadUntilSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------ convenience
    def run(
        self,
        reads: Sequence["Read"],
        target_genome: Optional[str] = None,
        target_bases_goal: Optional[int] = None,
        assemble: bool = False,
        assembler: Any = None,
    ) -> "PipelineRunResult":
        """Stream ``reads`` through a full Read Until simulation.

        Builds a :class:`~repro.pipeline.read_until.ReadUntilPipeline` from
        this session's config (channel count, chunk geometry, batch mode)
        with the session itself as the classifier, so the pipeline and
        :meth:`submit` exercise the identical code path. ``target_genome``
        defaults to the config's ``genome`` and is only required when
        ``assemble`` is on.
        """
        self._check_open()
        from repro.pipeline.read_until import ReadUntilPipeline

        genome = target_genome if target_genome is not None else self.config.genome
        if assemble and genome is None:
            raise ValueError("assemble=True needs a target_genome to assemble against")
        pipeline = ReadUntilPipeline(
            self,
            genome,
            prefix_samples=self.config.prefix_samples,
            chunk_samples=self.config.chunk_samples,
            n_channels=self.config.n_channels,
            batch=self.config.batch if self.config.batch is not None else True,
            assemble=assemble,
            assembler=assembler,
        )
        return pipeline.run(reads, target_bases_goal=target_bases_goal)
