"""UNCALLED-like raw-signal classifier (related-work baseline, paper Section 8).

UNCALLED avoids basecalling by (1) segmenting the raw signal into events,
(2) matching candidate k-mers against the reference with an FM-index, and
(3) clustering consistent seed hits. The paper evaluates it and finds that a
substantial fraction of 2000-sample chunks cannot be confidently aligned and
that per-read latency is tens of milliseconds on a desktop CPU.

This module reproduces the three-stage structure with a simplified seed
alphabet: expected current levels (reference) and event means (query) are
quantized into four bins, bins are written as DNA letters, and exact q-gram
matches between the two bin strings are found with the FM-index and clustered
by diagonal. The simplification preserves the baseline's qualitative
behaviour — it needs longer prefixes than SquiggleFilter for a confident
call and leaves a fraction of reads unclassified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.align.fm_index import FMIndex
from repro.basecall.events import segment_events
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.genomes.sequences import reverse_complement, validate_sequence
from repro.pore_model.kmer_model import KmerModel

_BIN_LETTERS = "ACGT"


@dataclass
class UncalledDecision:
    """Decision of the UNCALLED-like classifier for one read prefix."""

    accept: bool
    confident: bool
    best_cluster_size: int
    n_events: int
    n_seed_hits: int


def _quantize_to_letters(values: np.ndarray, edges: np.ndarray) -> str:
    """Quantize normalized levels into the 4-letter bin alphabet."""
    bins = np.digitize(values, edges)
    bins = np.clip(bins, 0, len(_BIN_LETTERS) - 1)
    return "".join(_BIN_LETTERS[index] for index in bins)


class UncalledLikeClassifier:
    """Event + FM-index + seed-clustering classifier over raw signal."""

    def __init__(
        self,
        target_genome: str,
        kmer_model: Optional[KmerModel] = None,
        seed_length: int = 10,
        min_cluster_size: int = 4,
        min_confident_events: int = 40,
        max_seed_occurrences: int = 50,
        normalization: NormalizationConfig = NormalizationConfig(),
    ) -> None:
        if seed_length < 4:
            raise ValueError("seed_length must be at least 4")
        if min_cluster_size < 1:
            raise ValueError("min_cluster_size must be at least 1")
        self.kmer_model = kmer_model if kmer_model is not None else KmerModel()
        self.seed_length = seed_length
        self.min_cluster_size = min_cluster_size
        self.min_confident_events = min_confident_events
        self.max_seed_occurrences = max_seed_occurrences
        self.normalizer = SignalNormalizer(normalization)

        genome = validate_sequence(target_genome)
        expected = np.concatenate(
            [
                self.kmer_model.expected_signal(genome),
                self.kmer_model.expected_signal(reverse_complement(genome)),
            ]
        )
        normalized = self.normalizer.normalize(expected)
        # Quartile bin edges computed on the reference so both sides use the
        # same quantization boundaries.
        self._edges = np.quantile(normalized, [0.25, 0.5, 0.75])
        self._reference_letters = _quantize_to_letters(normalized, self._edges)
        self.fm_index = FMIndex(self._reference_letters)

    # ------------------------------------------------------------------ queries
    def event_letters(self, signal: np.ndarray) -> str:
        """Convert a raw signal prefix to the quantized event-level string."""
        events = segment_events(np.asarray(signal, dtype=np.float64))
        if not events:
            return ""
        means = np.array([event.mean for event in events], dtype=np.float64)
        normalized = self.normalizer.normalize(means)
        return _quantize_to_letters(normalized, self._edges)

    def seed_hits(self, letters: str) -> List[Tuple[int, int]]:
        """(query position, reference position) pairs of exact q-gram matches."""
        hits: List[Tuple[int, int]] = []
        for start in range(0, max(len(letters) - self.seed_length + 1, 0)):
            seed = letters[start : start + self.seed_length]
            count = self.fm_index.count(seed)
            if count == 0 or count > self.max_seed_occurrences:
                continue
            for position in self.fm_index.locate(seed, limit=self.max_seed_occurrences):
                hits.append((start, position))
        return hits

    def _best_cluster(self, hits: List[Tuple[int, int]], drift: int = 20) -> int:
        """Largest group of hits sharing (approximately) one diagonal."""
        if not hits:
            return 0
        diagonals = sorted(reference - query for query, reference in hits)
        best = 1
        window_start = 0
        for window_end in range(len(diagonals)):
            while diagonals[window_end] - diagonals[window_start] > drift:
                window_start += 1
            best = max(best, window_end - window_start + 1)
        return best

    def classify(self, signal: np.ndarray) -> UncalledDecision:
        """Classify one raw signal prefix.

        ``confident`` is False when the prefix yields too few events or seed
        hits to call either way — the "unalignable chunk" failure mode the
        paper measured at 23.6 % for 2000-sample chunks.
        """
        letters = self.event_letters(signal)
        hits = self.seed_hits(letters)
        best_cluster = self._best_cluster(hits)
        confident = len(letters) >= self.min_confident_events and (
            best_cluster >= self.min_cluster_size or len(hits) > 0
        )
        return UncalledDecision(
            accept=best_cluster >= self.min_cluster_size,
            confident=confident,
            best_cluster_size=best_cluster,
            n_events=len(letters),
            n_seed_hits=len(hits),
        )

    def unalignable_fraction(self, signals: List[np.ndarray]) -> float:
        """Fraction of prefixes that could not be confidently classified."""
        if not signals:
            return 0.0
        undecided = sum(1 for signal in signals if not self.classify(signal).confident)
        return undecided / len(signals)
