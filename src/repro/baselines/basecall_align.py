"""The conventional Read Until classifier: basecall the prefix, then align it.

This is the pipeline the paper profiles in Section 3 (Guppy/Guppy-lite
followed by MiniMap2): accurate but dominated by basecalling compute, with a
per-decision latency that costs tens to hundreds of unnecessarily sequenced
bases. It acts as the accuracy and performance baseline that SquiggleFilter
is compared against (Figures 16, 17, 21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.align.aligner import ReferenceAligner
from repro.basecall.basecaller import GUPPY_LITE, BasecallerProfile, SimulatedBasecaller
from repro.basecall.performance import basecaller_performance
from repro.core.filter import FilterDecision
from repro.sequencer.reads import Read


@dataclass
class BasecallAlignDecision:
    """Decision plus the compute accounting of the basecall+align pipeline."""

    accept: bool
    samples_used: int
    bases_called: int
    basecall_operations: int
    mapping_quality: float

    def as_filter_decision(self, latency_extra_samples: int = 0) -> FilterDecision:
        """Adapt to the common :class:`FilterDecision` shape used by sessions."""
        return FilterDecision(
            accept=self.accept,
            cost=-self.mapping_quality,
            per_sample_cost=-self.mapping_quality / max(self.samples_used, 1),
            samples_used=self.samples_used + latency_extra_samples,
            threshold=0.0,
            end_position=0,
        )


class BasecallAlignClassifier:
    """Classify reads by basecalling a prefix and aligning it to the target."""

    def __init__(
        self,
        target_genome: str,
        basecaller_profile: BasecallerProfile = GUPPY_LITE,
        min_mapping_quality: float = 20.0,
        prefix_samples: int = 2000,
        aligner_k: int = 11,
        aligner_w: int = 5,
        device: str = "jetson_xavier",
        seed: Optional[int] = None,
    ) -> None:
        if prefix_samples <= 0:
            raise ValueError("prefix_samples must be positive")
        self.basecaller = SimulatedBasecaller(basecaller_profile, seed=seed)
        self.aligner = ReferenceAligner(target_genome, k=aligner_k, w=aligner_w)
        self.min_mapping_quality = min_mapping_quality
        self.prefix_samples = prefix_samples
        self.device = device

    @property
    def decision_latency_s(self) -> float:
        """Per-decision latency of this basecaller on the configured device."""
        record = basecaller_performance(self.basecaller.profile.name, self.device)
        return record.read_until_latency_ms / 1000.0

    def classify_read(self, read: Read, prefix_samples: Optional[int] = None) -> BasecallAlignDecision:
        """Basecall a prefix of ``read`` and decide whether it maps to the target."""
        used = prefix_samples if prefix_samples is not None else self.prefix_samples
        basecall = self.basecaller.basecall(read, n_samples=used)
        alignment = self.aligner.map(basecall.sequence, refine=False)
        mapping_quality = alignment.mapping_quality if alignment is not None else 0.0
        return BasecallAlignDecision(
            accept=mapping_quality >= self.min_mapping_quality,
            samples_used=basecall.n_samples,
            bases_called=basecall.n_bases,
            basecall_operations=basecall.n_operations,
            mapping_quality=mapping_quality,
        )

    def classify_batch(
        self,
        reads: Sequence[Read],
        prefix_samples: Optional[int] = None,
    ) -> list:
        return [self.classify_read(read, prefix_samples) for read in reads]

    def accuracy_costs(self, reads: Sequence[Read], prefix_samples: Optional[int] = None) -> list:
        """Negative mapping quality per read, usable as a 'cost' for threshold sweeps.

        Lower cost means a more confident target call, mirroring how sDTW
        alignment cost behaves, so the same sweep machinery (Figure 17a)
        applies to the baseline.
        """
        return [
            -self.classify_read(read, prefix_samples).mapping_quality for read in reads
        ]
