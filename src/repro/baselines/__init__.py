"""Baseline Read Until classifiers: basecall+align (Guppy/MiniMap2-style) and UNCALLED-like."""

from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.baselines.uncalled import UncalledLikeClassifier

__all__ = [
    "BasecallAlignClassifier",
    "UncalledLikeClassifier",
]
