"""I/O substrate: FASTA sequences and FAST5-like raw-signal read containers."""

from repro.io.fasta import FastaRecord, read_fasta, write_fasta
from repro.io.fast5 import Fast5Read, Fast5Store
from repro.io.paf import PafRecord, paf_from_alignment, read_paf, write_paf

__all__ = [
    "Fast5Read",
    "Fast5Store",
    "FastaRecord",
    "PafRecord",
    "paf_from_alignment",
    "read_fasta",
    "read_paf",
    "write_fasta",
    "write_paf",
]
