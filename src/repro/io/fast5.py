"""FAST5-like containers for raw nanopore signal.

Real MinION runs store raw 16-bit ADC samples per read in HDF5 ``.fast5``
files (accessed via ``ont-fast5-api``). We reproduce the same role with a
lightweight in-memory read record plus an ``.npz``-backed store so example
scripts can persist and reload simulated runs without HDF5.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np


@dataclass
class Fast5Read:
    """One raw-signal read: ADC samples plus the channel metadata ONT stores."""

    read_id: str
    signal: np.ndarray
    channel: int = 0
    sample_rate: float = 4000.0
    offset: float = 0.0
    range_pa: float = 1400.0
    digitisation: float = 8192.0
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.signal = np.asarray(self.signal)
        if self.signal.ndim != 1:
            raise ValueError(f"signal must be 1-D, got shape {self.signal.shape}")
        if self.sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {self.sample_rate}")
        if self.digitisation <= 0:
            raise ValueError(f"digitisation must be positive, got {self.digitisation}")

    def __len__(self) -> int:
        return int(self.signal.size)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock sequencing time represented by this signal."""
        return self.signal.size / self.sample_rate

    def to_picoamps(self) -> np.ndarray:
        """Convert raw ADC counts to picoamps using the ONT conversion."""
        return (self.signal.astype(np.float64) + self.offset) * (self.range_pa / self.digitisation)

    @classmethod
    def from_picoamps(
        cls,
        read_id: str,
        current_pa: np.ndarray,
        channel: int = 0,
        sample_rate: float = 4000.0,
        offset: float = 0.0,
        range_pa: float = 1400.0,
        digitisation: float = 8192.0,
        metadata: Optional[Dict[str, str]] = None,
    ) -> "Fast5Read":
        """Quantize a picoamp trace into ADC counts, mirroring the MinION ADC."""
        current = np.asarray(current_pa, dtype=np.float64)
        counts = np.rint(current * (digitisation / range_pa) - offset)
        counts = np.clip(counts, 0, digitisation - 1).astype(np.int16)
        return cls(
            read_id=read_id,
            signal=counts,
            channel=channel,
            sample_rate=sample_rate,
            offset=offset,
            range_pa=range_pa,
            digitisation=digitisation,
            metadata=dict(metadata or {}),
        )


class Fast5Store:
    """A collection of :class:`Fast5Read` with ``.npz`` persistence."""

    def __init__(self, reads: Optional[List[Fast5Read]] = None) -> None:
        self._reads: Dict[str, Fast5Read] = {}
        for read in reads or []:
            self.add(read)

    def add(self, read: Fast5Read) -> None:
        if read.read_id in self._reads:
            raise ValueError(f"duplicate read id {read.read_id!r}")
        self._reads[read.read_id] = read

    def get(self, read_id: str) -> Fast5Read:
        return self._reads[read_id]

    def __len__(self) -> int:
        return len(self._reads)

    def __iter__(self) -> Iterator[Fast5Read]:
        return iter(self._reads.values())

    def __contains__(self, read_id: str) -> bool:
        return read_id in self._reads

    def read_ids(self) -> List[str]:
        return list(self._reads.keys())

    def save(self, path: Union[str, Path]) -> None:
        """Persist all reads and their metadata to a single ``.npz`` file."""
        arrays = {}
        manifest = []
        for index, read in enumerate(self._reads.values()):
            arrays[f"signal_{index}"] = read.signal
            manifest.append(
                {
                    "read_id": read.read_id,
                    "channel": read.channel,
                    "sample_rate": read.sample_rate,
                    "offset": read.offset,
                    "range_pa": read.range_pa,
                    "digitisation": read.digitisation,
                    "metadata": read.metadata,
                    "key": f"signal_{index}",
                }
            )
        arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Fast5Store":
        """Load a store written by :meth:`save`."""
        store = cls()
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(bytes(data["manifest"].tobytes()).decode("utf-8"))
            for entry in manifest:
                store.add(
                    Fast5Read(
                        read_id=entry["read_id"],
                        signal=data[entry["key"]],
                        channel=int(entry["channel"]),
                        sample_rate=float(entry["sample_rate"]),
                        offset=float(entry["offset"]),
                        range_pa=float(entry["range_pa"]),
                        digitisation=float(entry["digitisation"]),
                        metadata=dict(entry["metadata"]),
                    )
                )
        return store
