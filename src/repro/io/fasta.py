"""Minimal FASTA reader/writer.

Reference genomes and assembled consensus sequences move between modules and
example scripts as FASTA files, mirroring the artifact's ``data/`` layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

from repro.genomes.sequences import validate_sequence


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: identifier, free-text description and sequence."""

    name: str
    sequence: str
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequence", validate_sequence(self.sequence))
        if not self.name:
            raise ValueError("FASTA record name must be non-empty")

    def __len__(self) -> int:
        return len(self.sequence)


def read_fasta(path: Union[str, Path]) -> List[FastaRecord]:
    """Parse a FASTA file into records.

    Raises ``ValueError`` if the file does not start with a header line or
    contains a record with no sequence.
    """
    records: List[FastaRecord] = []
    name = ""
    description = ""
    chunks: List[str] = []

    def flush() -> None:
        if name:
            if not chunks:
                raise ValueError(f"FASTA record {name!r} has no sequence")
            records.append(FastaRecord(name=name, sequence="".join(chunks), description=description))

    with open(path, "r", encoding="utf-8") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith(">"):
                flush()
                header = line[1:].split(maxsplit=1)
                if not header or not header[0]:
                    raise ValueError("FASTA header line has no identifier")
                name = header[0]
                description = header[1] if len(header) > 1 else ""
                chunks = []
            else:
                if not name:
                    raise ValueError("FASTA file does not start with a '>' header")
                chunks.append(line)
    flush()
    return records


def write_fasta(
    path: Union[str, Path],
    records: Iterable[FastaRecord],
    line_width: int = 70,
) -> int:
    """Write records to ``path``; returns the number of records written."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            header = f">{record.name}"
            if record.description:
                header = f"{header} {record.description}"
            handle.write(header + "\n")
            sequence = record.sequence
            for start in range(0, len(sequence), line_width):
                handle.write(sequence[start : start + line_width] + "\n")
            count += 1
    return count
