"""PAF (Pairwise mApping Format) output for alignments.

MiniMap2 reports mappings as PAF records; downstream tools in real Read Until
pipelines consume that format. Writing our aligner's output as PAF keeps the
substrate interoperable and gives the examples a concrete artifact to save.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

from repro.align.aligner import Alignment


@dataclass(frozen=True)
class PafRecord:
    """One PAF line (the 12 mandatory columns)."""

    query_name: str
    query_length: int
    query_start: int
    query_end: int
    strand: str
    target_name: str
    target_length: int
    target_start: int
    target_end: int
    residue_matches: int
    alignment_block_length: int
    mapping_quality: int

    def __post_init__(self) -> None:
        if self.strand not in ("+", "-"):
            raise ValueError(f"strand must be '+' or '-', got {self.strand!r}")
        if not 0 <= self.mapping_quality <= 255:
            raise ValueError("mapping_quality must be within [0, 255]")
        if self.query_start > self.query_end or self.target_start > self.target_end:
            raise ValueError("interval start must not exceed end")

    def to_line(self) -> str:
        fields = [
            self.query_name,
            self.query_length,
            self.query_start,
            self.query_end,
            self.strand,
            self.target_name,
            self.target_length,
            self.target_start,
            self.target_end,
            self.residue_matches,
            self.alignment_block_length,
            self.mapping_quality,
        ]
        return "\t".join(str(field) for field in fields)

    @classmethod
    def from_line(cls, line: str) -> "PafRecord":
        parts = line.rstrip("\n").split("\t")
        if len(parts) < 12:
            raise ValueError(f"PAF line has {len(parts)} fields, expected at least 12")
        return cls(
            query_name=parts[0],
            query_length=int(parts[1]),
            query_start=int(parts[2]),
            query_end=int(parts[3]),
            strand=parts[4],
            target_name=parts[5],
            target_length=int(parts[6]),
            target_start=int(parts[7]),
            target_end=int(parts[8]),
            residue_matches=int(parts[9]),
            alignment_block_length=int(parts[10]),
            mapping_quality=int(parts[11]),
        )


def paf_from_alignment(
    read_id: str,
    alignment: Alignment,
    target_name: str,
    target_length: int,
) -> PafRecord:
    """Convert a :class:`repro.align.aligner.Alignment` into a PAF record."""
    if alignment.aligned_pairs:
        query_start = alignment.aligned_pairs[0][0]
        query_end = alignment.aligned_pairs[-1][0] + 1
        matches = int(round(alignment.identity * len(alignment.aligned_pairs)))
        block = len(alignment.aligned_pairs)
    else:
        query_start, query_end = 0, alignment.query_length
        matches = 0
        block = alignment.reference_span
    return PafRecord(
        query_name=read_id,
        query_length=alignment.query_length,
        query_start=query_start,
        query_end=query_end,
        strand=alignment.strand,
        target_name=target_name,
        target_length=target_length,
        target_start=alignment.reference_start,
        target_end=alignment.reference_end,
        residue_matches=matches,
        alignment_block_length=max(block, 1),
        mapping_quality=int(min(max(alignment.mapping_quality, 0), 255)),
    )


def write_paf(path: Union[str, Path], records: Iterable[PafRecord]) -> int:
    """Write records to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_line() + "\n")
            count += 1
    return count


def read_paf(path: Union[str, Path]) -> List[PafRecord]:
    """Read a PAF file written by :func:`write_paf` (or MiniMap2)."""
    records: List[PafRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                records.append(PafRecord.from_line(line))
    return records
