"""SquiggleFilter reproduction library.

This package reproduces the system described in *SquiggleFilter: An
Accelerator for Portable Virus Detection* (MICRO 2021): a squiggle-level
subsequence dynamic time warping (sDTW) filter for nanopore Read Until,
together with every substrate the paper's evaluation depends on:

* a 6-mer pore model and squiggle synthesizer (``repro.pore_model``),
* synthetic genomes, viral catalogs and strain models (``repro.genomes``),
* a nanopore sequencer / flow cell / Read Until simulator (``repro.sequencer``),
* the baseline basecall + align pipeline and an UNCALLED-like baseline
  (``repro.basecall``, ``repro.align``, ``repro.baselines``),
* reference-guided assembly (``repro.assembly``),
* the SquiggleFilter hardware model: systolic array, normalizer, ASIC
  area/power and latency/throughput models (``repro.hardware``),
* the analytical Read Until runtime model and scalability analysis
  (``repro.pipeline``).

The most common entry points are re-exported here.
"""

from repro.core.config import SDTWConfig
from repro.core.filter import FilterDecision, MultiStageSquiggleFilter, SquiggleFilter
from repro.core.normalization import NormalizationConfig, SignalNormalizer
from repro.core.reference import ReferenceSquiggle
from repro.core.sdtw import sdtw_cost, sdtw_cost_matrix
from repro.genomes.sequences import random_genome, reverse_complement
from repro.pipeline.api import (
    Action,
    ReadUntilClassifier,
    as_streaming_classifier,
    available_classifiers,
    build_pipeline,
    create_classifier,
    register_classifier,
)
from repro.pipeline.read_until import ReadUntilPipeline
from repro.pore_model.kmer_model import KmerModel
from repro.runtime import ReadUntilSession, RunConfig, open_session
from repro.pore_model.synthesis import SquiggleSimulator, SquiggleSynthesisConfig
from repro.sequencer.read_until_api import ReadUntilSimulator, SignalChunk
from repro.sequencer.reads import Read, ReadGenerator, SpecimenMixture

__all__ = [
    "Action",
    "FilterDecision",
    "KmerModel",
    "MultiStageSquiggleFilter",
    "NormalizationConfig",
    "Read",
    "ReadGenerator",
    "ReadUntilClassifier",
    "ReadUntilPipeline",
    "ReadUntilSession",
    "ReadUntilSimulator",
    "ReferenceSquiggle",
    "RunConfig",
    "SDTWConfig",
    "SignalChunk",
    "SignalNormalizer",
    "SpecimenMixture",
    "SquiggleFilter",
    "SquiggleSimulator",
    "SquiggleSynthesisConfig",
    "as_streaming_classifier",
    "available_classifiers",
    "build_pipeline",
    "create_classifier",
    "open_session",
    "random_genome",
    "register_classifier",
    "reverse_complement",
    "sdtw_cost",
    "sdtw_cost_matrix",
]

__version__ = "1.0.0"
