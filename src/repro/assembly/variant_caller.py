"""Pileup-based variant calling.

Plays the role of the Racon + Medaka stage of the paper's pipeline: given the
pileup of aligned target reads it produces the consensus genome and the list
of differences ("variants") relative to the reference. The paper's point is
that this stage is cheap and off the Read Until critical path, which a
majority-vote caller reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.assembly.pileup import Pileup


@dataclass(frozen=True)
class Variant:
    """One called substitution relative to the reference."""

    position: int
    reference_base: str
    alternate_base: str
    depth: int
    allele_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.reference_base}{self.position + 1}{self.alternate_base}"


class VariantCaller:
    """Majority-vote consensus and substitution calling from a pileup."""

    def __init__(self, min_depth: int = 5, min_allele_fraction: float = 0.6) -> None:
        if min_depth < 1:
            raise ValueError("min_depth must be at least 1")
        if not 0.0 < min_allele_fraction <= 1.0:
            raise ValueError("min_allele_fraction must be in (0, 1]")
        self.min_depth = min_depth
        self.min_allele_fraction = min_allele_fraction

    def call_variants(self, pileup: Pileup) -> List[Variant]:
        """Positions where the confident consensus differs from the reference."""
        variants: List[Variant] = []
        for column in pileup.columns():
            if column.depth < self.min_depth:
                continue
            consensus = column.consensus_base()
            if consensus is None:
                continue
            fraction = column.allele_fraction(consensus)
            if fraction < self.min_allele_fraction:
                continue
            reference_base = pileup.reference[column.position]
            if consensus != reference_base:
                variants.append(
                    Variant(
                        position=column.position,
                        reference_base=reference_base,
                        alternate_base=consensus,
                        depth=column.depth,
                        allele_fraction=fraction,
                    )
                )
        return variants

    def consensus_sequence(self, pileup: Pileup, uncovered_char: Optional[str] = None) -> str:
        """Consensus genome: confident calls override the reference base.

        Positions below ``min_depth`` fall back to the reference base (or to
        ``uncovered_char`` when provided, which makes coverage gaps visible).
        """
        bases: List[str] = []
        for column in pileup.columns():
            reference_base = pileup.reference[column.position]
            if column.depth < self.min_depth:
                bases.append(uncovered_char if uncovered_char is not None else reference_base)
                continue
            consensus = column.consensus_base()
            if consensus is None or column.allele_fraction(consensus) < self.min_allele_fraction:
                bases.append(reference_base)
            else:
                bases.append(consensus)
        return "".join(bases)
