"""Reference-guided assembly substrate: pileup, consensus and variant calling."""

from repro.assembly.pileup import Pileup, PileupColumn
from repro.assembly.variant_caller import Variant, VariantCaller
from repro.assembly.consensus import AssemblyResult, ReferenceGuidedAssembler

__all__ = [
    "AssemblyResult",
    "Pileup",
    "PileupColumn",
    "ReferenceGuidedAssembler",
    "Variant",
    "VariantCaller",
]
