"""Reference-guided assembly of the target virus genome.

This is the tail of the paper's pipeline (Figure 4): reads that survive the
Read Until filter are fully sequenced, basecalled, aligned to the target
reference and piled up; the variant caller then produces the consensus
("whole genome") and the strain-specific mutations. It runs off the Read
Until critical path on the SoC's CPU/GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.align.aligner import Alignment, ReferenceAligner
from repro.assembly.pileup import Pileup
from repro.assembly.variant_caller import Variant, VariantCaller
from repro.basecall.basecaller import GUPPY, BasecallerProfile, SimulatedBasecaller
from repro.genomes.sequences import reverse_complement, validate_sequence
from repro.sequencer.reads import Read


@dataclass
class AssemblyResult:
    """Outcome of one reference-guided assembly."""

    consensus: str
    variants: List[Variant]
    mean_depth: float
    breadth_of_coverage: float
    n_reads_used: int
    n_reads_unaligned: int
    basecall_operations: int = 0

    @property
    def n_variants(self) -> int:
        return len(self.variants)

    def reached_coverage(self, target_depth: float = 30.0) -> bool:
        """Whether the assembly met the paper's 30x coverage goal on average."""
        return self.mean_depth >= target_depth


class ReferenceGuidedAssembler:
    """Basecall, align, pile up and call the consensus for accepted reads."""

    def __init__(
        self,
        reference: str,
        basecaller_profile: BasecallerProfile = GUPPY,
        variant_caller: Optional[VariantCaller] = None,
        min_mapping_quality: float = 20.0,
        aligner_k: int = 11,
        aligner_w: int = 5,
        seed: Optional[int] = None,
    ) -> None:
        self.reference = validate_sequence(reference)
        self.basecaller = SimulatedBasecaller(basecaller_profile, seed=seed)
        self.aligner = ReferenceAligner(self.reference, k=aligner_k, w=aligner_w)
        self.variant_caller = variant_caller if variant_caller is not None else VariantCaller()
        self.min_mapping_quality = min_mapping_quality

    def assemble(self, reads: Sequence[Read]) -> AssemblyResult:
        """Assemble the consensus genome from fully sequenced reads.

        Unaligned reads (false positives of the Read Until filter, or reads
        whose basecalls are too poor) are counted and discarded — exactly the
        behaviour the paper relies on to keep filter false positives from
        affecting assembly accuracy.
        """
        pileup = Pileup(self.reference)
        n_used = 0
        n_unaligned = 0
        total_operations = 0
        for read in reads:
            basecall = self.basecaller.basecall(read)
            total_operations += basecall.n_operations
            alignment = self.aligner.map(basecall.sequence, refine=True)
            if alignment is None or alignment.mapping_quality < self.min_mapping_quality:
                n_unaligned += 1
                continue
            oriented = (
                basecall.sequence
                if alignment.strand == "+"
                else reverse_complement(basecall.sequence)
            )
            pileup.add_alignment(oriented, alignment)
            n_used += 1
        variants = self.variant_caller.call_variants(pileup)
        consensus = self.variant_caller.consensus_sequence(pileup)
        return AssemblyResult(
            consensus=consensus,
            variants=variants,
            mean_depth=pileup.mean_depth(),
            breadth_of_coverage=pileup.breadth_of_coverage(
                min_depth=self.variant_caller.min_depth
            ),
            n_reads_used=n_used,
            n_reads_unaligned=n_unaligned,
            basecall_operations=total_operations,
        )

    def compare_to_truth(self, result: AssemblyResult, true_genome: str) -> dict:
        """Accuracy of the assembled consensus against the true sequenced strain."""
        truth = validate_sequence(true_genome)
        length = min(len(result.consensus), len(truth))
        if length == 0:
            return {"identity": 0.0, "mismatches": 0, "compared_positions": 0}
        mismatches = sum(
            1 for a, b in zip(result.consensus[:length], truth[:length]) if a != b
        )
        return {
            "identity": 1.0 - mismatches / length,
            "mismatches": mismatches,
            "compared_positions": length,
        }
