"""Read pileup over a reference genome.

The variant caller (the Racon + Medaka stage of the paper's pipeline) works
from the bases piled up at each reference position by the aligned target
reads. :class:`Pileup` accumulates those observations from alignments
produced by :class:`repro.align.aligner.ReferenceAligner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.align.aligner import Alignment
from repro.genomes.sequences import BASES, validate_sequence

_BASE_INDEX = {base: index for index, base in enumerate(BASES)}


@dataclass
class PileupColumn:
    """Base observations at one reference position."""

    position: int
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return sum(self.counts.values())

    def consensus_base(self) -> Optional[str]:
        """Most frequently observed base, or None with no coverage."""
        if not self.counts:
            return None
        return max(sorted(self.counts), key=lambda base: self.counts[base])

    def allele_fraction(self, base: str) -> float:
        if self.depth == 0:
            return 0.0
        return self.counts.get(base, 0) / self.depth


class Pileup:
    """Column-wise base counts across a reference genome."""

    def __init__(self, reference: str) -> None:
        self.reference = validate_sequence(reference)
        # Dense count matrix: positions x 4 bases.
        self._counts = np.zeros((len(self.reference), len(BASES)), dtype=np.int64)

    def __len__(self) -> int:
        return len(self.reference)

    def add_alignment(self, query: str, alignment: Alignment) -> int:
        """Add one aligned read; returns the number of positions updated.

        ``alignment.aligned_pairs`` holds (query index, reference index)
        pairs; the query must be in the orientation that was aligned (the
        aligner aligns the reverse complement for minus-strand reads, so
        callers should pass the oriented sequence).
        """
        updated = 0
        for query_index, reference_index in alignment.aligned_pairs:
            if not 0 <= reference_index < len(self.reference):
                continue
            base = query[query_index]
            if base not in _BASE_INDEX:
                continue
            self._counts[reference_index, _BASE_INDEX[base]] += 1
            updated += 1
        return updated

    def add_observation(self, position: int, base: str, count: int = 1) -> None:
        """Record ``count`` observations of ``base`` at ``position`` directly."""
        if not 0 <= position < len(self.reference):
            raise IndexError(f"position {position} outside reference of length {len(self.reference)}")
        if base not in _BASE_INDEX:
            raise ValueError(f"base must be one of {BASES}, got {base!r}")
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[position, _BASE_INDEX[base]] += count

    def column(self, position: int) -> PileupColumn:
        counts = {
            base: int(self._counts[position, index])
            for base, index in _BASE_INDEX.items()
            if self._counts[position, index] > 0
        }
        return PileupColumn(position=position, counts=counts)

    def columns(self) -> Iterable[PileupColumn]:
        for position in range(len(self.reference)):
            yield self.column(position)

    def depth_array(self) -> np.ndarray:
        """Per-position coverage depth."""
        return self._counts.sum(axis=1)

    def mean_depth(self) -> float:
        return float(self.depth_array().mean()) if len(self.reference) else 0.0

    def breadth_of_coverage(self, min_depth: int = 1) -> float:
        """Fraction of positions covered by at least ``min_depth`` reads."""
        if len(self.reference) == 0:
            return 0.0
        return float(np.count_nonzero(self.depth_array() >= min_depth) / len(self.reference))

    def covered_intervals(self, min_depth: int = 1) -> List[Tuple[int, int]]:
        """Half-open intervals of positions with depth >= ``min_depth``."""
        mask = self.depth_array() >= min_depth
        intervals: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for position, covered in enumerate(mask):
            if covered and start is None:
                start = position
            elif not covered and start is not None:
                intervals.append((start, position))
                start = None
        if start is not None:
            intervals.append((start, len(mask)))
        return intervals
