"""Sequencing time-and-cost model ("time saved is cost saved", paper Figure 20 / Table 1).

Flow cells are the dominant consumable cost of nanopore sequencing and their
useful lifetime is measured in pore-hours. Read Until shortens the pore-time
needed per experiment, which translates directly into more experiments per
flow cell and a lower cost per assembled genome. This module turns the
runtime model's output into the dollar figures Table 1 reports for the
sequencing-based detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.pipeline.runtime_model import ReadUntilModelConfig, sequencing_runtime_s


@dataclass(frozen=True)
class SequencingCostConfig:
    """Consumable prices and lifetimes (paper Section 2.3 figures)."""

    flowcell_cost_usd: float = 500.0
    flowcell_reuses: int = 4
    flowcell_lifetime_hours: float = 72.0
    library_prep_cost_usd: float = 100.0
    device_cost_usd: float = 1_000.0
    device_lifetime_experiments: int = 500

    def __post_init__(self) -> None:
        for name in (
            "flowcell_cost_usd",
            "flowcell_lifetime_hours",
            "library_prep_cost_usd",
            "device_cost_usd",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.flowcell_reuses < 1 or self.device_lifetime_experiments < 1:
            raise ValueError("reuse counts must be at least 1")

    @property
    def effective_flowcell_cost_usd(self) -> float:
        """Per-use flow cell cost after washing/re-use (paper: $125/use)."""
        return self.flowcell_cost_usd / self.flowcell_reuses

    @property
    def flowcell_cost_per_hour_usd(self) -> float:
        """Opportunity cost of occupying the flow cell for one hour."""
        return self.flowcell_cost_usd / self.flowcell_lifetime_hours

    @property
    def device_cost_per_experiment_usd(self) -> float:
        return self.device_cost_usd / self.device_lifetime_experiments


@dataclass
class ExperimentCost:
    """Cost breakdown of one sequencing experiment."""

    runtime_hours: float
    flowcell_occupancy_usd: float
    library_prep_usd: float
    device_amortization_usd: float

    @property
    def total_usd(self) -> float:
        return self.flowcell_occupancy_usd + self.library_prep_usd + self.device_amortization_usd

    def as_dict(self) -> Dict[str, float]:
        return {
            "runtime_hours": self.runtime_hours,
            "flowcell_occupancy_usd": self.flowcell_occupancy_usd,
            "library_prep_usd": self.library_prep_usd,
            "device_amortization_usd": self.device_amortization_usd,
            "total_usd": self.total_usd,
        }


def experiment_cost(
    runtime_s: float,
    cost_config: SequencingCostConfig = SequencingCostConfig(),
) -> ExperimentCost:
    """Cost of one experiment given its sequencing runtime."""
    if runtime_s < 0:
        raise ValueError("runtime_s must be non-negative")
    runtime_hours = runtime_s / 3600.0
    return ExperimentCost(
        runtime_hours=runtime_hours,
        flowcell_occupancy_usd=runtime_hours * cost_config.flowcell_cost_per_hour_usd,
        library_prep_usd=cost_config.library_prep_cost_usd,
        device_amortization_usd=cost_config.device_cost_per_experiment_usd,
    )


def read_until_savings(
    model: ReadUntilModelConfig,
    recall: float,
    false_positive_rate: float,
    cost_config: SequencingCostConfig = SequencingCostConfig(),
) -> Dict[str, float]:
    """Time and cost saved by Read Until at one classifier operating point."""
    control_runtime = sequencing_runtime_s(model, use_read_until=False)
    read_until_runtime = sequencing_runtime_s(
        model, recall=recall, false_positive_rate=false_positive_rate
    )
    control_cost = experiment_cost(control_runtime, cost_config)
    read_until_cost = experiment_cost(read_until_runtime, cost_config)
    experiments_per_flowcell_control = max(
        int(cost_config.flowcell_lifetime_hours // max(control_cost.runtime_hours, 1e-9)), 1
    )
    experiments_per_flowcell_read_until = max(
        int(cost_config.flowcell_lifetime_hours // max(read_until_cost.runtime_hours, 1e-9)), 1
    )
    return {
        "control_runtime_hours": control_cost.runtime_hours,
        "read_until_runtime_hours": read_until_cost.runtime_hours,
        "time_saved_hours": control_cost.runtime_hours - read_until_cost.runtime_hours,
        "control_cost_usd": control_cost.total_usd,
        "read_until_cost_usd": read_until_cost.total_usd,
        "cost_saved_usd": control_cost.total_usd - read_until_cost.total_usd,
        "experiments_per_flowcell_control": float(experiments_per_flowcell_control),
        "experiments_per_flowcell_read_until": float(experiments_per_flowcell_read_until),
    }
