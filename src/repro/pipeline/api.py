"""The unified streaming classifier API for Read Until.

Every Read Until classifier in this repository — the single-stage
:class:`~repro.core.filter.SquiggleFilter`, the multi-stage variant, the
hardware accelerator model and the basecall+align baseline — ultimately makes
the same kind of decision: given the signal chunks of a read streamed by the
sequencer, accept it (keep sequencing), eject it, or wait for more signal.
This module makes that contract explicit:

* :class:`Action` — a typed accept/eject/wait decision carrying the cost,
  stage and samples-used accounting the runtime models need;
* :class:`ReadUntilClassifier` — the incremental protocol
  (``begin_read(read_id)`` / ``on_chunk(SignalChunk) -> Action``) every
  streaming classifier implements;
* adapters that lift the repository's whole-prefix classifiers into the
  protocol (:class:`SingleStageAdapter`, :class:`MultiStageAdapter`,
  :class:`BasecallAlignAdapter`) plus :func:`as_streaming_classifier`, the
  structural dispatcher that picks the right one;
* a string-keyed classifier **registry** (:func:`register_classifier`,
  :func:`create_classifier`, :func:`available_classifiers`) mirroring how
  UNCALLED exposes its pluggable DTW methods behind a ``METHODS`` mapping;
* :func:`build_pipeline` — a factory that constructs a fully wired
  :class:`~repro.pipeline.read_until.ReadUntilPipeline` (classifier,
  :class:`~repro.sequencer.run.MinIONParameters`, assembler) from a plain
  config mapping.

The payoff of streaming semantics is the multi-stage adapter: early stages
fire as soon as their prefix has arrived on the wire, so a clear non-target
read is ejected on an *early chunk* instead of after the final stage's prefix
— something a whole-prefix ``classify()`` call cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.assembly.consensus import ReferenceGuidedAssembler
from repro.baselines.basecall_align import BasecallAlignClassifier
from repro.core.filter import FilterDecision, FilterStage, MultiStageSquiggleFilter, SquiggleFilter
from repro.core.panel import TargetPanel
from repro.core.reference import ReferenceSquiggle
from repro.sequencer.read_until_api import ChunkAccumulator, SignalChunk
from repro.sequencer.reads import Read
from repro.sequencer.run import MinIONParameters

# Decision latency of the SquiggleFilter ASIC (paper Section 7.2): ~43 us,
# effectively zero on the Read Until timescale.
DEFAULT_HARDWARE_LATENCY_S = 4.3e-5

# The three action kinds a streaming classifier can return per chunk.
ACCEPT = "accept"
EJECT = "eject"
WAIT = "wait"
_KINDS = (ACCEPT, EJECT, WAIT)

# How each Action kind maps onto the Read Until wire protocol.
_SIMULATOR_ACTIONS = {ACCEPT: "stop_receiving", EJECT: "unblock", WAIT: "wait"}


@dataclass(frozen=True)
class Action:
    """One streaming classification decision for the read currently in a pore.

    ``kind`` is one of :data:`ACCEPT` (keep sequencing the read), :data:`EJECT`
    (reverse the pore voltage and discard it) or :data:`WAIT` (not enough
    signal yet). Terminal actions carry the accounting the runtime and cost
    models consume: the alignment (or mapping) cost, the threshold it was
    compared against, the stage that fired, and how many samples were examined
    before the decision. Panel-mode classifiers additionally report which
    target the read matched (``target``, the per-target argmin) and the full
    per-target cost breakdown (``target_costs``, in panel order).
    """

    kind: str
    cost: float = 0.0
    samples_used: int = 0
    stage: int = 0
    threshold: float = 0.0
    end_position: int = 0
    target: Optional[str] = None
    target_costs: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}; expected one of {_KINDS}")

    @property
    def is_terminal(self) -> bool:
        """Whether this action ends the decision process for the read."""
        return self.kind != WAIT

    @property
    def per_sample_cost(self) -> float:
        return self.cost / max(self.samples_used, 1)

    @classmethod
    def wait(cls) -> "Action":
        return cls(kind=WAIT)

    @classmethod
    def from_decision(cls, decision: FilterDecision) -> "Action":
        """Lift a whole-prefix :class:`FilterDecision` into a terminal action."""
        return cls(
            kind=ACCEPT if decision.accept else EJECT,
            cost=decision.cost,
            samples_used=decision.samples_used,
            stage=decision.stage,
            threshold=decision.threshold,
            end_position=decision.end_position,
            target=decision.target,
            target_costs=decision.target_costs,
        )

    def as_filter_decision(self) -> FilterDecision:
        """Project a terminal action back onto the legacy decision shape."""
        if not self.is_terminal:
            raise ValueError("a wait action carries no decision")
        return FilterDecision(
            accept=self.kind == ACCEPT,
            cost=self.cost,
            per_sample_cost=self.per_sample_cost,
            samples_used=self.samples_used,
            threshold=self.threshold,
            end_position=self.end_position,
            stage=self.stage,
            target=self.target,
            target_costs=self.target_costs,
        )

    def to_simulator_action(self) -> str:
        """The ``run_client`` verb this action corresponds to."""
        return _SIMULATOR_ACTIONS[self.kind]


class ReadUntilClassifier(Protocol):
    """Incremental classification protocol driven by the chunk simulator.

    The pipeline calls ``begin_read`` once when a read's first chunk arrives,
    then ``on_chunk`` for every chunk (including the first) until a terminal
    :class:`Action` is returned or the read ends. A chunk flagged ``is_last``
    exhausts the read's signal, so implementations should decide on whatever
    prefix exists rather than wait for samples that will never arrive.
    ``end_read`` releases any per-read state for reads that finish without a
    terminal action (e.g. capped by the simulator's chunk budget).
    ``min_decision_samples`` and ``max_decision_samples`` advertise the
    earliest and latest decision points so the pipeline can pick a chunk size
    and a chunk budget.

    Classifiers that can advance many channels at once additionally expose
    ``on_chunk_batch(chunks) -> List[Action]`` (one action per chunk, in
    order) — the fast path :class:`~repro.pipeline.read_until.ReadUntilPipeline`
    drives whole polling rounds through when
    :func:`supports_chunk_batching` reports it, falling back to per-read
    ``on_chunk`` otherwise. Batched and scalar calls must make identical
    decisions; :class:`repro.batch.BatchSquiggleClassifier` is the reference
    implementation.
    """

    name: str
    decision_latency_s: float

    @property
    def min_decision_samples(self) -> int: ...

    @property
    def max_decision_samples(self) -> int: ...

    def begin_read(self, read_id: str) -> None: ...

    def on_chunk(self, chunk: SignalChunk) -> Action: ...

    def end_read(self, read_id: str) -> None: ...


class SingleStageAdapter:
    """Stream a whole-prefix classifier: wait until the prefix, then decide.

    Works for any object exposing ``classify(signal, prefix_samples=...) ->
    FilterDecision`` — :class:`SquiggleFilter` and the
    :class:`~repro.hardware.accelerator.SquiggleFilterAccelerator` both do.
    Reads shorter than the prefix are classified on their final chunk with
    whatever signal exists, matching the whole-prefix behaviour of
    ``classify(read.signal_pa)``.
    """

    def __init__(
        self,
        classifier: Any,
        prefix_samples: Optional[int] = None,
        name: Optional[str] = None,
        decision_latency_s: Optional[float] = None,
    ) -> None:
        self._chunks = ChunkAccumulator()
        self.classifier = classifier
        resolved = prefix_samples if prefix_samples is not None else getattr(
            classifier, "prefix_samples", None
        )
        if resolved is None or int(resolved) <= 0:
            raise ValueError("a positive prefix_samples is required")
        self.prefix_samples = int(resolved)
        self.name = name if name is not None else f"stream:{type(classifier).__name__}"
        latency = decision_latency_s
        if latency is None:
            latency = getattr(classifier, "decision_latency_s", None)
        self.decision_latency_s = float(latency) if latency is not None else DEFAULT_HARDWARE_LATENCY_S

    @property
    def min_decision_samples(self) -> int:
        return self.prefix_samples

    @property
    def max_decision_samples(self) -> int:
        return self.prefix_samples

    def begin_read(self, read_id: str) -> None:
        self._chunks.begin_read(read_id)

    def end_read(self, read_id: str) -> None:
        self._chunks.drop(read_id)

    def on_chunk(self, chunk: SignalChunk) -> Action:
        total = self._chunks.add(chunk)
        if total < self.prefix_samples and not chunk.is_last:
            return Action.wait()
        signal = self._chunks.prefix(chunk.read_id)
        self._chunks.drop(chunk.read_id)
        decision = self.classifier.classify(signal, prefix_samples=self.prefix_samples)
        return Action.from_decision(decision)


class MultiStageAdapter:
    """Stream a multi-stage filter: each stage fires at its own chunk boundary.

    Stage *i* runs as soon as ``stages[i].prefix_samples`` of signal have
    arrived; a rejection ejects the read right there, on an earlier chunk than
    the final stage's prefix — the behaviour the whole-prefix ``classify()``
    API cannot express. A read that ends before the last stage's prefix runs
    its remaining stages on the signal that exists, as ``classify()`` would.
    """

    def __init__(
        self,
        classifier: MultiStageSquiggleFilter,
        name: Optional[str] = None,
        decision_latency_s: Optional[float] = None,
    ) -> None:
        self._chunks = ChunkAccumulator()
        self.classifier = classifier
        self.name = name if name is not None else f"stream:{type(classifier).__name__}"
        self.decision_latency_s = (
            float(decision_latency_s) if decision_latency_s is not None else DEFAULT_HARDWARE_LATENCY_S
        )
        self._next_stage: Dict[str, int] = {}

    @property
    def min_decision_samples(self) -> int:
        return self.classifier.stages[0].prefix_samples

    @property
    def max_decision_samples(self) -> int:
        return self.classifier.stages[-1].prefix_samples

    def begin_read(self, read_id: str) -> None:
        self._chunks.begin_read(read_id)
        self._next_stage[read_id] = 0

    def end_read(self, read_id: str) -> None:
        self._chunks.drop(read_id)
        self._next_stage.pop(read_id, None)

    def on_chunk(self, chunk: SignalChunk) -> Action:
        total = self._chunks.add(chunk)
        index = self._next_stage.setdefault(chunk.read_id, 0)
        stages = self.classifier.stages
        while index < len(stages) and (total >= stages[index].prefix_samples or chunk.is_last):
            decision = self.classifier.classify_stage(self._chunks.prefix(chunk.read_id), index)
            index += 1
            self._next_stage[chunk.read_id] = index
            if not decision.accept or index == len(stages):
                self.end_read(chunk.read_id)
                return Action.from_decision(decision)
        return Action.wait()


class BasecallAlignAdapter:
    """Stream the basecall+align baseline.

    The simulated basecaller is an oracle-with-errors over the ground-truth
    read, so the adapter resolves the :class:`Read` by id (``read_lookup``)
    once enough signal has streamed in, rather than decoding raw chunks.
    """

    def __init__(
        self,
        classifier: BasecallAlignClassifier,
        read_lookup: Callable[[str], Optional[Read]],
        prefix_samples: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self.classifier = classifier
        self.read_lookup = read_lookup
        resolved = prefix_samples if prefix_samples is not None else classifier.prefix_samples
        if int(resolved) <= 0:
            raise ValueError("a positive prefix_samples is required")
        self.prefix_samples = int(resolved)
        self.name = name if name is not None else f"stream:{type(classifier).__name__}"
        self.decision_latency_s = classifier.decision_latency_s

    @property
    def min_decision_samples(self) -> int:
        return self.prefix_samples

    @property
    def max_decision_samples(self) -> int:
        return self.prefix_samples

    def begin_read(self, read_id: str) -> None:  # noqa: ARG002 - protocol hook
        return None

    def end_read(self, read_id: str) -> None:  # noqa: ARG002 - protocol hook
        return None

    def on_chunk(self, chunk: SignalChunk) -> Action:
        if chunk.samples_seen < self.prefix_samples and not chunk.is_last:
            return Action.wait()
        read = self.read_lookup(chunk.read_id)
        if read is None:
            raise KeyError(f"unknown read {chunk.read_id!r} streamed to the baseline adapter")
        decision = self.classifier.classify_read(read, self.prefix_samples).as_filter_decision()
        return Action.from_decision(decision)


def supports_chunk_batching(classifier: Any) -> bool:
    """Whether a streaming classifier advertises the ``on_chunk_batch`` fast path."""
    return callable(getattr(classifier, "on_chunk_batch", None))


def as_streaming_classifier(
    classifier: Any,
    prefix_samples: Optional[int] = None,
    read_lookup: Optional[Callable[[str], Optional[Read]]] = None,
) -> ReadUntilClassifier:
    """Lift any of the repository's classifiers into the streaming protocol.

    Dispatch is structural (no type checks): objects already speaking the
    protocol pass through, multi-stage filters get per-stage scheduling,
    read-oriented baselines get the lookup-based adapter, and anything with a
    plain ``classify(signal, prefix_samples=...)`` gets the single-stage
    wait-then-decide policy.
    """
    if hasattr(classifier, "on_chunk") and hasattr(classifier, "begin_read"):
        return classifier
    if hasattr(classifier, "classify_stage") and hasattr(classifier, "stages"):
        return MultiStageAdapter(classifier)
    if hasattr(classifier, "classify_read"):
        if read_lookup is None:
            raise TypeError(
                "read-oriented classifiers need a read_lookup to resolve read ids "
                "(the pipeline supplies one automatically)"
            )
        return BasecallAlignAdapter(classifier, read_lookup, prefix_samples)
    if hasattr(classifier, "classify"):
        return SingleStageAdapter(classifier, prefix_samples)
    raise TypeError(
        f"{type(classifier).__name__} exposes neither the streaming protocol nor a "
        "classify()/classify_read() method"
    )


# --------------------------------------------------------------------- registry
ClassifierFactory = Callable[..., Any]

_REGISTRY: Dict[str, ClassifierFactory] = {}


def register_classifier(name: str) -> Callable[[ClassifierFactory], ClassifierFactory]:
    """Register a classifier factory under a string key (decorator).

    Factories are plain callables taking keyword parameters; they should
    accept a ``genome`` keyword so :func:`build_pipeline` can default it to
    the pipeline's target genome.
    """

    def wrap(factory: ClassifierFactory) -> ClassifierFactory:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"classifier {name!r} is already registered")
        _REGISTRY[key] = factory
        return factory

    return wrap


def available_classifiers() -> Tuple[str, ...]:
    """The registered classifier names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_classifier(name: str, **params: Any) -> Any:
    """Instantiate a registered classifier by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(available_classifiers()) or "(none)"
        raise KeyError(f"unknown classifier {name!r}; registered: {known}") from None
    return factory(**params)


def _resolve_reference(
    reference: Optional[Any],
    genome: Optional[Any],
    kmer_model: Any = None,
    include_reverse_complement: bool = True,
) -> Any:
    """Resolve a classifier's alignment target.

    Accepts a prebuilt :class:`ReferenceSquiggle` or
    :class:`~repro.core.panel.TargetPanel`, one genome string, or a mapping
    of target names to genomes (built into a panel).
    """
    if reference is not None:
        return reference
    if genome is None:
        raise ValueError("either a prebuilt reference/panel or a genome is required")
    if isinstance(genome, Mapping):
        return TargetPanel.from_genomes(
            genome,
            kmer_model=kmer_model,
            include_reverse_complement=include_reverse_complement,
        )
    return ReferenceSquiggle.from_genome(
        genome,
        kmer_model=kmer_model,
        include_reverse_complement=include_reverse_complement,
    )


@register_classifier("squigglefilter")
def build_squigglefilter(
    *,
    genome: Optional[Any] = None,
    reference: Optional[Any] = None,
    kmer_model: Any = None,
    include_reverse_complement: bool = True,
    threshold: Optional[float] = None,
    prefix_samples: int = 2000,
    config: Any = None,
    normalization: Any = None,
) -> SquiggleFilter:
    """Single-stage sDTW filter (the paper's default operating point).
    ``reference``/``genome`` accept a multi-target panel (see
    :class:`~repro.core.panel.TargetPanel`) as well as one reference."""
    return SquiggleFilter(
        _resolve_reference(reference, genome, kmer_model, include_reverse_complement),
        config=config,
        normalization=normalization,
        threshold=threshold,
        prefix_samples=prefix_samples,
    )


@register_classifier("multistage")
def build_multistage(
    *,
    stages: Sequence[Any],
    genome: Optional[str] = None,
    reference: Optional[ReferenceSquiggle] = None,
    kmer_model: Any = None,
    include_reverse_complement: bool = True,
    config: Any = None,
    normalization: Any = None,
) -> MultiStageSquiggleFilter:
    """Multi-stage filter; ``stages`` are FilterStage objects, mappings or
    ``(prefix_samples, threshold)`` pairs, ordered by increasing prefix."""
    built: List[FilterStage] = []
    for stage in stages:
        if hasattr(stage, "prefix_samples") and hasattr(stage, "threshold"):
            built.append(FilterStage(int(stage.prefix_samples), float(stage.threshold)))
        elif isinstance(stage, Mapping):
            built.append(FilterStage(int(stage["prefix_samples"]), float(stage["threshold"])))
        else:
            prefix, threshold = stage
            built.append(FilterStage(int(prefix), float(threshold)))
    return MultiStageSquiggleFilter(
        _resolve_reference(reference, genome, kmer_model, include_reverse_complement),
        built,
        config=config,
        normalization=normalization,
    )


@register_classifier("batch_squigglefilter")
def build_batch_squigglefilter(
    *,
    genome: Optional[Any] = None,
    reference: Optional[Any] = None,
    kmer_model: Any = None,
    include_reverse_complement: bool = True,
    threshold: Optional[float] = None,
    prefix_samples: int = 2000,
    config: Any = None,
    normalization: Any = None,
    name: Optional[str] = None,
    decision_latency_s: Optional[float] = None,
    backend: Any = None,
    backend_options: Optional[Mapping[str, Any]] = None,
    run_config: Any = None,
) -> Any:
    """Single-stage sDTW filter on the batched wavefront engine: every
    undecided channel of a polling round advances in one matrix op.
    ``reference``/``genome`` accept a multi-target panel, classified by
    per-target argmin in the same wavefront. ``run_config`` (a
    :class:`repro.runtime.RunConfig`) picks the execution backend the
    engine advances lanes on (:func:`repro.batch.available_backends`); the
    legacy ``backend``/``backend_options`` kwargs still work behind the
    classifier's :class:`DeprecationWarning`."""
    # Deferred: repro.batch.classifier imports this module for Action/registry.
    from repro.batch.classifier import BatchSquiggleClassifier

    extra: Dict[str, Any] = {}
    if backend is not None:
        extra["backend"] = backend
    if backend_options is not None:
        extra["backend_options"] = backend_options
    if run_config is not None:
        extra["run_config"] = run_config
    return BatchSquiggleClassifier(
        _resolve_reference(reference, genome, kmer_model, include_reverse_complement),
        config=config,
        normalization=normalization,
        threshold=threshold,
        prefix_samples=prefix_samples,
        name=name,
        decision_latency_s=decision_latency_s,
        **extra,
    )


@register_classifier("basecall_align")
def build_basecall_align(
    *,
    genome: str,
    **kwargs: Any,
) -> BasecallAlignClassifier:
    """Conventional basecall-then-align baseline (Guppy-lite + MiniMap2 stand-ins)."""
    return BasecallAlignClassifier(genome, **kwargs)


# ---------------------------------------------------------------------- factory
def build_pipeline(spec: Any) -> "Any":
    """Construct a fully wired :class:`ReadUntilPipeline` from a config.

    ``spec`` may be a :class:`repro.runtime.RunConfig` — the preferred,
    declarative form: the pipeline is wired around a
    :class:`repro.runtime.ReadUntilSession` opened on it (lazy backend,
    owned lifecycle), with the config's genome/targets, channel count,
    chunk geometry, threshold and execution backend all taken from the one
    object — or the pre-``RunConfig`` plain mapping, whose recognized keys
    are below. Both construct the same runtime objects and make identical
    decisions.

    Recognized mapping keys:

    ``classifier`` (required)
        A registry name, or a mapping ``{"name": ..., **params}`` (an optional
        nested ``"params"`` mapping is merged in). The pipeline's target
        genome is passed to the factory as ``genome`` unless overridden.
    ``target_genome`` (required)
        The genome the run enriches for (also used for assembly).
    ``parameters``
        A :class:`MinIONParameters` instance or a kwargs mapping for one.
    ``assembler``
        A prebuilt assembler or a kwargs mapping for
        :class:`ReferenceGuidedAssembler` over the target genome.
    ``targets``
        A multi-target panel for the classifier: a mapping of target names
        to genome strings (built into a :class:`TargetPanel`) or a prebuilt
        panel. Becomes the classifier's ``reference``, so one session
        screens every panel member at once and the streaming summary
        reports per-target accept counts.
    ``backend`` / ``backend_options``
        Execution backend for a batch-capable classifier's engine (any name
        in :func:`repro.batch.available_backends`: ``"numpy"`` in-process,
        ``"sharded"`` lanes across a worker-process pool, ``"colsharded"``
        reference columns across the pool, ``"gpu"`` on a device array
        module; ``backend_options: {"workers": N}`` sizes the pools). These
        keys are folded into a :class:`repro.runtime.RunConfig` handed to
        the classifier factory as ``run_config``, so the chosen classifier
        must accept it (``"batch_squigglefilter"`` does).
    Remaining keys (``prefix_samples``, ``chunk_samples``, ``n_channels``,
    ``decision_latency_s``, ``assemble``, ``batch``, ...) are forwarded to
    :class:`ReadUntilPipeline`; ``batch: true`` requires the classifier's
    ``on_chunk_batch`` fast path (one vectorized sDTW wavefront per polling
    round, e.g. the ``"batch_squigglefilter"`` classifier).
    """
    from repro.pipeline.read_until import ReadUntilPipeline  # deferred: avoids an import cycle
    from repro.runtime.config import RunConfig  # deferred: same cycle

    if isinstance(spec, RunConfig):
        from repro.runtime.session import open_session  # deferred: same cycle

        session = open_session(spec)
        return ReadUntilPipeline(
            session,
            spec.genome,
            prefix_samples=spec.prefix_samples,
            chunk_samples=spec.chunk_samples,
            n_channels=spec.n_channels,
            batch=spec.batch if spec.batch is not None else True,
            assemble=spec.genome is not None,
        )

    config = dict(spec)
    try:
        raw_classifier = config.pop("classifier")
        target_genome = config.pop("target_genome")
    except KeyError as missing:
        raise KeyError(f"pipeline spec is missing the required key {missing}") from None

    if isinstance(raw_classifier, str):
        name, params = raw_classifier, {}
    else:
        params = dict(raw_classifier)
        name = params.pop("name")
        nested = params.pop("params", None)
        if nested:
            params.update(nested)
    targets = config.pop("targets", None)
    if targets is not None:
        if isinstance(targets, Mapping):
            # A genome mapping becomes the factory's `genome`, so
            # _resolve_reference builds the panel with the classifier's own
            # kmer_model / include_reverse_complement / normalization params
            # — exactly like the single-genome path.
            params["genome"] = dict(targets)
        else:
            params["reference"] = TargetPanel.coerce(targets)
    params.setdefault("genome", target_genome)
    backend = config.pop("backend", None)
    backend_options = config.pop("backend_options", None)
    if (backend is not None or backend_options is not None) and "run_config" not in params:
        # Fold the spec's execution keys into a RunConfig so the classifier
        # takes the modern path (no deprecation shim for spec users).
        options = dict(backend_options or {})
        params["run_config"] = RunConfig(
            backend=backend if backend is not None else "numpy",
            workers=options.pop("workers", None),
            tile_columns=options.pop("tile_columns", None),
            backend_options=options,
        )
    classifier = create_classifier(name, **params)

    parameters = config.pop("parameters", None)
    if isinstance(parameters, Mapping):
        parameters = MinIONParameters(**parameters)

    assembler = config.pop("assembler", None)
    if isinstance(assembler, Mapping):
        assembler = ReferenceGuidedAssembler(target_genome, **assembler)

    return ReadUntilPipeline(
        classifier,
        target_genome,
        parameters=parameters,
        assembler=assembler,
        **config,
    )
